"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pregel+" in out
        assert "dblp" in out
        assert "fig12" in out

    def test_run_command(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "dblp",
                "--task",
                "bppr",
                "--workload",
                "256",
                "--batches",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pregel+/bppr" in out
        assert "batch 0" in out and "batch 1" in out

    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "--workload",
                "512",
                "--machines",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimum" in out

    def test_experiment_quick(self, capsys):
        code = main(["experiment", "fig6", "--quick"])
        out = capsys.readouterr().out
        assert "fig6" in out
        assert code in (0, 1)  # claims may be relaxed in quick mode

    def test_tune_command(self, capsys):
        code = main(
            [
                "tune",
                "--workload",
                "2048",
                "--machines",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "memory models" in out
        assert "Optimized" in out

    def test_unknown_engine_is_reported(self, capsys):
        code = main(["run", "--engine", "spark", "--workload", "64"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_run_json_output(self, capsys):
        import json

        code = main(
            ["run", "--workload", "64", "--batches", "2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "pregel+"
        assert len(payload["batches"]) == 2
        assert "time_breakdown" in payload

    def test_run_bppr_query_task(self, capsys):
        code = main(
            ["run", "--task", "bppr-query", "--workload", "64"]
        )
        assert code == 0
        assert "bppr-query" in capsys.readouterr().out

    def test_report_quick(self, tmp_path, capsys):
        out_file = tmp_path / "EXP.md"
        code = main(
            ["report", "--quick", "--output", str(out_file)]
        )
        assert code == 0
        content = out_file.read_text()
        assert "paper vs measured" in content
        assert "fig2" in content


class TestFaultFlags:
    def test_run_with_faults_and_checkpoints(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "1024",
                "--batches",
                "2",
                "--seed",
                "42",
                "--faults",
                "0.2",
                "--checkpoint-every",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovery:" in out
        assert "crashes" in out and "checkpoints" in out

    def test_checkpointing_alone_reports_recovery_line(self, capsys):
        code = main(
            ["run", "--workload", "256", "--checkpoint-every", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovery:" in out
        assert "0 crashes" in out

    def test_strict_overload_exits_nonzero(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "15000",
                "--batches",
                "1",
                "--on-overload",
                "raise",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_max_retries_flag_accepted(self, capsys):
        from repro.perf.parallel import configure_retries

        try:
            code = main(
                ["run", "--workload", "256", "--max-retries", "5"]
            )
            assert code == 0
            from repro.perf.parallel import _RETRY

            assert _RETRY["max_retries"] == 5
        finally:
            configure_retries(max_retries=2, backoff_seconds=0.05)

    def test_experiment_faults_quick(self, capsys):
        code = main(["experiment", "faults", "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults" in out
        assert "HOLDS" in out


class TestServe:
    def serve(self, bench_path, *extra):
        return main(
            [
                "serve",
                "--arrivals",
                "0.5",
                "--duration",
                "15",
                "--seed",
                "42",
                "--kinds",
                "bppr",
                "--bench-output",
                str(bench_path),
                *extra,
            ]
        )

    def test_serve_smoke(self, tmp_path, capsys):
        import json

        bench = tmp_path / "BENCH_perf.json"
        code = self.serve(bench)
        assert code == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p99" in out
        payload = json.loads(bench.read_text())
        sched = payload["sched"]
        assert sched["completed_tasks"] > 0
        assert sched["latency"]["p99_seconds"] >= sched["latency"][
            "p50_seconds"
        ] > 0

    def test_serve_json_and_bench_merge(self, tmp_path, capsys):
        import json

        bench = tmp_path / "BENCH_perf.json"
        bench.write_text(json.dumps({"existing": {"keep": 1}}))
        code = self.serve(bench, "--json")
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed_tasks"] > 0
        assert payload["tasks"]  # per-task latencies in --json mode
        merged = json.loads(bench.read_text())
        assert merged["existing"] == {"keep": 1}
        assert "sched" in merged

    def test_serve_is_deterministic(self, tmp_path, capsys):
        import json

        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert self.serve(first) == 0
        assert self.serve(second) == 0
        capsys.readouterr()
        assert json.loads(first.read_text()) == json.loads(
            second.read_text()
        )

    def test_serve_inherits_shared_flags(self):
        args = build_parser().parse_args(
            ["serve", "--arrivals", "1.0", "--faults", "0.1", "--jobs", "2"]
        )
        assert args.arrivals == 1.0
        assert args.faults == 0.1
        assert args.jobs == 2
        assert args.cluster == "galaxy-8"
