"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pregel+" in out
        assert "dblp" in out
        assert "fig12" in out

    def test_run_command(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "dblp",
                "--task",
                "bppr",
                "--workload",
                "256",
                "--batches",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pregel+/bppr" in out
        assert "batch 0" in out and "batch 1" in out

    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "--workload",
                "512",
                "--machines",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimum" in out

    def test_experiment_quick(self, capsys):
        code = main(["experiment", "fig6", "--quick"])
        out = capsys.readouterr().out
        assert "fig6" in out
        assert code in (0, 1)  # claims may be relaxed in quick mode

    def test_tune_command(self, capsys):
        code = main(
            [
                "tune",
                "--workload",
                "2048",
                "--machines",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "memory models" in out
        assert "Optimized" in out

    def test_unknown_engine_is_reported(self, capsys):
        code = main(["run", "--engine", "spark", "--workload", "64"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_run_json_output(self, capsys):
        import json

        code = main(
            ["run", "--workload", "64", "--batches", "2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "pregel+"
        assert len(payload["batches"]) == 2
        assert "time_breakdown" in payload

    def test_run_bppr_query_task(self, capsys):
        code = main(
            ["run", "--task", "bppr-query", "--workload", "64"]
        )
        assert code == 0
        assert "bppr-query" in capsys.readouterr().out

    def test_report_quick(self, tmp_path, capsys):
        out_file = tmp_path / "EXP.md"
        code = main(
            ["report", "--quick", "--output", str(out_file)]
        )
        assert code == 0
        content = out_file.read_text()
        assert "paper vs measured" in content
        assert "fig2" in content
