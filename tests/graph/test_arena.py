"""Lifecycle tests for :class:`repro.graph.arena.ScratchArena`.

The arena's contract is the load-bearing part: arrays handed out in one
round must stay un-aliased for that round **and** the next (KEEPALIVE),
because kernels build their next frontier into arena buffers while
still reading the previous one.
"""

from __future__ import annotations

import numpy as np

from repro.graph.arena import ScratchArena


class TestNoAliasing:
    def test_takes_within_a_round_never_alias(self):
        arena = ScratchArena()
        arena.new_round()
        arrays = [arena.take(100) for _ in range(8)]
        for i, a in enumerate(arrays):
            a[:] = i
        for i, a in enumerate(arrays):
            assert (a == i).all()
            for b in arrays[i + 1 :]:
                assert not np.shares_memory(a, b)

    def test_keepalive_spans_the_next_round(self):
        arena = ScratchArena()
        arena.new_round()
        held = arena.take(64)
        held[:] = 42
        arena.new_round()  # round N + 1: `held` must survive
        fresh = arena.take(64)
        assert not np.shares_memory(held, fresh)
        assert (held == 42).all()

    def test_buffers_recycle_after_keepalive(self):
        arena = ScratchArena()
        arena.new_round()
        first = arena.take(64)
        for _ in range(ScratchArena.KEEPALIVE + 1):
            arena.new_round()
        recycled = arena.take(64)
        assert np.shares_memory(first, recycled)

    def test_mixed_dtypes_share_size_classes_without_aliasing(self):
        arena = ScratchArena()
        arena.new_round()
        ints = arena.take(32, dtype=np.int64)
        floats = arena.take(32, dtype=np.float64)
        bools = arena.take(200, dtype=bool)
        ints[:] = 7
        floats[:] = 1.5
        bools[:] = True
        assert (ints == 7).all() and (floats == 1.5).all() and bools.all()
        assert not np.shares_memory(ints, floats)
        assert not np.shares_memory(ints, bools)


class TestSteadyState:
    def test_no_allocations_after_warmup(self):
        arena = ScratchArena()
        sizes = (100, 250, 100, 33)

        def round_of_takes():
            arena.new_round()
            for size in sizes:
                arena.take(size)[:] = 0

        for _ in range(ScratchArena.KEEPALIVE + 1):
            round_of_takes()  # warmup fills the pool
        settled = arena.allocations
        for _ in range(20):
            round_of_takes()
        assert arena.allocations == settled  # steady state allocates nothing
        assert arena.reuses > 0

    def test_zero_size_take_is_fresh_and_free(self):
        arena = ScratchArena()
        arena.new_round()
        empty = arena.take(0)
        assert empty.size == 0
        assert arena.allocations == 0

    def test_arange_is_shared_and_correct(self):
        arena = ScratchArena()
        small = arena.arange(10)
        np.testing.assert_array_equal(small, np.arange(10))
        big = arena.arange(50)
        np.testing.assert_array_equal(big, np.arange(50))
        again = arena.arange(20)
        assert np.shares_memory(big, again)
