"""Out-of-core pipeline tests: chunked build, CSR directories, mapped
graphs and the block-streaming kernels.

The contract under test is *byte-identity*: the chunked generator, the
external-merge on-disk builder, and the streaming kernel variants must
reproduce the in-RAM path bit for bit at every block size — the
out-of-core layer changes where bytes live, never what they are.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphFormatError
from repro.graph import csr
from repro.graph.build import (
    build_csr_on_disk,
    choose_block_edges,
    from_edges,
)
from repro.graph.csr import (
    Graph,
    iter_frontier_blocks,
    iter_row_blocks,
    propagate_mass,
    segment_min,
    segment_min_streaming,
    segment_sum,
    segment_sum_streaming,
    streaming_block_arcs,
)
from repro.graph.datasets import PAPER_DATASETS, DatasetProfile
from repro.graph.generators import chung_lu, chung_lu_edge_blocks
from repro.graph.io import (
    MappedGraph,
    NpyStreamWriter,
    fingerprint_csr_dir,
    is_csr_dir,
    open_mapped,
    read_edge_list,
    save_mapped,
)
from repro.rng import make_rng


@pytest.fixture(autouse=True)
def _no_streaming_budget():
    """Tests configure streaming explicitly; always restore defaults."""
    saved_min = csr.MIN_STREAM_BLOCK_ARCS
    yield
    csr.MIN_STREAM_BLOCK_ARCS = saved_min
    csr.configure_streaming(None)


def assert_same_graph(a: Graph, b: Graph) -> None:
    assert np.asarray(a.indptr).tobytes() == np.asarray(b.indptr).tobytes()
    assert (
        np.asarray(a.indices).tobytes() == np.asarray(b.indices).tobytes()
    )
    if a.weights is None:
        assert b.weights is None
    else:
        assert (
            np.asarray(a.weights).tobytes()
            == np.asarray(b.weights).tobytes()
        )
    assert a.directed == b.directed
    assert a.fingerprint == b.fingerprint


class TestChunkedGeneration:
    @pytest.mark.parametrize("block_edges", [97, 1024, 1 << 20])
    def test_blocks_concatenate_to_monolithic_stream(self, block_edges):
        n, avg, exp, seed = 500, 6.0, 2.1, 42
        mono = chung_lu(n, avg, exponent=exp, seed=seed)
        blocks = list(
            chung_lu_edge_blocks(
                n, avg, exponent=exp, seed=seed, block_edges=block_edges
            )
        )
        src = np.concatenate([b[0] for b in blocks])
        dst = np.concatenate([b[1] for b in blocks])
        rebuilt = from_edges(
            src,
            dst,
            num_vertices=n,
            directed=True,
            dedup=True,
            drop_self_loops=True,
        )
        assert_same_graph(mono, rebuilt)

    def test_block_size_invariant(self):
        first = list(
            chung_lu_edge_blocks(300, 5.0, seed=7, block_edges=64)
        )
        second = list(
            chung_lu_edge_blocks(300, 5.0, seed=7, block_edges=257)
        )
        assert np.array_equal(
            np.concatenate([b[0] for b in first]),
            np.concatenate([b[0] for b in second]),
        )
        assert np.array_equal(
            np.concatenate([b[1] for b in first]),
            np.concatenate([b[1] for b in second]),
        )


class TestNpyStreamWriter:
    def test_roundtrip_plain_and_mapped(self, tmp_path):
        path = tmp_path / "stream.npy"
        chunks = [np.arange(10), np.arange(10, 13), np.empty(0, np.int64)]
        with NpyStreamWriter(path, np.int64) as writer:
            for chunk in chunks:
                writer.write(chunk)
        assert writer.count == 13
        expected = np.arange(13)
        assert np.array_equal(np.load(path), expected)
        assert np.array_equal(np.load(path, mmap_mode="r"), expected)

    def test_matches_np_save_bytes(self, tmp_path):
        data = make_rng(3).random(1000)
        streamed = tmp_path / "a.npy"
        saved = tmp_path / "b.npy"
        with NpyStreamWriter(streamed, np.float64) as writer:
            writer.write(data[:400])
            writer.write(data[400:])
        np.save(saved, data)
        assert np.array_equal(np.load(streamed), np.load(saved))


class TestOnDiskBuild:
    @pytest.mark.parametrize("directed", [True, False])
    @pytest.mark.parametrize("num_blocks", [1, 3, 7])
    def test_byte_identical_to_in_ram(self, tmp_path, directed, num_blocks):
        rng = make_rng(17)
        n, m = 200, 3000
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        weights = rng.random(m)
        in_ram = from_edges(
            src,
            dst,
            weights,
            num_vertices=n,
            directed=directed,
            dedup=True,
            drop_self_loops=True,
        )
        bounds = np.linspace(0, m, num_blocks + 1).astype(int)
        blocks = [
            (src[lo:hi], dst[lo:hi], weights[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        mapped = build_csr_on_disk(
            blocks,
            num_vertices=n,
            directory=tmp_path / "g.csr",
            directed=directed,
            merge_chunk=997,  # adversarial: many tiny merge batches
        )
        assert_same_graph(in_ram, mapped)

    def test_unweighted_build(self, tmp_path):
        in_ram = chung_lu(250, 5.0, seed=3)
        blocks = chung_lu_edge_blocks(250, 5.0, seed=3, block_edges=128)
        mapped = build_csr_on_disk(
            blocks, num_vertices=250, directory=tmp_path / "g.csr"
        )
        assert_same_graph(in_ram, mapped)

    def test_profile_instantiate_mapped_matches(self, tmp_path):
        profile = PAPER_DATASETS["dblp"]  # undirected profile
        in_ram = profile.instantiate(scale=4000)
        mapped = profile.instantiate_mapped(
            scale=4000, directory=str(tmp_path / "dblp.csr"), block_edges=777
        )
        assert_same_graph(in_ram, mapped)

    def test_rejects_non_dedup(self, tmp_path):
        with pytest.raises(GraphFormatError):
            build_csr_on_disk(
                [],
                num_vertices=4,
                directory=tmp_path / "g.csr",
                dedup=False,
            )

    def test_choose_block_edges_honours_budget(self):
        csr.configure_streaming(max_ram_bytes=1)
        assert choose_block_edges(directed=True) == 1 << 16  # clamped floor
        csr.configure_streaming(max_ram_bytes=1 << 40)
        assert choose_block_edges(directed=True) == 1 << 23  # clamped cap
        csr.configure_streaming(None)
        default = choose_block_edges(directed=True)
        assert 1 << 16 <= default <= 1 << 23
        assert choose_block_edges(directed=False) <= default


class TestMappedGraph:
    @pytest.fixture()
    def pair(self, tmp_path):
        graph = chung_lu(300, 6.0, seed=11)
        mapped = save_mapped(graph, tmp_path / "g.csr")
        return graph, mapped

    def test_interface_matches(self, pair):
        graph, mapped = pair
        assert isinstance(mapped, MappedGraph)
        assert mapped.mapped and not graph.mapped
        assert mapped.num_vertices == graph.num_vertices
        assert mapped.num_arcs == graph.num_arcs
        assert np.array_equal(mapped.degrees, graph.degrees)
        assert mapped.fingerprint == graph.fingerprint

    def test_csr_dir_detection_and_fingerprint(self, pair, tmp_path):
        graph, mapped = pair
        assert is_csr_dir(mapped.directory)
        assert not is_csr_dir(str(tmp_path))
        assert fingerprint_csr_dir(mapped.directory) == graph.fingerprint

    def test_warm_reopen(self, pair):
        _, mapped = pair
        reopened = open_mapped(mapped.directory)
        assert_same_graph(mapped, reopened)

    def test_pickle_ships_directory_only(self, pair):
        _, mapped = pair
        payload = pickle.dumps(mapped)
        assert len(payload) < 4096  # the path, not the arrays
        clone = pickle.loads(payload)
        assert_same_graph(mapped, clone)

    def test_open_mapped_rejects_torn_directory(self, pair):
        _, mapped = pair
        indices = np.array(np.load(f"{mapped.directory}/indices.npy"))
        np.save(f"{mapped.directory}/indices.npy", indices[:-5])
        with pytest.raises(GraphFormatError):
            open_mapped(mapped.directory)


class TestStreamingDispatch:
    def test_in_ram_graphs_never_stream(self):
        graph = chung_lu(100, 4.0, seed=1)
        csr.configure_streaming(max_ram_bytes=1)
        assert streaming_block_arcs(graph) is None

    def test_mapped_graphs_stream_with_budgeted_blocks(self, tmp_path):
        mapped = save_mapped(chung_lu(100, 4.0, seed=1), tmp_path / "g.csr")
        assert streaming_block_arcs(mapped) is not None
        csr.configure_streaming(max_ram_bytes=1)
        assert streaming_block_arcs(mapped) == csr.MIN_STREAM_BLOCK_ARCS

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(GraphFormatError):
            csr.configure_streaming(max_ram_bytes=0)

    def test_iter_row_blocks_covers_rows(self):
        graph = chung_lu(200, 8.0, seed=5)
        blocks = list(iter_row_blocks(graph.indptr, 64))
        assert blocks[0][0] == 0 and blocks[-1][1] == graph.num_vertices
        for (_, hi), (lo2, _) in zip(blocks[:-1], blocks[1:]):
            assert hi == lo2
        for lo, hi in blocks:
            assert hi > lo

    def test_iter_frontier_blocks_covers_frontier(self):
        degrees = make_rng(2).integers(0, 50, size=300)
        blocks = list(iter_frontier_blocks(degrees, 100))
        assert blocks[0][0] == 0 and blocks[-1][1] == degrees.size
        for (_, hi), (lo2, _) in zip(blocks[:-1], blocks[1:]):
            assert hi == lo2

    def test_propagate_mass_streams_identically(self, tmp_path):
        graph = chung_lu(400, 7.0, seed=23)
        mapped = save_mapped(graph, tmp_path / "g.csr")
        csr.MIN_STREAM_BLOCK_ARCS = 64
        csr.configure_streaming(max_ram_bytes=1)  # many tiny row blocks
        per_vertex = make_rng(29).random(graph.num_vertices)
        assert (
            propagate_mass(graph, per_vertex).tobytes()
            == propagate_mass(mapped, per_vertex).tobytes()
        )


class TestStreamingSegmentReductions:
    def _candidates(self, size=5000, cells=64):
        rng = make_rng(31)
        rows = rng.integers(0, 8, size=size)
        cols = rng.integers(0, cells // 8, size=size)
        return rows, cols

    @pytest.mark.parametrize("block", [100, 999, 10_000])
    def test_segment_min_streaming_bit_identical(self, block):
        rows, cols = self._candidates()
        values = make_rng(37).random(rows.size)
        base = segment_min(rows, cols, values, 8)
        streamed = segment_min_streaming(
            rows, cols, values, 8, block_size=block
        )
        for a, b in zip(base, streamed):
            assert a.tobytes() == b.tobytes()

    @pytest.mark.parametrize("block", [100, 999])
    def test_segment_sum_streaming_exact_for_counts(self, block):
        rows, cols = self._candidates()
        ones = np.ones(rows.size)
        base = segment_sum(rows, cols, ones, 8)
        streamed = segment_sum_streaming(rows, cols, ones, 8, block)
        for a, b in zip(base, streamed):
            assert a.tobytes() == b.tobytes()

    def test_segment_sum_streaming_close_for_floats(self):
        rows, cols = self._candidates()
        values = make_rng(41).random(rows.size)
        base = segment_sum(rows, cols, values, 8)
        streamed = segment_sum_streaming(rows, cols, values, 8, 777)
        assert np.array_equal(base[0], streamed[0])
        assert np.array_equal(base[1], streamed[1])
        np.testing.assert_allclose(base[2], streamed[2], rtol=1e-12)


class TestStreamingKernels:
    """Mapped-graph kernel rounds vs in-RAM, forced multi-block."""

    @pytest.fixture()
    def pair(self, tmp_path):
        profile = PAPER_DATASETS["livejournal"]
        graph = profile.instantiate(scale=2000)
        mapped = save_mapped(graph, tmp_path / "lj.csr")
        csr.MIN_STREAM_BLOCK_ARCS = 128
        csr.configure_streaming(max_ram_bytes=1)
        return graph, mapped

    @staticmethod
    def _run(kernel, workload=32):
        kernel.start_batch(workload)
        for _ in range(10_000):
            if kernel.step().done:
                break
        return kernel

    @staticmethod
    def _router(graph):
        from repro.graph.mirrors import build_mirror_plan
        from repro.graph.partition import hash_partition
        from repro.messages.routing import PointToPointRouter

        return PointToPointRouter(
            graph, build_mirror_plan(graph, hash_partition(graph, 4))
        )

    def test_mssp_streaming_byte_identical(self, pair):
        from repro.tasks.mssp import MSSPKernel

        graph, mapped = pair
        base = self._run(
            MSSPKernel(graph, self._router(graph), make_rng(7),
                       sample_limit=8)
        )
        streamed = self._run(
            MSSPKernel(mapped, self._router(mapped), make_rng(7),
                       sample_limit=8)
        )
        assert base.round_index == streamed.round_index
        for source, dist in base.result.items():
            assert dist.tobytes() == streamed.result[source].tobytes()

    def test_bkhs_streaming_byte_identical(self, pair):
        from repro.tasks.bkhs import BKHSKernel

        graph, mapped = pair
        base = self._run(
            BKHSKernel(graph, self._router(graph), make_rng(9), k=3,
                       sample_limit=8)
        )
        streamed = self._run(
            BKHSKernel(mapped, self._router(mapped), make_rng(9), k=3,
                       sample_limit=8)
        )
        assert base.result == streamed.result
        reachable = streamed.reachable_sets()
        for source, mask in base.reachable_sets().items():
            assert np.array_equal(mask, reachable[source])


class TestChunkedEdgeList:
    def test_chunked_read_matches_single_pass(self, tmp_path, monkeypatch):
        from repro.graph import io as graph_io

        rng = make_rng(43)
        lines = [
            f"{rng.integers(0, 50)} {rng.integers(0, 50)} "
            f"{rng.random():.6f}"
            for _ in range(200)
        ]
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n" + "\n".join(lines) + "\n")
        whole = read_edge_list(path, num_vertices=50)
        monkeypatch.setattr(graph_io, "EDGE_LIST_CHUNK_LINES", 7)
        chunked = read_edge_list(path, num_vertices=50)
        assert_same_graph(whole, chunked)

    def test_bad_line_still_reported_with_position(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 nope\n")
        with pytest.raises(GraphFormatError, match=r"edges\.txt:2"):
            read_edge_list(path, num_vertices=4)


class TestBuildBudgetEstimate:
    def test_estimate_scales_with_profile(self):
        profile = PAPER_DATASETS["twitter"]
        small = profile.estimated_build_bytes(400)
        large = profile.estimated_build_bytes(50)
        assert large > small > 0

    def test_undirected_doubles_arcs(self):
        base = DatasetProfile(
            name="x", num_nodes=10_000, num_edges=50_000,
            avg_degree=5.0, source="test",
        )
        undirected = DatasetProfile(
            name="y", num_nodes=10_000, num_edges=50_000,
            avg_degree=5.0, source="test", directed=False,
        )
        assert undirected.estimated_build_bytes(1) > (
            1.9 * base.estimated_build_bytes(1)
        )

    def test_instantiate_mapped_requires_directory(self):
        with pytest.raises(ConfigurationError):
            PAPER_DATASETS["dblp"].instantiate_mapped(scale=4000)
