"""Property-style equivalence tests for the segment-reduction kernels.

The sort-based ``segment_min``/``segment_sum`` and the dense
``scatter_min_dense`` replace ``np.minimum.at``/``np.add.at`` scatters
on the kernel hot paths; these tests drive randomized ragged inputs —
empty frontiers, single-source rows, self-loop pairs, heavy duplicates,
unweighted (all-ones) values — through both implementations and assert
the replacement contract:

* ``segment_min`` is **bit-identical** to the ufunc scatter (min is
  order-independent);
* ``segment_sum`` is bit-identical in the regimes the kernels use it in
  (all-ones counts; duplicate-free cells) and ``allclose`` for general
  floats (``np.add.reduceat`` reduces pairwise, ``np.add.at``
  sequentially — last-ulp differences are expected there);
* both report exactly the touched cells, in row-major order, matching
  :func:`repro.graph.csr.dedup_pairs`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.arena import ScratchArena
from repro.graph.csr import (
    dedup_pairs,
    dedup_pairs_dense,
    propagate_mass,
    scatter_min_dense,
    segment_min,
    segment_sum,
)
from repro.graph.generators import chung_lu


def _reference_cells(rows, cols, num_rows, num_cols):
    touched = np.zeros((num_rows, num_cols), dtype=bool)
    touched[rows, cols] = True
    return np.nonzero(touched)  # row-major, like the segment kernels


def _reference_min(rows, cols, values, num_rows, num_cols):
    acc = np.full((num_rows, num_cols), np.inf)
    np.minimum.at(acc, (rows, cols), values)
    r, c = _reference_cells(rows, cols, num_rows, num_cols)
    return r, c, acc[r, c]


def _reference_sum(rows, cols, values, num_rows, num_cols):
    acc = np.zeros((num_rows, num_cols))
    np.add.at(acc, (rows, cols), values)
    r, c = _reference_cells(rows, cols, num_rows, num_cols)
    return r, c, acc[r, c]


def _ragged_cases(seed: int = 7, trials: int = 25):
    """Random (rows, cols, values, num_rows, num_cols) tuples covering
    the shapes the kernels produce."""
    rng = np.random.default_rng(seed)
    cases = [
        # Empty frontier.
        (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            3,
            5,
        ),
        # Single-source row, duplicate targets.
        (
            np.zeros(6, dtype=np.int64),
            np.array([2, 2, 0, 4, 2, 0], dtype=np.int64),
            np.array([3.0, 1.0, 2.0, 5.0, 0.5, 9.0]),
            1,
            5,
        ),
        # Self-loop-style pairs (col == row index).
        (
            np.array([0, 1, 2, 2, 1], dtype=np.int64),
            np.array([0, 1, 2, 2, 1], dtype=np.int64),
            np.array([1.0, 2.0, 3.0, 0.5, 4.0]),
            3,
            3,
        ),
    ]
    for _ in range(trials):
        num_rows = int(rng.integers(1, 12))
        num_cols = int(rng.integers(1, 40))
        size = int(rng.integers(0, 400))
        rows = rng.integers(0, num_rows, size=size, dtype=np.int64)
        cols = rng.integers(0, num_cols, size=size, dtype=np.int64)
        values = rng.normal(size=size)
        cases.append((rows, cols, values, num_rows, num_cols))
    return cases


@pytest.mark.parametrize("use_arena", [False, True])
class TestSegmentMin:
    def test_bit_identical_to_minimum_at(self, use_arena):
        for rows, cols, values, num_rows, num_cols in _ragged_cases():
            arena = ScratchArena() if use_arena else None
            if arena is not None:
                arena.new_round()
            got_r, got_c, got_v = segment_min(
                rows, cols, values, num_cols, arena
            )
            ref_r, ref_c, ref_v = _reference_min(
                rows, cols, values, num_rows, num_cols
            )
            np.testing.assert_array_equal(got_r, ref_r)
            np.testing.assert_array_equal(got_c, ref_c)
            np.testing.assert_array_equal(got_v, ref_v)  # bitwise

    def test_unweighted_all_ones(self, use_arena):
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 4, size=200, dtype=np.int64)
        cols = rng.integers(0, 9, size=200, dtype=np.int64)
        values = np.ones(200)
        arena = ScratchArena() if use_arena else None
        if arena is not None:
            arena.new_round()
        _, _, minima = segment_min(rows, cols, values, 9, arena)
        assert (minima == 1.0).all()


@pytest.mark.parametrize("use_arena", [False, True])
class TestSegmentSum:
    def test_allclose_general_floats(self, use_arena):
        for rows, cols, values, num_rows, num_cols in _ragged_cases(seed=13):
            arena = ScratchArena() if use_arena else None
            if arena is not None:
                arena.new_round()
            got_r, got_c, got_v = segment_sum(
                rows, cols, values, num_cols, arena
            )
            ref_r, ref_c, ref_v = _reference_sum(
                rows, cols, values, num_rows, num_cols
            )
            np.testing.assert_array_equal(got_r, ref_r)
            np.testing.assert_array_equal(got_c, ref_c)
            np.testing.assert_allclose(got_v, ref_v, rtol=1e-12)

    def test_bit_identical_for_ones_counts(self, use_arena):
        # The Monte-Carlo walk kernels sum all-ones counts: integer-
        # exact in float64, so pairwise vs sequential cannot differ.
        rng = np.random.default_rng(17)
        for _ in range(10):
            size = int(rng.integers(0, 500))
            rows = rng.integers(0, 6, size=size, dtype=np.int64)
            cols = rng.integers(0, 25, size=size, dtype=np.int64)
            values = np.ones(size)
            arena = ScratchArena() if use_arena else None
            if arena is not None:
                arena.new_round()
            _, _, got = segment_sum(rows, cols, values, 25, arena)
            _, _, ref = _reference_sum(rows, cols, values, 6, 25)
            np.testing.assert_array_equal(got, ref)  # bitwise

    def test_bit_identical_for_duplicate_free_cells(self, use_arena):
        # The arc-list call sites feed duplicate-free (row, col) pairs:
        # every cell has one summand, so the reduction is a permutation.
        rng = np.random.default_rng(19)
        flat = rng.choice(8 * 30, size=100, replace=False)
        rows, cols = np.divmod(flat.astype(np.int64), np.int64(30))
        values = rng.normal(size=100)
        arena = ScratchArena() if use_arena else None
        if arena is not None:
            arena.new_round()
        _, _, got = segment_sum(rows, cols, values, 30, arena)
        _, _, ref = _reference_sum(rows, cols, values, 8, 30)
        np.testing.assert_array_equal(got, ref)  # bitwise


@pytest.mark.parametrize("use_arena", [False, True])
class TestScatterMinDense:
    def test_matches_reference(self, use_arena):
        rng = np.random.default_rng(23)
        for _ in range(10):
            num_rows = int(rng.integers(1, 8))
            num_cols = int(rng.integers(1, 30))
            size = int(rng.integers(1, 300))
            rows = rng.integers(0, num_rows, size=size, dtype=np.int64)
            cols = rng.integers(0, num_cols, size=size, dtype=np.int64)
            values = rng.normal(size=size)
            state = rng.normal(size=(num_rows, num_cols))
            expected = state.copy()
            np.minimum.at(expected, (rows, cols), values)
            ref_state = state.copy()

            mask = np.zeros((num_rows, num_cols), dtype=bool)
            arena = ScratchArena() if use_arena else None
            if arena is not None:
                arena.new_round()
            cells, before, after = scatter_min_dense(
                rows, cols, values, state, mask, arena
            )
            np.testing.assert_array_equal(state, expected)  # bitwise
            assert not mask.any()  # mask handed back clean
            ref_r, ref_c = _reference_cells(rows, cols, num_rows, num_cols)
            ref_cells = ref_r * num_cols + ref_c
            np.testing.assert_array_equal(cells, ref_cells)
            np.testing.assert_array_equal(
                before, ref_state.reshape(-1)[ref_cells]
            )
            np.testing.assert_array_equal(
                after, expected.reshape(-1)[ref_cells]
            )


class TestDedupEquivalence:
    def test_dense_matches_sparse_randomized(self):
        rng = np.random.default_rng(29)
        for _ in range(15):
            num_rows = int(rng.integers(1, 10))
            num_cols = int(rng.integers(1, 50))
            size = int(rng.integers(0, 400))
            rows = rng.integers(0, num_rows, size=size, dtype=np.int64)
            cols = rng.integers(0, num_cols, size=size, dtype=np.int64)
            sparse_r, sparse_c = dedup_pairs(rows, cols, num_cols)
            mask = np.zeros((num_rows, num_cols), dtype=bool)
            dense_r, dense_c = dedup_pairs_dense(rows, cols, mask)
            np.testing.assert_array_equal(dense_r, sparse_r)
            np.testing.assert_array_equal(dense_c, sparse_c)
            assert not mask.any()


class TestPropagateMass:
    def test_operator_matches_bincount_fallback(self):
        graph = chung_lu(200, avg_degree=6.0, seed=31, name="pm-test")
        rng = np.random.default_rng(37)
        per_vertex = rng.random(graph.num_vertices)
        per_vertex[rng.integers(0, graph.num_vertices, 40)] = 0.0
        expected = np.bincount(
            graph.indices,
            weights=np.repeat(per_vertex, np.diff(graph.indptr)),
            minlength=graph.num_vertices,
        )
        got = propagate_mass(graph, per_vertex)
        # Bit-identical whether or not the scipy operator path is
        # available: the reverse-CSR matvec accumulates per target in
        # arc order, exactly like the weighted bincount.
        np.testing.assert_array_equal(got, expected)
