"""Streamed mirror-plan and partition construction for mapped graphs.

Mapped graphs build their partitions and mirror plans in CSR row blocks
(:func:`repro.graph.csr.iter_row_blocks`) instead of materialising the
O(m) per-arc owner arrays. The contract is the same byte-identity the
streaming kernels promise: every tally, replication factor and owner
array must equal the in-RAM pass exactly, at any block size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import csr
from repro.graph.generators import chung_lu
from repro.graph.io import save_mapped
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import (
    edge_partition,
    hash_partition,
    partition_graph,
    range_partition,
)
from repro.perf.cache import clear_cache

STRATEGIES = ("hash", "range", "edge-cut")


@pytest.fixture(autouse=True)
def _fresh_state():
    saved_min = csr.MIN_STREAM_BLOCK_ARCS
    clear_cache()
    yield
    csr.MIN_STREAM_BLOCK_ARCS = saved_min
    csr.configure_streaming(None)
    clear_cache()


@pytest.fixture()
def graphs(tmp_path):
    """The same graph twice: in-RAM and memory-mapped with tiny blocks,
    so every plan pass streams multiple row blocks."""
    in_ram = chung_lu(600, 9.0, seed=42, name="plans")
    mapped = save_mapped(in_ram, tmp_path / "plans.csr")
    csr.MIN_STREAM_BLOCK_ARCS = 256
    csr.configure_streaming(max_ram_bytes=1)  # clamp to the floor
    assert csr.streaming_block_arcs(mapped) is not None
    return in_ram, mapped


def assert_same_partition(a, b) -> None:
    assert a.owner.tobytes() == b.owner.tobytes()
    assert (
        a.vertices_per_machine.tobytes() == b.vertices_per_machine.tobytes()
    )
    assert a.arcs_per_machine.tobytes() == b.arcs_per_machine.tobytes()
    assert a.cut_arcs == b.cut_arcs
    assert a.replication_factor == b.replication_factor
    assert a.strategy == b.strategy


class TestStreamedPartitions:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_mapped_matches_in_ram(self, graphs, strategy):
        in_ram, mapped = graphs
        for machines in (1, 4, 7):
            expected = partition_graph(in_ram, machines, strategy)
            clear_cache()  # the fingerprints match; force a rebuild
            streamed = partition_graph(mapped, machines, strategy)
            assert_same_partition(expected, streamed)

    def test_mapped_leaves_arc_dst_owner_unset(self, graphs):
        in_ram, mapped = graphs
        assert hash_partition(in_ram, 4).arc_dst_owner is not None
        assert hash_partition(mapped, 4).arc_dst_owner is None
        assert range_partition(mapped, 4).arc_dst_owner is None
        assert edge_partition(mapped, 4).arc_dst_owner is None

    def test_block_size_does_not_change_plans(self, graphs):
        _in_ram, mapped = graphs
        small = edge_partition(mapped, 5)
        csr.MIN_STREAM_BLOCK_ARCS = 1024
        large = edge_partition(mapped, 5)
        assert_same_partition(small, large)


class TestStreamedMirrorPlans:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_mapped_matches_in_ram(self, graphs, strategy):
        in_ram, mapped = graphs
        expected_part = partition_graph(in_ram, 4, strategy)
        expected = build_mirror_plan(in_ram, expected_part, 12)
        clear_cache()
        streamed_part = partition_graph(mapped, 4, strategy)
        streamed = build_mirror_plan(mapped, streamed_part, 12)
        assert (
            expected.mirrored.tobytes() == streamed.mirrored.tobytes()
        )
        assert (
            expected.remote_machines.tobytes()
            == streamed.remote_machines.tobytes()
        )
        assert (
            expected.remote_neighbors.tobytes()
            == streamed.remote_neighbors.tobytes()
        )
        assert (
            expected.local_neighbors.tobytes()
            == streamed.local_neighbors.tobytes()
        )
        assert expected.num_mirrors == streamed.num_mirrors

    def test_isolated_vertices_counted(self, tmp_path):
        """Replication factor must count isolated vertices' master
        replicas in the streamed pass too."""
        from repro.graph.build import from_edges

        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([1, 0], dtype=np.int64)
        in_ram = from_edges(src, dst, num_vertices=6, name="isolated")
        mapped = save_mapped(in_ram, tmp_path / "isolated.csr")
        csr.MIN_STREAM_BLOCK_ARCS = 1
        csr.configure_streaming(max_ram_bytes=1)
        expected = edge_partition(in_ram, 3)
        streamed = edge_partition(mapped, 3)
        assert expected.replication_factor == streamed.replication_factor
