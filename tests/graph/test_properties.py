"""Property-based tests (hypothesis) for graph invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edges
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import edge_partition, hash_partition


@st.composite
def edge_arrays(draw, max_vertices=40, max_edges=150):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=m,
            max_size=m,
        )
    )
    dst = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=m,
            max_size=m,
        )
    )
    return n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)


@given(edge_arrays())
@settings(max_examples=60, deadline=None)
def test_csr_preserves_multiset_of_edges(data):
    n, src, dst = data
    g = from_edges(src, dst, num_vertices=n)
    rebuilt = sorted((int(s), int(d)) for s, d, _ in g.iter_edges())
    original = sorted(zip(src.tolist(), dst.tolist()))
    assert rebuilt == original


@given(edge_arrays())
@settings(max_examples=60, deadline=None)
def test_degrees_sum_to_arc_count(data):
    n, src, dst = data
    g = from_edges(src, dst, num_vertices=n)
    assert int(g.out_degree().sum()) == g.num_arcs


@given(edge_arrays())
@settings(max_examples=60, deadline=None)
def test_reverse_is_involution(data):
    n, src, dst = data
    g = from_edges(src, dst, num_vertices=n)
    assert g.reverse().reverse() == g


@given(edge_arrays(), st.integers(min_value=1, max_value=9))
@settings(max_examples=60, deadline=None)
def test_hash_partition_invariants(data, machines):
    n, src, dst = data
    g = from_edges(src, dst, num_vertices=n)
    part = hash_partition(g, machines)
    part.validate(g)
    assert part.cut_arcs <= g.num_arcs
    assert 0.0 <= part.cut_fraction <= 1.0


@given(edge_arrays(), st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_edge_partition_replication_bounds(data, machines):
    n, src, dst = data
    g = from_edges(src, dst, num_vertices=n)
    part = edge_partition(g, machines)
    assert 1.0 <= part.replication_factor <= machines


@given(edge_arrays(), st.integers(min_value=2, max_value=8))
@settings(max_examples=40, deadline=None)
def test_mirror_plan_consistency(data, machines):
    n, src, dst = data
    g = from_edges(src, dst, num_vertices=n)
    part = hash_partition(g, machines)
    plan = build_mirror_plan(g, part, degree_threshold=3)
    degrees = np.diff(g.indptr)
    assert (plan.remote_neighbors + plan.local_neighbors == degrees).all()
    assert (plan.remote_machines <= np.minimum(degrees, machines - 1)).all()
    # Broadcast with mirrors never costs more than without.
    assert (
        plan.broadcast_network_messages() <= plan.remote_neighbors
    ).all()
