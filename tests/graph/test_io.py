"""Round-trip tests for graph serialization."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


class TestEdgeListText:
    def test_round_trip_unweighted(self, tiny_graph, tmp_path):
        path = tmp_path / "tiny.txt"
        write_edge_list(tiny_graph, path)
        loaded = read_edge_list(path, num_vertices=6)
        assert loaded == tiny_graph

    def test_round_trip_weighted(self, weighted_graph, tmp_path):
        path = tmp_path / "weighted.txt"
        write_edge_list(weighted_graph, path)
        loaded = read_edge_list(path, num_vertices=5)
        assert loaded == weighted_graph

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# mid comment\n1 2\n\n")
        g = read_edge_list(path)
        assert g.num_arcs == 2

    def test_inconsistent_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n1 2 3.5\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_garbage_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nfoo bar\n")
        with pytest.raises(GraphFormatError, match="bad.txt:2"):
            read_edge_list(path)

    def test_wrong_width_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestNpz:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "tiny.npz"
        save_npz(tiny_graph, path)
        loaded = load_npz(path)
        assert loaded == tiny_graph
        assert loaded.name == tiny_graph.name

    def test_round_trip_weighted(self, weighted_graph, tmp_path):
        path = tmp_path / "w.npz"
        save_npz(weighted_graph, path)
        loaded = load_npz(path)
        assert loaded == weighted_graph
        assert loaded.is_weighted

    def test_non_graph_archive_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_npz(path)
