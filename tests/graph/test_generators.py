"""Tests for synthetic graph generators and dataset profiles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.datasets import (
    DatasetProfile,
    PAPER_DATASETS,
    clear_dataset_cache,
    load_dataset,
)
from repro.graph.generators import (
    chain,
    chung_lu,
    complete,
    erdos_renyi,
    grid_2d,
    star,
)
from repro.graph.stats import compute_stats, degree_gini


class TestDeterministicGenerators:
    def test_chain_structure(self):
        g = chain(5, directed=True)
        assert g.num_vertices == 5
        assert g.num_arcs == 4
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(4)) == []

    def test_chain_undirected(self):
        g = chain(5, directed=False)
        assert g.num_arcs == 8
        assert set(g.neighbors(2)) == {1, 3}

    def test_chain_weighted(self):
        g = chain(4, directed=True, weight=2.5)
        assert g.is_weighted
        assert g.edge_weights(0)[0] == 2.5

    def test_star_degrees(self):
        g = star(10, directed=False)
        assert g.out_degree(0) == 9
        assert all(g.out_degree(v) == 1 for v in range(1, 10))

    def test_complete_graph(self):
        g = complete(5)
        assert g.num_arcs == 20
        assert all(g.out_degree(v) == 4 for v in range(5))

    def test_grid_corner_degrees(self):
        g = grid_2d(3, 4, directed=False)
        assert g.num_vertices == 12
        assert g.out_degree(0) == 2  # corner
        assert g.out_degree(5) == 4  # interior

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_sizes_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            chain(bad)
        with pytest.raises(ConfigurationError):
            grid_2d(bad, 3)


class TestRandomGenerators:
    def test_erdos_renyi_size_and_degree(self):
        g = erdos_renyi(500, avg_degree=8.0, seed=3)
        assert g.num_vertices == 500
        # Dedup removes a few arcs; mean degree stays in range.
        assert 6.0 < g.average_degree <= 8.0

    def test_erdos_renyi_deterministic_per_seed(self):
        a = erdos_renyi(100, 5.0, seed=42)
        b = erdos_renyi(100, 5.0, seed=42)
        assert a == b

    def test_erdos_renyi_seed_changes_graph(self):
        a = erdos_renyi(100, 5.0, seed=1)
        b = erdos_renyi(100, 5.0, seed=2)
        assert a != b

    def test_chung_lu_degree_skew(self):
        uniform = erdos_renyi(800, 10.0, seed=5)
        skewed = chung_lu(800, 10.0, exponent=2.0, seed=5)
        assert degree_gini(np.diff(skewed.indptr)) > degree_gini(
            np.diff(uniform.indptr)
        )

    def test_chung_lu_no_self_loops(self):
        g = chung_lu(200, 6.0, seed=9)
        for s, d, _ in g.iter_edges():
            assert s != d

    def test_chung_lu_avg_degree_close(self):
        g = chung_lu(1000, avg_degree=8.0, seed=13)
        assert 5.5 <= g.average_degree <= 9.5

    def test_bad_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            chung_lu(100, 5.0, exponent=0.9)


class TestDatasets:
    def test_profiles_match_table1(self):
        dblp = PAPER_DATASETS["dblp"]
        assert dblp.num_nodes == 613_600
        assert dblp.avg_degree == 6.5
        twitter = PAPER_DATASETS["twitter"]
        assert twitter.num_edges == 1_500_000_000

    def test_all_six_datasets_present(self):
        assert set(PAPER_DATASETS) == {
            "web-st",
            "dblp",
            "livejournal",
            "orkut",
            "twitter",
            "friendster",
        }

    def test_scaled_nodes(self):
        profile = PAPER_DATASETS["dblp"]
        assert profile.scaled_nodes(400) == round(613_600 / 400)
        assert profile.scaled_nodes(10**9) == 64  # floor

    def test_load_dataset_case_insensitive(self):
        from repro.perf.cache import get_cache

        cache = get_cache()
        saved = cache.capacity
        cache.capacity = max(saved, 8)  # memoisation needs a live LRU
        try:
            g1 = load_dataset("DBLP")
            g2 = load_dataset("dblp")
            assert g1 is g2  # memoised
        finally:
            cache.capacity = saved

    def test_load_dataset_deterministic_across_calls(self):
        clear_dataset_cache()
        a = load_dataset("web-st", cache=False)
        b = load_dataset("web-st", cache=False)
        assert a == b

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            load_dataset("imaginary-graph")

    def test_scaled_instance_statistics(self):
        g = load_dataset("dblp", scale=400)
        profile = PAPER_DATASETS["dblp"]
        assert g.num_vertices == profile.scaled_nodes(400)
        # Table 1's d_avg counts each undirected edge once, so the mean
        # out-degree of the symmetrised stand-in is ~2x that figure.
        expected = profile.avg_degree * (1 if profile.directed else 2)
        assert abs(g.average_degree - expected) < 0.4 * expected

    def test_custom_profile(self):
        profile = DatasetProfile(
            name="toy",
            num_nodes=10_000,
            num_edges=50_000,
            avg_degree=5.0,
            source="test",
        )
        g = profile.instantiate(scale=10, seed=1)
        assert g.num_vertices == 1000


class TestStats:
    def test_gini_uniform_is_zero(self):
        assert degree_gini(np.full(50, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_extreme_skew(self):
        degrees = np.zeros(100)
        degrees[0] = 1000
        assert degree_gini(degrees) > 0.9

    def test_compute_stats_fields(self, star_graph):
        stats = compute_stats(star_graph)
        assert stats.max_degree == 11
        assert stats.num_vertices == 12
        assert stats.isolated_vertices == 0
        row = stats.as_row()
        assert row["d_max"] == 11


class TestDiskCache:
    def test_npz_round_trip_via_cache_dir(self, tmp_path):
        from repro.graph.datasets import clear_dataset_cache

        clear_dataset_cache()
        first = load_dataset(
            "web-st", scale=2000, cache=False, cache_dir=str(tmp_path)
        )
        files = list(tmp_path.glob("web-st-*.npz"))
        assert len(files) == 1
        clear_dataset_cache()
        second = load_dataset(
            "web-st", scale=2000, cache=False, cache_dir=str(tmp_path)
        )
        assert first == second
