"""Torn CSR directories: detection, quarantine, and rebuild.

A crash mid-write leaves a CSR directory torn — truncated arrays, an
unparsable sidecar, or sizes that disagree with ``graph.json``. The
tolerant loader must never hand such a directory to an engine: it moves
the evidence aside as ``<dir>.corrupt`` (counted in the cache stats so
it surfaces in ``BENCH_perf.json``) and returns ``None`` so the caller
rebuilds under the original name.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.graph.io import (
    is_csr_dir,
    load_csr_dir,
    quarantine_csr_dir,
    save_mapped,
)
from repro.perf.cache import get_cache


@pytest.fixture()
def graph():
    src = np.array([0, 0, 1, 2, 3, 3], dtype=np.int64)
    dst = np.array([1, 2, 3, 0, 1, 2], dtype=np.int64)
    weights = np.array([1.0, 2.0, 0.5, 4.0, 1.5, 3.0])
    return from_edges(src, dst, weights=weights, name="tiny")


@pytest.fixture()
def csr_dir(graph, tmp_path):
    directory = str(tmp_path / "tiny.csr")
    save_mapped(graph, directory)
    return directory


def corruptions():
    return get_cache().stats.corruptions


class TestCleanDirectory:
    def test_round_trips_byte_identical(self, graph, csr_dir):
        mapped = load_csr_dir(csr_dir)
        assert mapped is not None
        assert np.asarray(mapped.indptr).tobytes() == np.asarray(
            graph.indptr
        ).tobytes()
        assert np.asarray(mapped.indices).tobytes() == np.asarray(
            graph.indices
        ).tobytes()
        assert np.asarray(mapped.weights).tobytes() == np.asarray(
            graph.weights
        ).tobytes()
        assert mapped.fingerprint == graph.fingerprint

    def test_missing_directory_is_not_quarantined(self, tmp_path):
        before = corruptions()
        assert load_csr_dir(tmp_path / "never-built.csr") is None
        assert corruptions() == before
        assert not os.path.exists(str(tmp_path / "never-built.csr.corrupt"))


class TestTornDirectories:
    def assert_quarantined(self, directory):
        before = corruptions()
        assert load_csr_dir(directory) is None
        assert not os.path.exists(directory)
        assert os.path.isdir(directory + ".corrupt")
        assert corruptions() == before + 1

    def test_truncated_indices_quarantine(self, csr_dir):
        path = os.path.join(csr_dir, "indices.npy")
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 16)
        self.assert_quarantined(csr_dir)

    def test_unparsable_sidecar_quarantines(self, csr_dir):
        with open(os.path.join(csr_dir, "graph.json"), "w") as fh:
            fh.write("{ torn mid-write")
        self.assert_quarantined(csr_dir)

    def test_weights_size_mismatch_quarantines(self, csr_dir):
        np.save(os.path.join(csr_dir, "weights.npy"), np.zeros(2))
        self.assert_quarantined(csr_dir)

    def test_sidecar_disagreeing_with_arrays_quarantines(self, csr_dir):
        meta_path = os.path.join(csr_dir, "graph.json")
        with open(meta_path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        meta["num_arcs"] += 1
        with open(meta_path, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        self.assert_quarantined(csr_dir)

    def test_missing_sidecar_means_incomplete_build_not_corruption(
        self, csr_dir
    ):
        # The sidecar is written last: its absence is the normal
        # crashed-before-commit window, not damage worth preserving.
        os.unlink(os.path.join(csr_dir, "graph.json"))
        before = corruptions()
        assert not is_csr_dir(csr_dir)
        assert load_csr_dir(csr_dir) is None
        assert corruptions() == before

    def test_rebuild_replaces_quarantine_under_original_name(
        self, graph, csr_dir
    ):
        with open(os.path.join(csr_dir, "graph.json"), "w") as fh:
            fh.write("not json")
        assert load_csr_dir(csr_dir) is None
        # Rebuild into the now-free original name and load cleanly.
        save_mapped(graph, csr_dir)
        mapped = load_csr_dir(csr_dir)
        assert mapped is not None
        assert mapped.fingerprint == graph.fingerprint
        assert os.path.isdir(csr_dir + ".corrupt")

    def test_repeated_quarantine_keeps_latest_evidence(self, graph, csr_dir):
        marker = os.path.join(csr_dir, "marker-first")
        open(marker, "w").close()
        quarantine_csr_dir(csr_dir)
        save_mapped(graph, csr_dir)
        quarantine_csr_dir(csr_dir)
        quarantined = csr_dir + ".corrupt"
        assert os.path.isdir(quarantined)
        assert not os.path.exists(
            os.path.join(quarantined, "marker-first")
        )
