"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_list, from_edges
from repro.graph.csr import Graph


class TestConstruction:
    def test_basic_counts(self, tiny_graph):
        assert tiny_graph.num_vertices == 6
        assert tiny_graph.num_arcs == 7
        assert tiny_graph.num_edges == 7  # directed

    def test_neighbors_sorted_per_vertex(self, tiny_graph):
        assert list(tiny_graph.neighbors(0)) == [1, 2]
        assert list(tiny_graph.neighbors(5)) == [0]
        assert list(tiny_graph.neighbors(1)) == [2]

    def test_out_degree_scalar_and_vector(self, tiny_graph):
        assert tiny_graph.out_degree(0) == 2
        assert tiny_graph.out_degree(3) == 1
        np.testing.assert_array_equal(
            tiny_graph.out_degree(), [2, 1, 1, 1, 1, 1]
        )

    def test_average_degree(self, tiny_graph):
        assert tiny_graph.average_degree == pytest.approx(7 / 6)

    def test_undirected_stores_both_arcs(self):
        g = from_edge_list([(0, 1), (1, 2)], directed=False)
        assert g.num_arcs == 4
        assert g.num_edges == 2
        assert 0 in g.neighbors(1) and 2 in g.neighbors(1)

    def test_empty_graph(self):
        g = from_edges(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            num_vertices=3,
        )
        assert g.num_vertices == 3
        assert g.num_arcs == 0
        assert g.average_degree == 0.0

    def test_arrays_are_read_only(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.indices[0] = 5

    def test_invalid_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([0, 2]), np.array([0], dtype=np.int64))

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(np.array([0, 1]), np.array([7], dtype=np.int64))

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_list([(0, 1, -2.0)])

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_list([(0, 5)], num_vertices=3)


class TestDerivedViews:
    def test_reverse_roundtrip(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert rev.num_arcs == tiny_graph.num_arcs
        forward = {(s, d) for s, d, _ in tiny_graph.iter_edges()}
        backward = {(d, s) for s, d, _ in rev.iter_edges()}
        assert forward == backward

    def test_reverse_preserves_weights(self, weighted_graph):
        rev = weighted_graph.reverse()
        forward = {(s, d): w for s, d, w in weighted_graph.iter_edges()}
        for s, d, w in rev.iter_edges():
            assert forward[(d, s)] == w

    def test_edge_sources_alignment(self, tiny_graph):
        src = tiny_graph.edge_sources()
        assert src.size == tiny_graph.num_arcs
        rebuilt = {
            (int(s), int(d))
            for s, d in zip(src, tiny_graph.indices)
        }
        direct = {(s, d) for s, d, _ in tiny_graph.iter_edges()}
        assert rebuilt == direct

    def test_transition_rows_sum_to_one(self, tiny_graph):
        indptr, _indices, probs = tiny_graph.transition_matrix_rows()
        for v in range(tiny_graph.num_vertices):
            row = probs[indptr[v] : indptr[v + 1]]
            if row.size:
                assert row.sum() == pytest.approx(1.0)

    def test_transition_dangling_row_empty(self):
        g = from_edge_list([(0, 1)], num_vertices=2)
        indptr, _indices, probs = g.transition_matrix_rows()
        assert indptr[1] == indptr[2]  # vertex 1 dangling

    def test_edge_weights_default_ones(self, tiny_graph):
        np.testing.assert_array_equal(
            tiny_graph.edge_weights(0), [1.0, 1.0]
        )

    def test_equality(self, tiny_graph):
        clone = Graph(
            tiny_graph.indptr.copy(),
            tiny_graph.indices.copy(),
            directed=True,
            name="other-name",
        )
        assert clone == tiny_graph  # name not part of equality

    def test_dedup_keeps_min_weight(self):
        g = from_edge_list(
            [(0, 1, 5.0), (0, 1, 2.0), (0, 1, 9.0)], dedup=True
        )
        assert g.num_arcs == 1
        assert g.edge_weights(0)[0] == 2.0

    def test_drop_self_loops(self):
        g = from_edge_list([(0, 0), (0, 1), (1, 1)], drop_self_loops=True)
        assert g.num_arcs == 1
