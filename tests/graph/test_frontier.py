"""Shared CSR frontier kernels vs naive references."""

import numpy as np
import pytest

from repro.graph.csr import (
    FrontierScratch,
    dedup_pairs,
    dedup_pairs_dense,
    expand_frontier,
    propagate_mass,
)
from repro.graph.generators import chung_lu


@pytest.fixture
def skewed_graph():
    """A small power-law digraph including zero-out-degree vertices."""
    return chung_lu(200, avg_degree=6.0, exponent=2.0, seed=42)


def naive_expand(graph, verts):
    """Reference: per-frontier-vertex python loop over CSR slices."""
    arc_positions = []
    for v in verts:
        arc_positions.extend(range(graph.indptr[v], graph.indptr[v + 1]))
    return np.asarray(arc_positions, dtype=np.int64)


class TestExpandFrontier:
    def test_matches_naive(self, skewed_graph):
        rng = np.random.default_rng(3)
        scratch = FrontierScratch()
        for trial in range(10):
            verts = rng.choice(
                skewed_graph.num_vertices, size=30, replace=False
            ).astype(np.int64)
            arc_pos, counts, kept = expand_frontier(
                skewed_graph, verts, scratch
            )
            np.testing.assert_array_equal(
                arc_pos, naive_expand(skewed_graph, verts)
            )
            # counts covers the kept (non-zero-degree) vertices only.
            survivors = verts if kept is None else verts[kept]
            np.testing.assert_array_equal(
                counts, skewed_graph.degrees[survivors]
            )
            assert int(counts.sum()) == arc_pos.size

    def test_zero_degree_vertices_filtered(self, skewed_graph):
        degrees = skewed_graph.degrees
        zeros = np.flatnonzero(degrees == 0)
        assert zeros.size > 0, "fixture should contain sinks"
        verts = np.concatenate([zeros[:2], np.flatnonzero(degrees > 0)[:3]])
        arc_pos, counts, kept = expand_frontier(skewed_graph, verts)
        assert kept is not None
        np.testing.assert_array_equal(
            arc_pos, naive_expand(skewed_graph, verts)
        )
        assert counts.min() > 0

    def test_empty_frontier(self, skewed_graph):
        arc_pos, counts, _kept = expand_frontier(
            skewed_graph, np.empty(0, dtype=np.int64)
        )
        assert arc_pos.size == 0
        assert counts.size == 0

    def test_scratch_buffer_grows_and_reuses(self):
        scratch = FrontierScratch()
        small = scratch.arange(4)
        np.testing.assert_array_equal(small, np.arange(4))
        big = scratch.arange(100)
        np.testing.assert_array_equal(big, np.arange(100))
        again = scratch.arange(50)
        assert again.base is scratch.arange(50).base  # same backing buffer


class TestDedupPairs:
    def test_matches_np_unique(self):
        rng = np.random.default_rng(9)
        rows = rng.integers(0, 8, size=500).astype(np.int64)
        cols = rng.integers(0, 40, size=500).astype(np.int64)
        ur, uc = dedup_pairs(rows.copy(), cols, 40)
        keys = np.unique(rows * 40 + cols)
        np.testing.assert_array_equal(ur, keys // 40)
        np.testing.assert_array_equal(uc, keys % 40)

    def test_dense_matches_sort_based(self):
        rng = np.random.default_rng(10)
        rows = rng.integers(0, 8, size=500).astype(np.int64)
        cols = rng.integers(0, 40, size=500).astype(np.int64)
        mask = np.zeros((8, 40), dtype=bool)
        dr, dc = dedup_pairs_dense(rows, cols, mask)
        sr, sc = dedup_pairs(rows.copy(), cols, 40)
        np.testing.assert_array_equal(dr, sr)
        np.testing.assert_array_equal(dc, sc)
        assert not mask.any(), "dense dedup must leave the mask cleared"

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        ur, uc = dedup_pairs(empty, empty, 10)
        assert ur.size == 0 and uc.size == 0


class TestPropagateMass:
    def test_matches_naive(self, skewed_graph):
        rng = np.random.default_rng(5)
        per_vertex = rng.random(skewed_graph.num_vertices)
        got = propagate_mass(skewed_graph, per_vertex)
        expected = np.zeros(skewed_graph.num_vertices)
        for v in range(skewed_graph.num_vertices):
            for pos in range(
                skewed_graph.indptr[v], skewed_graph.indptr[v + 1]
            ):
                expected[skewed_graph.indices[pos]] += per_vertex[v]
        np.testing.assert_allclose(got, expected)
