"""Tests for partitioning and mirroring plans."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.generators import star
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import (
    edge_partition,
    hash_partition,
    partition_graph,
    range_partition,
)


class TestHashPartition:
    def test_covers_all_vertices(self, social_graph):
        part = hash_partition(social_graph, 8)
        part.validate(social_graph)
        assert part.vertices_per_machine.sum() == social_graph.num_vertices

    def test_roughly_balanced(self, social_graph):
        part = hash_partition(social_graph, 8)
        expected = social_graph.num_vertices / 8
        assert part.vertices_per_machine.min() > 0.5 * expected
        assert part.vertices_per_machine.max() < 1.5 * expected

    def test_cut_fraction_approaches_1_minus_1_over_m(self, social_graph):
        part = hash_partition(social_graph, 8)
        assert abs(part.cut_fraction - 7 / 8) < 0.06

    def test_single_machine_no_cut(self, social_graph):
        part = hash_partition(social_graph, 1)
        assert part.cut_arcs == 0
        assert part.cut_fraction == 0.0

    def test_deterministic(self, social_graph):
        a = hash_partition(social_graph, 4)
        b = hash_partition(social_graph, 4)
        np.testing.assert_array_equal(a.owner, b.owner)

    def test_zero_machines_rejected(self, tiny_graph):
        with pytest.raises(PartitionError):
            hash_partition(tiny_graph, 0)


class TestRangePartition:
    def test_contiguous_ranges(self, random_graph):
        part = range_partition(random_graph, 4)
        owners = part.owner
        assert all(owners[i] <= owners[i + 1] for i in range(len(owners) - 1))

    def test_covers_graph(self, random_graph):
        part = range_partition(random_graph, 4)
        part.validate(random_graph)


class TestEdgePartition:
    def test_replication_factor_at_least_one(self, social_graph):
        part = edge_partition(social_graph, 8)
        assert part.replication_factor >= 1.0
        part.validate(social_graph)

    def test_replication_grows_with_machines(self, social_graph):
        small = edge_partition(social_graph, 2)
        large = edge_partition(social_graph, 16)
        assert large.replication_factor > small.replication_factor

    def test_single_machine_replication_one(self, social_graph):
        part = edge_partition(social_graph, 1)
        assert part.replication_factor == pytest.approx(1.0)

    def test_empty_graph(self):
        from repro.graph.build import from_edge_list

        g = from_edge_list([], num_vertices=5)
        part = edge_partition(g, 3)
        assert part.replication_factor == 1.0


class TestRegistry:
    def test_lookup_by_name(self, random_graph):
        for name in ("hash", "range", "edge-cut"):
            part = partition_graph(random_graph, 3, name)
            assert part.strategy in (name, "edge-cut")

    def test_unknown_strategy(self, random_graph):
        with pytest.raises(PartitionError):
            partition_graph(random_graph, 3, "magic")


class TestMirrorPlan:
    def test_star_centre_mirrored(self):
        g = star(300, directed=False)
        part = hash_partition(g, 8)
        plan = build_mirror_plan(g, part, degree_threshold=100)
        assert plan.mirrored[0]
        assert not plan.mirrored[1:].any()

    def test_remote_machines_bounded(self, social_graph):
        part = hash_partition(social_graph, 8)
        plan = build_mirror_plan(social_graph, part)
        assert plan.remote_machines.max() <= 7

    def test_remote_plus_local_equals_degree(self, social_graph):
        part = hash_partition(social_graph, 8)
        plan = build_mirror_plan(social_graph, part)
        degrees = np.diff(social_graph.indptr)
        np.testing.assert_array_equal(
            plan.remote_neighbors + plan.local_neighbors, degrees
        )

    def test_mirroring_reduces_broadcast_traffic(self):
        g = star(500, directed=False)
        part = hash_partition(g, 8)
        plan = build_mirror_plan(g, part, degree_threshold=50)
        # Centre broadcast: ~7 machine messages instead of ~437 remote
        # neighbour messages (the leaves' own traffic is unchanged, so
        # the overall reduction is just under one half).
        assert plan.skew_reduction() > 0.4

    def test_threshold_infinite_means_no_mirrors(self, social_graph):
        part = hash_partition(social_graph, 8)
        plan = build_mirror_plan(
            social_graph, part, degree_threshold=10**9
        )
        assert plan.num_mirrored_vertices == 0
        assert plan.skew_reduction() == 0.0

    def test_broadcast_cost_for_unmirrored_is_remote_neighbors(
        self, social_graph
    ):
        part = hash_partition(social_graph, 8)
        plan = build_mirror_plan(social_graph, part, degree_threshold=10**9)
        np.testing.assert_array_equal(
            plan.broadcast_network_messages(), plan.remote_neighbors
        )
