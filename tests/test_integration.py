"""Cross-layer integration tests.

These tie the layers together: kernels vs the honest reference engine,
end-to-end jobs vs calibration anchors, and the tuner closing the loop
on the simulator it trained on.
"""

import numpy as np
import pytest

from repro import (
    MultiProcessingJob,
    bppr_task,
    galaxy8,
    load_dataset,
    mssp_task,
)
from repro.engines.reference import LocalPregelEngine
from repro.graph.generators import chung_lu
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import hash_partition
from repro.messages.routing import PointToPointRouter
from repro.rng import make_rng
from repro.tasks.bppr import BPPRKernel
from repro.tasks.vc_programs import RandomWalkPPRProgram


class TestKernelVsReferenceEngine:
    """The vectorised kernels and the honest engine must agree on the
    *expected* message counts — they implement the same algorithm."""

    def test_bppr_round1_message_count(self):
        graph = chung_lu(40, 4.0, seed=51)
        walks = 50

        # Reference engine: count actual messages in superstep 0.
        program = RandomWalkPPRProgram(walks_per_node=walks, seed=1)
        run = LocalPregelEngine(graph).run(program)
        mc_round1 = run.stats[0].messages_sent

        # Kernel (expected mode): round-1 moving mass.
        partition = hash_partition(graph, 2)
        plan = build_mirror_plan(graph, partition)
        router = PointToPointRouter(graph, plan)
        kernel = BPPRKernel(graph, router, make_rng(1))
        kernel.start_batch(float(walks))
        expected_round1 = kernel.step().wire_messages

        # Monte-Carlo round 1 is Binomial(n*W, ~(1-alpha)); the expected
        # kernel gives its mean. 5 sigma tolerance.
        n_walks = walks * graph.num_vertices
        sigma = np.sqrt(n_walks * 0.15 * 0.85)
        assert abs(mc_round1 - expected_round1) < 5 * sigma

    def test_bppr_total_messages_agree(self):
        graph = chung_lu(40, 4.0, seed=51)
        walks = 80
        program = RandomWalkPPRProgram(walks_per_node=walks, seed=2)
        run = LocalPregelEngine(graph).run(program)

        partition = hash_partition(graph, 2)
        plan = build_mirror_plan(graph, partition)
        router = PointToPointRouter(graph, plan)
        kernel = BPPRKernel(graph, router, make_rng(2))
        kernel.start_batch(float(walks))
        total = 0.0
        while True:
            summary = kernel.step()
            total += summary.wire_messages
            if summary.done:
                break
        # Expected total moves per walk: (1-a)/a-ish, truncated by
        # danglings; require agreement within 10 %.
        assert total == pytest.approx(run.total_messages, rel=0.10)


class TestCalibrationAnchors:
    """The headline numbers this reproduction is calibrated on. If one
    of these fails, EXPERIMENTS.md's comparisons are stale."""

    @pytest.fixture(scope="class")
    def sweep(self):
        graph = load_dataset("dblp")
        job = MultiProcessingJob("pregel+", galaxy8())
        results = {}
        for workload in (1024, 10240, 12288):
            for batches in (1, 2, 4):
                results[(workload, batches)] = job.run(
                    bppr_task(graph, workload), num_batches=batches
                )
        return results

    def test_light_workload_full_parallelism_wins(self, sweep):
        assert (
            sweep[(1024, 1)].seconds
            < sweep[(1024, 2)].seconds
            < sweep[(1024, 4)].seconds
        )

    def test_light_workload_time_near_paper(self, sweep):
        # Paper: 173.3 s. Accept a factor-of-2 corridor.
        assert 90 < sweep[(1024, 1)].seconds < 350

    def test_heavy_workload_one_batch_fails(self, sweep):
        assert sweep[(10240, 1)].overloaded
        assert not sweep[(10240, 2)].overloaded

    def test_heavy_workload_two_batches_near_paper(self, sweep):
        # Paper: 1819.4 s.
        assert 900 < sweep[(10240, 2)].seconds < 3600

    def test_heaviest_workload_prefers_four_batches(self, sweep):
        assert (
            sweep[(12288, 4)].seconds < sweep[(12288, 2)].seconds
        )

    def test_peak_memory_matches_paper_scale(self, sweep):
        # Paper: 15.1 GB for (12288, 1 batch, 8 machines) -> scaled /400.
        measured = sweep[(12288, 1)].peak_memory_bytes * 400
        assert 10e9 < measured < 25e9


class TestEndToEndTuning:
    def test_tuner_fixes_an_overloading_workload(self):
        from repro.tuning.autotuner import AutoTuner

        graph = load_dataset("dblp")
        cluster = galaxy8().with_machines(4)
        tuner = AutoTuner.for_engine(
            "pregel+", cluster, lambda w: bppr_task(graph, w), seed=11
        )
        report = tuner.run(6656)
        assert report.full_parallelism.overloaded
        assert not report.optimized.overloaded
        assert len(report.schedule) >= 2

    def test_mssp_jobs_work_end_to_end(self):
        graph = load_dataset("dblp")
        job = MultiProcessingJob("pregel+", galaxy8())
        metrics = job.run(
            mssp_task(graph, 512, sample_limit=16), num_batches=4
        )
        assert metrics.num_batches == 4
        assert not metrics.overloaded
