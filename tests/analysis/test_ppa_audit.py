"""Tests for the BPPA/PPA auditor (Section 2.4).

The paper's argument, measured: PageRank is a practical Pregel
algorithm; Full-Parallelism BPPR with log(n) walks per vertex is not —
its per-vertex communication blows past O(d(v)).
"""

import math

import pytest

from repro.analysis.ppa import audit_bppa
from repro.graph.generators import chung_lu
from repro.tasks.bkhs import bkhs_task
from repro.tasks.bppr import bppr_task
from repro.tasks.pagerank import pagerank_task


@pytest.fixture(scope="module")
def graph():
    return chung_lu(512, avg_degree=6.0, seed=101)


class TestAuditMechanics:
    def test_rounds_counted(self, graph):
        audit = audit_bppa(bkhs_task(graph, 4, k=2, sample_limit=None))
        assert audit.rounds == 3  # k + 1

    def test_summary_format(self, graph):
        audit = audit_bppa(pagerank_task(graph))
        assert "rounds=" in audit.summary()

    def test_worst_vertex_in_range(self, graph):
        audit = audit_bppa(bppr_task(graph, 8), seed=1)
        assert 0 <= audit.worst_vertex < graph.num_vertices


class TestPaperClaims:
    def test_pagerank_is_a_bppa(self, graph):
        """PageRank sends exactly d(v) messages per vertex per round and
        converges in O(log n)-ish rounds — the canonical (B)PPA."""
        audit = audit_bppa(pagerank_task(graph, max_iterations=30))
        assert audit.communication_constant <= 1.0 + 1e-9
        assert audit.is_bppa(allowed_constant=4.0)

    def test_concurrent_bppr_violates_linear_communication(self, graph):
        """Section 2.4: running log(n) walks per vertex concurrently
        makes every vertex send ~log(n) x its per-walk traffic — the
        per-vertex O(d(v)) bound breaks by about the log(n) factor."""
        walks = max(2, int(math.log2(graph.num_vertices)))
        audit = audit_bppa(bppr_task(graph, walks), seed=1)
        # A degree-d vertex emits ~walks * 0.85 messages in round 1;
        # low-degree vertices exceed c * d(v) for any reasonable c.
        assert audit.communication_constant > 4.0
        assert not audit.is_bppa(allowed_constant=4.0)

    def test_sequential_bppr_violates_logarithmic_rounds(self, graph):
        """The other horn of the dilemma: one walk at a time keeps the
        per-round traffic linear but needs ~walks x walk-length rounds,
        breaking the O(log n) round bound."""
        walks = max(2, int(math.log2(graph.num_vertices)))
        total_rounds = 0
        worst_comm = 0.0
        for _ in range(walks):  # one walk per vertex at a time
            audit = audit_bppa(bppr_task(graph, 1), seed=1)
            total_rounds += audit.rounds
            worst_comm = max(worst_comm, audit.communication_constant)
        log_n = math.log2(graph.num_vertices)
        assert total_rounds / log_n > 4.0  # rounds condition broken
        assert worst_comm <= 2.0  # ... while communication stays linear

    def test_bkhs_is_round_friendly(self, graph):
        """BKHS finishes in k + 1 rounds — comfortably logarithmic —
        but its frontier fan-out is also per-vertex linear."""
        audit = audit_bppa(bkhs_task(graph, 4, k=2, sample_limit=None))
        assert audit.rounds_constant <= 1.0
