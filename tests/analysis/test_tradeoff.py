"""Tests for the tradeoff/regime classifier."""

import pytest

from repro.analysis.tradeoff import TradeoffCurve, classify_regime
from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8, galaxy27
from repro.graph.datasets import load_dataset
from repro.tasks.bppr import bppr_task


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp", scale=400)


def curve_for(engine, cluster, workload, graph, counts=(1, 2, 4, 8, 16)):
    job = MultiProcessingJob(engine, cluster)
    runs = job.sweep_batches(
        bppr_task(graph, workload), batch_counts=counts, seed=1
    )
    return TradeoffCurve.from_runs(runs, cluster.scaled_machine), runs


class TestRegimeClassification:
    def test_heavy_full_parallelism_is_memory_bound(self, graph):
        cluster = galaxy8(scale=400)
        curve, _ = curve_for("pregel+", cluster, 10240, graph)
        assert curve.points[0].regime == "memory-bound"

    def test_light_workload_balanced(self, graph):
        cluster = galaxy8(scale=400)
        curve, _ = curve_for("pregel+", cluster, 256, graph, counts=(1, 2))
        assert curve.points[0].regime == "balanced"

    def test_graphd_small_batches_disk_bound(self, graph):
        cluster = galaxy27(scale=400)
        curve, _ = curve_for("graphd", cluster, 2048, graph, counts=(1, 2, 8))
        assert curve.points[0].regime == "disk-bound"
        assert curve.points[-1].regime != "disk-bound"

    def test_many_tiny_batches_sync_bound(self, graph):
        cluster = galaxy8(scale=400)
        job = MultiProcessingJob("pregel+", cluster)
        runs = job.sweep_batches(
            bppr_task(graph, 256), batch_counts=(64,), seed=1
        )
        assert (
            classify_regime(runs[0], cluster.scaled_machine) == "sync-bound"
        )


class TestCurve:
    def test_optimum_matches_min_time(self, graph):
        cluster = galaxy8(scale=400)
        curve, runs = curve_for("pregel+", cluster, 10240, graph)
        finite = [m for m in runs if not m.overloaded]
        assert curve.optimum.batches == min(
            finite, key=lambda m: m.seconds
        ).num_batches

    def test_all_overloaded_advice(self, graph):
        cluster = galaxy8(scale=400).with_machines(2)
        curve, _ = curve_for(
            "pregel+", cluster, 65536, graph, counts=(1, 2)
        )
        assert curve.optimum is None
        assert "reduce the workload" in curve.advice()

    def test_advice_names_the_pressure(self, graph):
        cluster = galaxy8(scale=400)
        curve, _ = curve_for("pregel+", cluster, 10240, graph)
        assert "memory-bound" in curve.advice()

    def test_rows_render(self, graph):
        cluster = galaxy8(scale=400)
        curve, _ = curve_for("pregel+", cluster, 1024, graph, counts=(1, 2))
        rows = curve.to_rows()
        assert rows[0]["batches"] == 1
        assert "regime" in rows[0]
