"""Property tests for the online ask-tell calibration loop.

The calibrator's contract has three load-bearing guarantees the
scheduler relies on (DESIGN.md §15): tells are order-insensitive within
a refit window (the service's scheduling digest must not depend on
which engine session told first), the overload-safe envelope invariant
``predict(w) >= max observed peak at w`` survives every tell and refit
(admission control would under-budget otherwise), and the drift
detector separates regime shifts from measurement noise (refitting on
jitter would churn the planner for nothing; missing a shift would keep
admission pricing against a stale model).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuning.calibrate import (
    DRIFT_WINDOW,
    Calibrator,
    calibration_cache_key,
)
from repro.tuning.trainer import TrainingSample

#: Ground-truth generator the synthetic probes and tells share.
TRUE_A, TRUE_B, TRUE_C = 3.0, 1.1, 50.0
PROBE_LADDER = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def true_peak(w: float) -> float:
    return TRUE_A * w**TRUE_B + TRUE_C


def make_sample(w: float, factor: float = 1.0) -> TrainingSample:
    return TrainingSample(
        workload=w,
        peak_memory_bytes=true_peak(w) * factor,
        residual_memory_bytes=0.4 * true_peak(w),
        seconds=0.05 * w**1.05 + 0.2,
        overloaded=False,
    )


def probe_calibrator(seed: int = 5) -> Calibrator:
    return Calibrator.from_samples(
        [make_sample(w) for w in PROBE_LADDER], seed=seed
    )


#: One told observation: (workload, peak, residual, seconds).
tell_strategy = st.tuples(
    st.floats(min_value=2.0, max_value=256.0),
    st.floats(min_value=1.0, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e5),
    st.floats(min_value=0.01, max_value=10.0),
)


class TestOrderInsensitivity:
    def test_tell_order_does_not_change_the_refit(self):
        @settings(max_examples=40, deadline=None)
        @given(data=st.data())
        def check(data):
            tells = data.draw(
                st.lists(tell_strategy, min_size=1, max_size=10)
            )
            order = data.draw(st.permutations(range(len(tells))))

            def run(indices):
                cal = probe_calibrator()
                for i in indices:
                    w, peak, residual, seconds = tells[i]
                    cal.tell(w, peak, residual, seconds)
                cal.refit()
                return cal

            forward = run(range(len(tells)))
            shuffled = run(order)
            # Same multiset of observations -> identical refitted
            # coefficients, regardless of drift refits that may have
            # fired at different points mid-stream.
            assert forward.model.peak == shuffled.model.peak
            assert forward.model.residual == shuffled.model.residual
            assert forward.seconds_model == shuffled.seconds_model

        check()


class TestEnvelopeInvariant:
    def test_predictions_cover_every_told_peak(self):
        @settings(max_examples=40, deadline=None)
        @given(tells=st.lists(tell_strategy, min_size=1, max_size=12))
        def check(tells):
            cal = probe_calibrator()
            told = []
            for w, peak, residual, seconds in tells:
                cal.tell(w, peak, residual, seconds)
                told.append((w, peak))
                for tw, tp in told:
                    predicted = float(cal.model.peak(tw))
                    assert predicted >= tp - max(1e-6 * tp, 1e-6)
            # The invariant also survives an explicit full refit.
            cal.refit()
            for tw, tp in told:
                predicted = float(cal.model.peak(tw))
                assert predicted >= tp - max(1e-6 * tp, 1e-6)

        check()


class TestDriftDetector:
    def test_noise_never_fires(self):
        @settings(max_examples=30, deadline=None)
        @given(
            factors=st.lists(
                st.floats(min_value=0.98, max_value=1.02),
                min_size=2 * DRIFT_WINDOW,
                max_size=3 * DRIFT_WINDOW,
            )
        )
        def check(factors):
            cal = probe_calibrator()
            for i, factor in enumerate(factors):
                w = PROBE_LADDER[2 + i % 4]
                sample = make_sample(w, factor)
                cal.tell(
                    sample.workload,
                    sample.peak_memory_bytes,
                    sample.residual_memory_bytes,
                    sample.seconds,
                )
            # +-2% jitter sits far inside the z threshold: the relative
            # scale floor alone caps |z| near 0.4 against the 1.5 gate.
            assert cal.stats.drift_events == 0

        check()

    def test_regime_shift_fires_within_one_window(self):
        cal = probe_calibrator()
        shifted = []
        for i in range(DRIFT_WINDOW):
            w = PROBE_LADDER[2 + i % 4]
            sample = make_sample(w, 1.5)
            shifted.append((w, sample.peak_memory_bytes))
            cal.tell(
                sample.workload,
                sample.peak_memory_bytes,
                sample.residual_memory_bytes,
                sample.seconds,
            )
        assert cal.stats.drift_events == 1
        assert cal.stats.refits == 1
        # The refit absorbed the new regime: the envelope now covers the
        # shifted peaks exactly where they were observed.
        for w, peak in shifted:
            assert float(cal.model.peak(w)) >= peak - 1e-6 * peak

    def test_refit_resets_the_reference(self):
        cal = probe_calibrator()
        for i in range(DRIFT_WINDOW):
            sample = make_sample(PROBE_LADDER[2 + i % 4], 1.5)
            cal.tell(
                sample.workload,
                sample.peak_memory_bytes,
                sample.residual_memory_bytes,
                sample.seconds,
            )
        events = cal.stats.drift_events
        # Post-refit tells from the *new* regime look nominal again.
        for i in range(DRIFT_WINDOW):
            sample = make_sample(PROBE_LADDER[2 + i % 4], 1.5)
            cal.tell(
                sample.workload,
                sample.peak_memory_bytes,
                sample.residual_memory_bytes,
                sample.seconds,
            )
        assert cal.stats.drift_events == events


class TestPersistence:
    def test_pack_unpack_round_trip(self):
        cal = probe_calibrator()
        cal.tell(48.0, true_peak(48.0) * 1.2, 900.0, 2.5)
        warm = Calibrator.unpack(cal.pack(), seed=5)
        assert warm.model.peak == cal.model.peak
        assert warm.model.residual == cal.model.residual
        assert warm.seconds_model == cal.seconds_model
        assert warm.stats.warm_start
        assert warm.stats.training_runs == 0
        assert warm.stats.probe_seconds_saved == pytest.approx(
            sum(0.05 * w**1.05 + 0.2 for w in PROBE_LADDER) + 2.5
        )
        # Refits replay on the identical persisted sample multiset.
        assert warm.refit().peak == cal.refit().peak

    def test_unpack_preserves_none_seconds_model(self):
        cal = probe_calibrator()
        cal._seconds = None
        warm = Calibrator.unpack(cal.pack(), seed=5)
        assert warm.seconds_model is None
        assert warm.predict_seconds(32.0) is None

    def test_cache_key_separates_settings(self):
        base = calibration_cache_key("pregel+", "bppr", "fp", 512.0, 3)
        assert base != calibration_cache_key(
            "graphlab", "bppr", "fp", 512.0, 3
        )
        assert base != calibration_cache_key(
            "pregel+", "mssp", "fp", 512.0, 3
        )
        assert base != calibration_cache_key(
            "pregel+", "bppr", "fp2", 512.0, 3
        )
        assert base != calibration_cache_key(
            "pregel+", "bppr", "fp", 1024.0, 3
        )
        assert base != calibration_cache_key(
            "pregel+", "bppr", "fp", 512.0, 4
        )


class TestColdFitIdentity:
    def test_cold_fit_matches_train_memory_models(self):
        from repro.cluster.cluster import galaxy8
        from repro.engines.registry import create_engine
        from repro.graph.datasets import load_dataset
        from repro.tasks.bppr import bppr_task
        from repro.tuning.trainer import train_memory_models

        graph = load_dataset("dblp", scale=400)
        cluster = galaxy8(scale=400).with_machines(4)
        factory = lambda w: bppr_task(graph, w)  # noqa: E731
        reference = train_memory_models(
            create_engine("pregel+", cluster), factory, 5120, seed=3
        )
        cal = Calibrator.train(
            create_engine("pregel+", cluster), factory, 5120, seed=3
        )
        assert cal.model.peak == reference.peak
        assert cal.model.residual == reference.residual
        assert cal.stats.training_runs == len(cal.pack()["samples"])

    def test_warm_restart_skips_probes(self, tmp_path):
        from repro.cluster.cluster import galaxy8
        from repro.engines.registry import create_engine
        from repro.graph.datasets import load_dataset
        from repro.perf.cache import ArtifactCache
        from repro.tasks.bppr import bppr_task

        graph = load_dataset("dblp", scale=400)
        cluster = galaxy8(scale=400).with_machines(4)
        factory = lambda w: bppr_task(graph, w)  # noqa: E731
        cache = ArtifactCache(directory=str(tmp_path))
        cold = Calibrator.load_or_train(
            create_engine("pregel+", cluster),
            factory,
            5120,
            kind="bppr",
            graph_fingerprint=graph.fingerprint,
            seed=3,
            cache=cache,
        )
        assert not cold.stats.warm_start
        assert cold.stats.training_runs > 0

        def exploding_factory(w):
            raise AssertionError("warm restart must not run probes")

        warm = Calibrator.load_or_train(
            create_engine("pregel+", cluster),
            exploding_factory,
            5120,
            kind="bppr",
            graph_fingerprint=graph.fingerprint,
            seed=3,
            cache=cache,
        )
        assert warm.stats.warm_start
        assert warm.stats.training_runs == 0
        assert warm.stats.probe_seconds_saved > 0
        assert warm.model.peak == cold.model.peak
        assert warm.model.residual == cold.model.residual
