"""Tests for the from-scratch Levenberg-Marquardt implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FitError
from repro.tuning.lma import fit_power_law, levenberg_marquardt


class TestGenericLMA:
    def test_fits_a_line(self):
        x = np.linspace(1, 10, 20)
        y = 3.0 * x + 2.0

        def residual(p):
            return p[0] * x + p[1] - y

        def jacobian(p):
            return np.stack([x, np.ones_like(x)], axis=1)

        result = levenberg_marquardt(
            residual, jacobian, np.array([1.0, 0.0])
        )
        np.testing.assert_allclose(result.params, [3.0, 2.0], atol=1e-6)
        assert result.converged

    def test_respects_bounds(self):
        x = np.linspace(1, 10, 20)
        y = -5.0 * x

        def residual(p):
            return p[0] * x - y

        def jacobian(p):
            return x[:, None]

        result = levenberg_marquardt(
            residual,
            jacobian,
            np.array([1.0]),
            lower_bounds=np.array([0.0]),
        )
        assert result.params[0] >= 0.0


class TestPowerLawFit:
    @pytest.mark.parametrize(
        "a,b,c",
        [
            (2.0, 1.0, 5.0),
            (0.5, 1.5, 100.0),
            (3.0, 0.7, 0.0),
            (1e3, 1.2, 1e4),
        ],
    )
    def test_recovers_exact_parameters(self, a, b, c):
        x = np.array([2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0])
        y = a * x**b + c
        result = fit_power_law(x, y, seed=1)
        fitted = result.params
        np.testing.assert_allclose(
            fitted[0] * x ** fitted[1] + fitted[2], y, rtol=1e-4
        )

    def test_robust_to_noise(self):
        rng = np.random.default_rng(5)
        x = np.array([2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
        clean = 4.0 * x**1.1 + 50.0
        noisy = clean * (1.0 + 0.02 * rng.standard_normal(x.size))
        result = fit_power_law(x, noisy, seed=2)
        predictions = (
            result.params[0] * x ** result.params[1] + result.params[2]
        )
        assert np.abs(predictions / clean - 1.0).max() < 0.1

    def test_exponent_bounded(self):
        x = np.array([2.0, 4.0, 8.0, 16.0])
        y = np.array([1.0, 1.0, 1.0, 1.0])
        result = fit_power_law(x, y, seed=3)
        assert 0.0 <= result.params[1] <= 4.0

    def test_too_few_points_rejected(self):
        with pytest.raises(FitError):
            fit_power_law(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_nonpositive_x_rejected(self):
        with pytest.raises(FitError):
            fit_power_law(
                np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0])
            )

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(FitError):
            fit_power_law(np.array([1.0, 2.0, 3.0]), np.array([1.0, 2.0]))


@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=0.3, max_value=2.0),
    st.floats(min_value=0.0, max_value=1000.0),
)
@settings(max_examples=25, deadline=None)
def test_power_law_property_fit_quality(a, b, c):
    """For clean data the fit reproduces the curve to within 1%."""
    x = np.array([2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
    y = a * x**b + c
    result = fit_power_law(x, y, seed=7)
    predicted = result.params[0] * x ** result.params[1] + result.params[2]
    scale = np.maximum(np.abs(y), 1e-9)
    assert (np.abs(predicted - y) / scale).max() < 0.01
