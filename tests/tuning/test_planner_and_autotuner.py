"""Tests for memory models, the batch planner and the auto-tuner."""

import pytest

from repro.cluster.cluster import galaxy8
from repro.cluster.machine import MachineSpec
from repro.errors import TuningError
from repro.graph.datasets import load_dataset
from repro.tasks.bppr import bppr_task
from repro.tuning.autotuner import AutoTuner
from repro.tuning.memory_model import MemoryCostModel, PowerLawModel
from repro.tuning.planner import plan_batches, validate_schedule
from repro.tuning.trainer import probe_workloads, train_memory_models
from repro.units import MB


@pytest.fixture
def machine():
    return MachineSpec(
        memory_bytes=100 * MB,
        os_reserve_bytes=10 * MB,
        cores=4,
        compute_ops_per_second=1e6,
    )


@pytest.fixture
def linear_model():
    # peak = 10 KB per workload unit + 1 MB; residual = 4 KB per unit.
    return MemoryCostModel(
        peak=PowerLawModel(a=10e3, b=1.0, c=1e6),
        residual=PowerLawModel(a=4e3, b=1.0, c=0.0),
    )


class TestPowerLawModel:
    def test_evaluation(self):
        model = PowerLawModel(a=2.0, b=1.5, c=10.0)
        assert model(4.0) == pytest.approx(2.0 * 8.0 + 10.0)

    def test_invert_round_trip(self):
        model = PowerLawModel(a=2.0, b=1.5, c=10.0)
        for w in (1.0, 5.0, 100.0):
            assert model.invert(model(w)) == pytest.approx(w)

    def test_invert_below_constant_is_zero(self):
        model = PowerLawModel(a=2.0, b=1.0, c=10.0)
        assert model.invert(5.0) == 0.0

    def test_invert_requires_positive_a_b(self):
        with pytest.raises(TuningError):
            PowerLawModel(a=0.0, b=1.0, c=0.0).invert(5.0)


class TestPlanner:
    def test_schedule_sums_to_workload(self, linear_model, machine):
        schedule = plan_batches(linear_model, 20000, machine)
        assert sum(schedule) == pytest.approx(20000)

    def test_schedule_decreasing(self, linear_model, machine):
        schedule = plan_batches(linear_model, 20000, machine)
        assert all(a >= b for a, b in zip(schedule, schedule[1:]))
        assert len(schedule) > 1

    def test_light_workload_single_batch(self, linear_model, machine):
        schedule = plan_batches(linear_model, 100, machine)
        assert schedule == [100.0]

    def test_schedule_satisfies_equation_1(self, linear_model, machine):
        schedule = plan_batches(linear_model, 20000, machine)
        assert validate_schedule(schedule, linear_model, machine) is None

    def test_infeasible_budget_raises(self, machine):
        fat_model = MemoryCostModel(
            peak=PowerLawModel(a=1.0, b=1.0, c=1e12),  # constant > memory
            residual=PowerLawModel(a=1.0, b=1.0, c=0.0),
        )
        with pytest.raises(TuningError):
            plan_batches(fat_model, 100, machine)

    def test_invalid_inputs(self, linear_model, machine):
        with pytest.raises(TuningError):
            plan_batches(linear_model, 0, machine)
        with pytest.raises(TuningError):
            plan_batches(linear_model, 10, machine, overload_fraction=0.0)

    def test_validate_flags_violations(self, machine):
        model = MemoryCostModel(
            peak=PowerLawModel(a=1e6, b=1.0, c=0.0),
            residual=PowerLawModel(a=0.0, b=1.0, c=0.0),
        )
        # One batch of 200 units needs 200 MB > 87.5 MB budget.
        assert validate_schedule([200.0], model, machine) == 0


class TestTrainer:
    def test_probe_ladder_below_workload(self):
        ladder = probe_workloads(10240)
        assert ladder == [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
        assert max(ladder) <= 10240 / 4

    def test_probe_ladder_minimum_points(self):
        assert len(probe_workloads(20)) >= 3

    def test_tiny_workload_rejected(self):
        with pytest.raises(TuningError):
            probe_workloads(4)

    def test_training_fits_positive_models(self):
        graph = load_dataset("dblp", scale=400)
        cluster = galaxy8(scale=400).with_machines(4)
        from repro.engines.registry import create_engine

        engine = create_engine("pregel+", cluster)
        model = train_memory_models(
            engine, lambda w: bppr_task(graph, w), 5120, seed=3
        )
        assert model.peak.a > 0
        assert model.residual.a > 0
        # Peak memory grows ~linearly with BPPR workload.
        assert 0.8 <= model.peak.b <= 1.3


class TestAutoTuner:
    @pytest.fixture(scope="class")
    def tuner(self):
        graph = load_dataset("dblp", scale=400)
        cluster = galaxy8(scale=400).with_machines(4)
        return AutoTuner.for_engine(
            "pregel+", cluster, lambda w: bppr_task(graph, w), seed=3
        )

    def test_training_is_idempotent(self, tuner):
        first = tuner.train(5120)
        second = tuner.train(5120)
        assert first is second

    def test_plan_sums_and_decreases(self, tuner):
        schedule = tuner.plan(6656)
        assert sum(schedule) == pytest.approx(6656)
        assert all(a >= b for a, b in zip(schedule, schedule[1:]))

    def test_heavy_workload_multi_batch(self, tuner):
        assert len(tuner.plan(6656)) >= 2

    def test_infeasible_total_workload_raises(self, tuner):
        # BPPR keeps every walk's endpoint resident, so on 4 machines a
        # big enough *total* workload violates Equation 1 no matter how
        # it is batched — the planner must say so rather than emit a
        # schedule that will overload.
        with pytest.raises(TuningError, match="infeasible"):
            tuner.plan(16384)

    def test_optimized_not_worse_than_full_parallelism(self, tuner):
        report = tuner.run(6656)
        if report.full_parallelism.overloaded:
            assert not report.optimized.overloaded
        else:
            assert (
                report.optimized.seconds
                <= report.full_parallelism.seconds * 1.05
            )

    def test_report_summary_format(self, tuner):
        report = tuner.run(5120)
        text = report.summary()
        assert "Optimized" in text and "Full-Parallelism" in text
