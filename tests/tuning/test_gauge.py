"""Tests for the binary-search workload gauge (Section 4.10)."""

import pytest

from repro.cluster.cluster import galaxy8
from repro.engines.registry import create_engine
from repro.errors import TuningError
from repro.graph.datasets import load_dataset
from repro.tasks.bppr import bppr_task
from repro.tuning.gauge import gauge_max_workload


@pytest.fixture(scope="module")
def engine():
    return create_engine("pregel+", galaxy8(scale=400).with_machines(4))


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp", scale=400)


class TestGauge:
    def test_finds_the_memory_wall(self, engine, graph):
        result = gauge_max_workload(
            engine,
            lambda w: bppr_task(graph, w),
            upper_bound=16384,
            lower_bound=64,
            seed=5,
        )
        # The 4-machine wall sits in the low thousands at this scale.
        assert 1000 < result.max_safe_workload < 16384
        # The gauged workload is itself safe; the next probe up failed.
        safe = [t for t in result.trials if not t.overloaded]
        assert max(t.workload for t in safe) == result.max_safe_workload

    def test_binary_search_is_logarithmic(self, engine, graph):
        result = gauge_max_workload(
            engine,
            lambda w: bppr_task(graph, w),
            upper_bound=16384,
            lower_bound=64,
            seed=5,
        )
        assert result.num_trials <= 14

    def test_all_safe_returns_upper_bound(self, engine, graph):
        result = gauge_max_workload(
            engine,
            lambda w: bppr_task(graph, w),
            upper_bound=256,
            lower_bound=16,
            seed=5,
        )
        assert result.max_safe_workload == 256
        assert result.num_trials == 2

    def test_hopeless_lower_bound_raises(self, engine, graph):
        with pytest.raises(TuningError):
            gauge_max_workload(
                engine,
                lambda w: bppr_task(graph, w),
                upper_bound=90000,
                lower_bound=60000,
                seed=5,
            )

    def test_invalid_interval(self, engine, graph):
        with pytest.raises(TuningError):
            gauge_max_workload(
                engine, lambda w: bppr_task(graph, w), upper_bound=5,
                lower_bound=10,
            )
