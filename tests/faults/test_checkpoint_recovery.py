"""Checkpoint/recovery accounting in the simulated engine."""

import dataclasses

import pytest

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8
from repro.faults.plan import FaultKind, FaultPlan, mixed_fault_plan
from repro.graph.datasets import load_dataset
from repro.perf.parallel import parallel_map_fork
from repro.tasks.bppr import bppr_task

WORKLOAD = 1024
BATCHES = 2
SEED = 42


def _job():
    return MultiProcessingJob("pregel+", galaxy8())


def _graph():
    return load_dataset("dblp")


def _crashy_plan():
    return FaultPlan.generate(SEED, 8, crash_rate=0.15)


class TestCheckpointing:
    def test_replay_bounded_by_interval(self):
        plan = _crashy_plan()
        metrics = _job().run(
            bppr_task(_graph(), WORKLOAD),
            num_batches=BATCHES,
            seed=SEED,
            fault_plan=plan,
            checkpoint_every=3,
        )
        assert metrics.crashes > 0
        assert metrics.rounds_replayed <= metrics.crashes * 3
        assert metrics.checkpoints_written > 0
        assert metrics.checkpoint_seconds > 0

    def test_checkpoints_strictly_reduce_time_lost(self):
        plan = _crashy_plan()
        graph = _graph()
        without = _job().run(
            bppr_task(graph, WORKLOAD),
            num_batches=BATCHES,
            seed=SEED,
            fault_plan=plan,
        )
        with_ckpt = _job().run(
            bppr_task(graph, WORKLOAD),
            num_batches=BATCHES,
            seed=SEED,
            fault_plan=plan,
            checkpoint_every=3,
        )
        assert without.crashes == with_ckpt.crashes > 0
        assert with_ckpt.replay_seconds < without.replay_seconds
        assert with_ckpt.time_lost_seconds < without.time_lost_seconds

    def test_zero_faults_checkpointing_is_pure_overhead(self):
        graph = _graph()
        baseline = _job().run(
            bppr_task(graph, WORKLOAD), num_batches=BATCHES, seed=SEED
        )
        ckpt = _job().run(
            bppr_task(graph, WORKLOAD),
            num_batches=BATCHES,
            seed=SEED,
            checkpoint_every=4,
        )
        assert ckpt.crashes == 0 and ckpt.replay_seconds == 0.0
        assert ckpt.checkpoint_seconds > 0
        assert ckpt.seconds == pytest.approx(
            baseline.seconds + ckpt.checkpoint_seconds, rel=1e-9
        )

    def test_faults_do_not_change_algorithm_results(self):
        # Faults cost time but never messages: the underlying vertex
        # program run is identical, so message counts must match.
        plan = mixed_fault_plan(SEED, 8, 0.2)
        graph = _graph()
        clean = _job().run(
            bppr_task(graph, WORKLOAD), num_batches=BATCHES, seed=SEED
        )
        faulty = _job().run(
            bppr_task(graph, WORKLOAD),
            num_batches=BATCHES,
            seed=SEED,
            fault_plan=plan,
            checkpoint_every=4,
        )
        assert faulty.total_messages == clean.total_messages
        assert faulty.num_rounds == clean.num_rounds
        in_horizon = [
            e for e in plan.events if e.round_index < clean.num_rounds
        ]
        non_crash = [e for e in in_horizon if e.kind is not FaultKind.CRASH]
        assert faulty.fault_events == len(non_crash)
        assert faulty.crashes == len(in_horizon) - len(non_crash)
        assert faulty.seconds > clean.seconds

    def test_async_profile_checkpoints_cost_more(self):
        # Chandy-Lamport-style snapshots on the async engine pay the
        # 1.5x factor over a comparable sync barrier flush.
        graph = _graph()
        sync = MultiProcessingJob("giraph", galaxy8()).run(
            bppr_task(graph, WORKLOAD),
            num_batches=BATCHES,
            seed=SEED,
            checkpoint_every=4,
        )
        async_ = MultiProcessingJob("giraph(async)", galaxy8()).run(
            bppr_task(graph, WORKLOAD),
            num_batches=BATCHES,
            seed=SEED,
            checkpoint_every=4,
        )
        assert sync.checkpoints_written > 0
        assert async_.checkpoints_written > 0
        sync_each = sync.checkpoint_seconds / sync.checkpoints_written
        async_each = async_.checkpoint_seconds / async_.checkpoints_written
        assert async_each > sync_each

    def test_fault_log_records_events(self):
        plan = _crashy_plan()
        metrics = _job().run(
            bppr_task(_graph(), WORKLOAD),
            num_batches=BATCHES,
            seed=SEED,
            fault_plan=plan,
            checkpoint_every=3,
        )
        logged = [line for b in metrics.batches for line in b.fault_log]
        assert len(logged) == metrics.fault_events + metrics.crashes
        assert metrics.crashes > 0
        assert any("crash" in line for line in logged)


class TestDeterminism:
    def test_same_plan_seed_byte_identical(self):
        graph = _graph()
        runs = [
            _job().run(
                bppr_task(graph, WORKLOAD),
                num_batches=BATCHES,
                seed=SEED,
                fault_plan=FaultPlan.generate(SEED, 8, crash_rate=0.15),
                checkpoint_every=3,
            )
            for _ in range(2)
        ]
        assert dataclasses.asdict(runs[0]) == dataclasses.asdict(runs[1])

    def test_serial_vs_jobs_byte_identical(self):
        graph = _graph()
        job = _job()
        plans = [FaultPlan.generate(s, 8, crash_rate=0.15) for s in (1, 2, 3)]

        def run_one(index):
            return job.run(
                bppr_task(graph, WORKLOAD),
                num_batches=BATCHES,
                seed=SEED,
                fault_plan=plans[index],
                checkpoint_every=3,
            )

        serial = [run_one(i) for i in range(3)]
        fanned = parallel_map_fork(run_one, 3, jobs=2)
        assert [dataclasses.asdict(m) for m in serial] == [
            dataclasses.asdict(m) for m in fanned
        ]
