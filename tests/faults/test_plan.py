"""FaultPlan generation: determinism, validation, round lookup."""

import pytest

from repro.errors import FaultError
from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    STRAGGLER_SLOWDOWN_RANGE,
    mixed_fault_plan,
)

RATES = dict(
    crash_rate=0.1,
    straggler_rate=0.2,
    message_loss_rate=0.1,
    disk_full_rate=0.05,
)


class TestGeneration:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(42, 8, horizon_rounds=256, **RATES)
        b = FaultPlan.generate(42, 8, horizon_rounds=256, **RATES)
        assert a == b
        assert a.fingerprint == b.fingerprint
        assert a.events == b.events

    def test_different_seed_different_plan(self):
        a = FaultPlan.generate(42, 8, horizon_rounds=256, **RATES)
        b = FaultPlan.generate(43, 8, horizon_rounds=256, **RATES)
        assert a != b
        assert a.fingerprint != b.fingerprint

    def test_zero_rates_empty_plan(self):
        plan = FaultPlan.generate(42, 8)
        assert len(plan) == 0
        assert not plan
        assert plan == FaultPlan.none()

    def test_rates_scale_event_counts(self):
        low = FaultPlan.generate(42, 8, crash_rate=0.02)
        high = FaultPlan.generate(42, 8, crash_rate=0.3)
        assert high.count(FaultKind.CRASH) > low.count(FaultKind.CRASH)

    def test_events_within_bounds(self):
        plan = FaultPlan.generate(7, 4, horizon_rounds=128, **RATES)
        assert plan.count() > 0
        for event in plan.events:
            assert 0 <= event.round_index < 128
            assert 0 <= event.machine < 4
        for event in plan.events:
            if event.kind is FaultKind.STRAGGLER:
                low, high = STRAGGLER_SLOWDOWN_RANGE
                assert low <= event.magnitude <= high
            if event.kind is FaultKind.MESSAGE_LOSS:
                assert 0.0 < event.magnitude <= 1.0

    def test_mixed_plan_deterministic(self):
        a = mixed_fault_plan(11, 8, 0.2)
        b = mixed_fault_plan(11, 8, 0.2)
        assert a == b and a.fingerprint == b.fingerprint
        assert a.count(FaultKind.CRASH) > 0

    def test_events_at_round_lookup(self):
        plan = FaultPlan.generate(3, 8, horizon_rounds=64, **RATES)
        seen = 0
        for round_index in range(64):
            events = plan.events_at(round_index)
            seen += len(events)
            for event in events:
                assert event.round_index == round_index
        assert seen == len(plan)
        assert plan.events_at(10_000) == ()


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_bad_rates_rejected(self, rate):
        with pytest.raises(FaultError):
            FaultPlan.generate(1, 8, crash_rate=rate)
        with pytest.raises(FaultError):
            mixed_fault_plan(1, 8, rate)

    def test_bad_machine_count_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.generate(1, 0)

    def test_bad_horizon_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.generate(1, 8, horizon_rounds=0)

    def test_event_validation(self):
        with pytest.raises(FaultError):
            FaultEvent(-1, FaultKind.CRASH)
        with pytest.raises(FaultError):
            FaultEvent(0, FaultKind.CRASH, machine=-1)
        with pytest.raises(FaultError):
            FaultEvent(0, FaultKind.STRAGGLER, magnitude=-2.0)

    def test_describe_mentions_kind_and_round(self):
        event = FaultEvent(5, FaultKind.DISK_FULL, machine=2, magnitude=1.5)
        text = event.describe()
        assert "disk-full" in text and "r5" in text
