"""Graceful overload degradation: abort, re-split, retry history."""

import pytest

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8
from repro.errors import ConfigurationError, RecoveryError
from repro.faults.recovery import (
    MAX_RESPLIT_BATCHES,
    OverloadRecovery,
    front_loaded_split,
)
from repro.graph.datasets import load_dataset
from repro.tasks.bppr import bppr_task
from repro.units import OVERLOAD_CUTOFF_SECONDS

#: A workload whose 1-batch run overloads on memory but completes once
#: split (see the faults experiment / Figure 6's congestion regime).
OVERLOADING_WORKLOAD = 15000


class TestFrontLoadedSplit:
    def test_sums_and_decreases(self):
        sizes = front_loaded_split(1000, 4)
        assert sum(sizes) == 1000
        assert sizes == sorted(sizes, reverse=True)
        assert all(s >= 1 for s in sizes)

    def test_integral_workloads_stay_integral(self):
        sizes = front_loaded_split(97, 5)
        assert all(float(s).is_integer() for s in sizes)
        assert sum(sizes) == 97

    def test_more_batches_than_units_clamped(self):
        sizes = front_loaded_split(3, 10)
        assert sizes == [1.0, 1.0, 1.0]

    def test_decay_one_gives_equal_batches(self):
        sizes = front_loaded_split(100, 4, decay=1.0)
        assert sizes == [25.0, 25.0, 25.0, 25.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            front_loaded_split(0, 2)
        with pytest.raises(ConfigurationError):
            front_loaded_split(10, 0)
        with pytest.raises(ConfigurationError):
            front_loaded_split(10, 2, decay=0.0)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OverloadRecovery(max_retries=-1)
        with pytest.raises(ConfigurationError):
            OverloadRecovery(split_factor=1)
        with pytest.raises(ConfigurationError):
            OverloadRecovery(decay=1.5)
        with pytest.raises(ConfigurationError):
            OverloadRecovery(abort_overhead_seconds=-1.0)

    def test_resplit_shrinks_batches(self):
        policy = OverloadRecovery(split_factor=2)
        sizes = policy.resplit(1000, 1000)
        assert sum(sizes) == 1000
        assert max(sizes) < 1000
        assert len(sizes) >= 2
        assert len(sizes) <= MAX_RESPLIT_BATCHES


class TestRecoveryLoop:
    def test_completes_a_cutoff_workload(self):
        graph = load_dataset("dblp")
        job = MultiProcessingJob("pregel+", galaxy8())
        direct = job.run(
            bppr_task(graph, OVERLOADING_WORKLOAD), num_batches=1, seed=7
        )
        assert direct.overloaded
        assert direct.seconds == OVERLOAD_CUTOFF_SECONDS

        recovered = job.run_with_recovery(
            lambda w: bppr_task(graph, w),
            OVERLOADING_WORKLOAD,
            num_batches=1,
            seed=7,
            recovery=OverloadRecovery(max_retries=6),
        )
        assert not recovered.overloaded
        assert recovered.overload_retries > 0
        assert len(recovered.retry_history) == recovered.overload_retries
        # Every unit is processed exactly once by a non-aborted batch.
        processed = sum(
            b.workload for b in recovered.batches if not b.aborted
        )
        assert processed == OVERLOADING_WORKLOAD
        assert recovered.total_workload == OVERLOADING_WORKLOAD
        # Aborted batches stay in the trace with their (capped) cost.
        assert recovered.aborted_batches == recovered.overload_retries
        for batch in recovered.batches:
            if batch.aborted:
                assert batch.seconds <= OVERLOAD_CUTOFF_SECONDS + 1.0
        # History records what failed and how it was re-split.
        for attempt in recovered.retry_history:
            assert attempt["failed_batch_workload"] > 0
            assert attempt["reason"] in ("memory", "timeout")
            assert sum(attempt["resplit"]) == attempt["remaining_workload"]
        assert recovered.extras["overload_retries"] == float(
            recovered.overload_retries
        )

    def test_exhausted_budget_raises_with_history(self):
        graph = load_dataset("dblp")
        job = MultiProcessingJob("pregel+", galaxy8())
        with pytest.raises(RecoveryError) as excinfo:
            job.run_with_recovery(
                lambda w: bppr_task(graph, w),
                OVERLOADING_WORKLOAD,
                num_batches=1,
                seed=7,
                recovery=OverloadRecovery(max_retries=0),
            )
        assert len(excinfo.value.history) == 1
        assert "retries" in str(excinfo.value)

    def test_healthy_workload_needs_no_retries(self):
        graph = load_dataset("dblp")
        job = MultiProcessingJob("pregel+", galaxy8())
        metrics = job.run_with_recovery(
            lambda w: bppr_task(graph, w), 1024, num_batches=2, seed=7
        )
        assert not metrics.overloaded
        assert metrics.overload_retries == 0
        assert metrics.retry_history == []
        assert metrics.aborted_batches == 0
