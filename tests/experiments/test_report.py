"""Tests for the EXPERIMENTS.md report generator (quick mode)."""

import pytest

from repro.experiments.base import ExperimentConfig
from repro.experiments.report import write_experiments_markdown


class TestReportGeneration:
    @pytest.fixture(scope="class")
    def report_path(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("report") / "EXPERIMENTS.md"
        return write_experiments_markdown(
            str(out), ExperimentConfig(quick=True, scale=2000)
        )

    def test_file_written(self, report_path):
        assert report_path.exists()

    def test_contains_every_experiment(self, report_path):
        content = report_path.read_text()
        for eid in (
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "table2",
            "table3",
            "table4",
            "ablations",
        ):
            assert f"### {eid}:" in content, eid

    def test_summary_counts_claims(self, report_path):
        content = report_path.read_text()
        assert "## Summary" in content
        assert "paper claims reproduced" in content

    def test_markdown_tables_present(self, report_path):
        content = report_path.read_text()
        assert content.count("|---") >= 15

    def test_scale_documented(self, report_path):
        assert "1/2000" in report_path.read_text()
