"""Quick-mode smoke runs for the heavier experiments.

The big-graph experiments (fig5, fig8) are exercised at a coarser scale
so the suite stays fast while still touching every experiment module.
"""

import pytest

from repro.experiments.base import ExperimentConfig
from repro.experiments.runner import run_experiment

#: Coarse scale keeps Twitter/Friendster stand-ins small in tests.
COARSE = ExperimentConfig(scale=4000, quick=True)
QUICK = ExperimentConfig(quick=True)


class TestQuickRuns:
    @pytest.mark.parametrize("eid", ["fig3", "fig10", "fig11"])
    def test_medium_experiments_quick(self, eid):
        result = run_experiment(eid, QUICK)
        assert result.rows

    @pytest.mark.parametrize("eid", ["fig5", "fig7", "fig8"])
    def test_big_graph_experiments_coarse(self, eid):
        result = run_experiment(eid, COARSE)
        assert result.rows

    def test_ablations_quick(self):
        result = run_experiment("ablations", QUICK)
        # The knee and residual mechanisms are robust to quick mode.
        assert result.rows
        assert (
            result.claims[
                "the superlinear Figure-6 jump needs the congestion knee"
            ]
        )

    def test_table3_quick(self):
        result = run_experiment("table3", QUICK)
        assert len(result.rows) == 3  # b = 1, 4, 32


class TestScaleInvariance:
    """The headline crossover survives a different simulation scale —
    the core promise of the scale rule (docs/CALIBRATION.md)."""

    @pytest.mark.parametrize("scale", [200, 800])
    def test_fig4_heavy_workload_crossover(self, scale):
        config = ExperimentConfig(scale=scale)
        result = run_experiment("fig4", config)
        rows = {row["workload"]: row for row in result.rows}
        # Full-Parallelism never wins at the heavy workloads.
        assert rows[10240]["optimum"] != 1
        assert rows[12288]["optimum"] != 1
        # The light workload stays happiest at or near Full-Parallelism.
        assert rows[1024]["optimum"] in (1, 2)
