"""Tests for the experiment harness (quick mode keeps these fast)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    format_table,
)
from repro.experiments.common import (
    full_parallelism_suboptimal,
    non_monotone,
    optimum_batches,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)
from repro.sim.metrics import BatchMetrics, JobMetrics, RoundMetrics


def fake_run(batches, seconds, overloaded=False):
    job = JobMetrics(
        engine="pregel+",
        task="bppr",
        dataset="dblp",
        cluster="galaxy-8",
        num_machines=8,
        total_workload=100,
        batch_sizes=[100.0 / batches] * batches,
    )
    for i in range(batches):
        batch = BatchMetrics(batch_index=i, workload=100.0 / batches)
        batch.rounds.append(
            RoundMetrics(
                round_index=0,
                network_messages=10,
                local_messages=1,
                bottleneck_bytes=80,
                compute_ops=10,
                peak_memory_bytes=1e6,
                seconds=seconds / batches,
            )
        )
        batch.overloaded = overloaded
        job.batches.append(batch)
    return job


class TestHelpers:
    def test_non_monotone_detection(self):
        runs = [fake_run(1, 100), fake_run(2, 50), fake_run(4, 80)]
        assert non_monotone(runs)
        runs = [fake_run(1, 10), fake_run(2, 20), fake_run(4, 30)]
        assert not non_monotone(runs)

    def test_full_parallelism_suboptimal(self):
        runs = [fake_run(1, 100), fake_run(2, 50)]
        assert full_parallelism_suboptimal(runs)
        runs = [fake_run(1, 10), fake_run(2, 50)]
        assert not full_parallelism_suboptimal(runs)
        runs = [fake_run(1, 10, overloaded=True), fake_run(2, 50)]
        assert full_parallelism_suboptimal(runs)

    def test_optimum_batches(self):
        runs = [
            fake_run(1, 100, overloaded=True),
            fake_run(2, 50),
            fake_run(4, 70),
        ]
        assert optimum_batches(runs) == 2
        assert optimum_batches([fake_run(1, 1, overloaded=True)]) is None


class TestResultRendering:
    @pytest.fixture
    def result(self):
        res = ExperimentResult(
            experiment_id="figX",
            title="Test",
            columns=["a", "b"],
            paper_summary="things happen",
        )
        res.add_row(a=1, b="x")
        res.add_row(a=2.5, b="y")
        res.claim("claim one", True)
        res.claim("claim two", False)
        return res

    def test_text_rendering(self, result):
        text = result.to_text()
        assert "figX" in text
        assert "[HOLDS] claim one" in text
        assert "[DIFFERS] claim two" in text

    def test_markdown_rendering(self, result):
        md = result.to_markdown()
        assert "| a | b |" in md
        assert "claim two" in md

    def test_claim_counters(self, result):
        assert result.claims_held == 1
        assert not result.all_claims_hold()

    def test_format_table_alignment(self):
        table = format_table(
            ["col", "value"], [{"col": "x", "value": 1}]
        )
        lines = table.splitlines()
        assert lines[0].startswith("col")
        assert len(lines) == 3


class TestRunner:
    def test_registry_covers_paper(self):
        assert set(list_experiments()) == {
            "fig2",
            "fig3",
            "fig4",
            "fig6",
            "table2",
            "table3",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "table4",
            "fig10",
            "fig11",
            "fig12",
            "faults",
            "ablations",
            "throughput",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    @pytest.mark.parametrize(
        "eid", ["fig2", "fig4", "fig6", "table2", "fig9", "table4"]
    )
    def test_quick_mode_runs(self, eid):
        config = ExperimentConfig(quick=True)
        result = run_experiment(eid, config)
        assert result.experiment_id == eid
        assert result.rows

    def test_quick_fig12(self):
        result = run_experiment("fig12", ExperimentConfig(quick=True))
        assert result.claims[
            "planned schedules decrease monotonically (residual memory)"
        ]


class TestFullExperimentsHoldClaims:
    """The calibration anchors at full fidelity (slower, still < 30 s)."""

    def test_fig4_optima_match_paper(self):
        result = run_experiment("fig4")
        assert result.all_claims_hold(), result.claims
        by_workload = {row["workload"]: row for row in result.rows}
        assert by_workload[1024]["optimum"] == 1
        assert by_workload[10240]["optimum"] == 2
        assert by_workload[12288]["optimum"] == 4

    def test_fig6_congestion_shape(self):
        result = run_experiment("fig6")
        assert result.all_claims_hold(), result.claims

    def test_table2_memory_shape(self):
        result = run_experiment("table2")
        assert result.all_claims_hold(), result.claims

    def test_table3_disk_shape(self):
        result = run_experiment("table3")
        assert result.all_claims_hold(), result.claims
