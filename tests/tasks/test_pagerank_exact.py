"""Tests for the PageRank kernel and the exact reference algorithms."""

import numpy as np
import pytest

from repro.errors import TaskError
from repro.graph.build import from_edge_list
from repro.graph.generators import chain, chung_lu, complete
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import hash_partition
from repro.messages.routing import PointToPointRouter
from repro.rng import make_rng
from repro.tasks.exact import (
    bfs_distances,
    dijkstra_distances,
    exact_pagerank,
    exact_ppr,
    k_hop_set,
    optional_networkx_graph,
)
from repro.tasks.pagerank import PageRankKernel, pagerank_task


def router_for(graph, machines=4):
    partition = hash_partition(graph, machines)
    plan = build_mirror_plan(graph, partition)
    return PointToPointRouter(graph, plan)


def run_kernel(kernel, workload=1.0):
    kernel.start_batch(workload)
    for _ in range(10_000):
        if kernel.step().done:
            break
    return kernel


class TestPageRankKernel:
    def test_matches_exact(self):
        graph = chung_lu(120, 6.0, seed=31)
        kernel = PageRankKernel(
            graph, router_for(graph), make_rng(1), tolerance=1e-12,
            max_iterations=500,
        )
        run_kernel(kernel)
        np.testing.assert_allclose(
            kernel.result, exact_pagerank(graph, tolerance=1e-14), atol=1e-9
        )

    def test_ranks_sum_to_one(self):
        graph = chung_lu(80, 5.0, seed=2)
        kernel = PageRankKernel(graph, router_for(graph), make_rng(1))
        run_kernel(kernel)
        assert kernel.result.sum() == pytest.approx(1.0)

    def test_complete_graph_uniform(self):
        graph = complete(10)
        kernel = PageRankKernel(
            graph, router_for(graph, 2), make_rng(1), tolerance=1e-13
        )
        run_kernel(kernel)
        np.testing.assert_allclose(kernel.result, 0.1, atol=1e-10)

    def test_messages_per_round_constant(self):
        graph = chung_lu(80, 5.0, seed=2)
        kernel = PageRankKernel(graph, router_for(graph), make_rng(1))
        kernel.start_batch(1.0)
        first = kernel.step()
        second = kernel.step()
        assert first.wire_messages == pytest.approx(second.wire_messages)
        assert first.wire_messages == pytest.approx(
            np.count_nonzero(np.diff(graph.indptr))
            and float(graph.num_arcs)
        )

    def test_invalid_damping(self):
        graph = chain(4)
        with pytest.raises(TaskError):
            PageRankKernel(graph, router_for(graph, 2), make_rng(1), damping=1.0)

    def test_task_spec_has_async_factor(self):
        graph = chain(4)
        task = pagerank_task(graph)
        assert task.params["async_update_factor"] < 1.0
        assert task.workload == 1.0


class TestExactReferences:
    def test_exact_ppr_is_distribution(self):
        graph = chung_lu(50, 5.0, seed=3)
        ppr = exact_ppr(graph, 7)
        assert ppr.sum() == pytest.approx(1.0)
        assert (ppr >= 0).all()

    def test_exact_ppr_chain_decay(self):
        graph = chain(6, directed=True)
        ppr = exact_ppr(graph, 0, alpha=0.5)
        # Walks go strictly right and halve each hop.
        assert all(ppr[i] > ppr[i + 1] for i in range(4))

    def test_exact_ppr_source_validation(self):
        graph = chain(4)
        with pytest.raises(TaskError):
            exact_ppr(graph, 99)

    def test_bfs_vs_dijkstra_unweighted(self):
        graph = chung_lu(100, 5.0, seed=4)
        for source in (0, 13, 57):
            np.testing.assert_array_equal(
                bfs_distances(graph, source),
                dijkstra_distances(graph, source),
            )

    def test_dijkstra_weighted_triangle(self):
        graph = from_edge_list(
            [(0, 1, 10.0), (0, 2, 1.0), (2, 1, 2.0)], num_vertices=3
        )
        dist = dijkstra_distances(graph, 0)
        assert dist[1] == 3.0  # via vertex 2

    def test_k_hop_monotone_in_k(self):
        graph = chung_lu(100, 5.0, seed=6)
        inner = k_hop_set(graph, 0, 1)
        outer = k_hop_set(graph, 0, 3)
        assert (outer | inner == outer).all()
        assert outer.sum() >= inner.sum()

    def test_networkx_cross_validation(self):
        nx_available = optional_networkx_graph(chain(3))
        if nx_available is None:
            pytest.skip("networkx not installed")
        import networkx as nx

        graph = chung_lu(80, 5.0, seed=8)
        g = optional_networkx_graph(graph)
        source = 5
        nx_dist = nx.single_source_shortest_path_length(g, source)
        mine = bfs_distances(graph, source)
        for v in range(graph.num_vertices):
            if v in nx_dist:
                assert mine[v] == nx_dist[v]
            else:
                assert np.isinf(mine[v])

    def test_exact_pagerank_against_networkx(self):
        if optional_networkx_graph(chain(3)) is None:
            pytest.skip("networkx not installed")
        import networkx as nx

        graph = chung_lu(60, 5.0, seed=9)
        g = optional_networkx_graph(graph)
        nx_pr = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=500)
        mine = exact_pagerank(graph, damping=0.85, tolerance=1e-14)
        for v in range(graph.num_vertices):
            assert mine[v] == pytest.approx(nx_pr[v], abs=1e-6)
