"""Property test: batch splitting never changes source-driven results.

The batching executor's whole premise (paper Section 3) is that batch
count trades memory for rounds without touching *what* is computed.
For the source-partitioned tasks (MSSP, BKHS) that invariance is exact
at the byte level: every source's output row depends only on the graph
and that source, min-reductions are order-independent, and the kernels
draw randomness only through ``choose_sources``. So running the same
source set as one batch or as ``x`` batches must merge to identical
bytes, for every split.

BPPR is deliberately excluded: its expected-mass kernel propagates
float mass from *all* of a batch's sources through shared accumulators,
so splitting changes float summation order — the executor still keeps
its results deterministic per batch count, which is what
``tests/perf/test_determinism.py`` checks instead.

The RNG's ``choice`` is stubbed to hand each kernel an explicit source
chunk, turning "random sources" into a Hypothesis-controlled partition.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import chung_lu, erdos_renyi
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import hash_partition
from repro.messages.routing import BroadcastRouter, PointToPointRouter
from repro.rng import make_rng
from repro.tasks.bkhs import BKHSKernel
from repro.tasks.mssp import MSSPKernel

KERNELS = {"mssp": MSSPKernel, "bkhs": BKHSKernel}


class _ChunkRng:
    """Wrap a real Generator but serve ``choice`` from a preset chunk."""

    def __init__(self, chunk, seed):
        self._chunk = np.asarray(chunk, dtype=np.int64)
        self._rng = make_rng(seed)

    def choice(self, n, size, replace=False):
        assert size == self._chunk.size
        return self._chunk.copy()

    def __getattr__(self, name):
        return getattr(self._rng, name)


def _build_graph(kind, n, seed):
    if kind == "chung_lu":
        return chung_lu(n, avg_degree=4.0, seed=seed)
    return erdos_renyi(n, avg_degree=4.0, seed=seed)


def _build_router(kind, graph):
    partition = hash_partition(graph, 3)
    plan = build_mirror_plan(graph, partition)
    if kind == "point":
        return PointToPointRouter(graph, plan, message_bytes=8.0)
    return BroadcastRouter(graph, plan, message_bytes=8.0)


def _run_chunk(kernel_cls, graph, router_kind, chunk, seed):
    """Run one batch over an explicit source chunk; return per-source
    output arrays (MSSP distance rows / BKHS reachability masks)."""
    router = _build_router(router_kind, graph)
    kernel = kernel_cls(
        graph, router, _ChunkRng(chunk, seed), sample_limit=None
    )
    kernel.start_batch(float(len(chunk)))
    for _ in range(10_000):
        if kernel.step().done:
            break
    if hasattr(kernel, "reachable_sets"):
        return kernel.reachable_sets()
    return kernel.result


@st.composite
def split_cases(draw):
    graph_kind = draw(st.sampled_from(["chung_lu", "erdos_renyi"]))
    n = draw(st.integers(min_value=12, max_value=60))
    graph_seed = draw(st.integers(min_value=0, max_value=2**16))
    task = draw(st.sampled_from(sorted(KERNELS)))
    router_kind = draw(st.sampled_from(["point", "broadcast"]))
    num_sources = draw(st.integers(min_value=2, max_value=min(n, 10)))
    sources = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=num_sources,
            max_size=num_sources,
            unique=True,
        )
    )
    batches = draw(st.integers(min_value=2, max_value=num_sources))
    return graph_kind, n, graph_seed, task, router_kind, sources, batches


@settings(max_examples=20, deadline=None)
@given(split_cases())
def test_batch_split_is_byte_invariant(case):
    graph_kind, n, graph_seed, task, router_kind, sources, batches = case
    graph = _build_graph(graph_kind, n, graph_seed)
    kernel_cls = KERNELS[task]

    whole = _run_chunk(kernel_cls, graph, router_kind, sources, seed=7)

    merged = {}
    for chunk in np.array_split(np.asarray(sources, dtype=np.int64), batches):
        if chunk.size == 0:
            continue
        part = _run_chunk(kernel_cls, graph, router_kind, chunk, seed=7)
        merged.update(part)

    assert sorted(merged) == sorted(whole)
    for source, row in whole.items():
        np.testing.assert_array_equal(merged[source], row)
        assert merged[source].tobytes() == row.tobytes()


@pytest.mark.parametrize("task", sorted(KERNELS))
def test_every_split_of_a_fixed_case(task):
    """Exhaustive splits of one fixed case (fast, no Hypothesis)."""
    graph = chung_lu(40, avg_degree=4.0, seed=23)
    sources = [0, 3, 11, 17, 24, 31]
    whole = _run_chunk(KERNELS[task], graph, "point", sources, seed=7)
    for batches in range(1, len(sources) + 1):
        merged = {}
        for chunk in np.array_split(
            np.asarray(sources, dtype=np.int64), batches
        ):
            merged.update(
                _run_chunk(KERNELS[task], graph, "point", chunk, seed=7)
            )
        assert sorted(merged) == sorted(whole)
        for source, row in whole.items():
            assert merged[source].tobytes() == row.tobytes()
