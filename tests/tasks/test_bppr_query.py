"""Tests for the query-based BPPR task (Section 4.9's alternative
workload setting)."""

import numpy as np
import pytest

from repro.graph.generators import chung_lu
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import hash_partition
from repro.messages.routing import PointToPointRouter
from repro.rng import make_rng
from repro.tasks.base import make_task
from repro.tasks.bppr_query import BPPRQueryKernel, bppr_query_task


@pytest.fixture
def graph():
    return chung_lu(80, avg_degree=5.0, seed=23)


@pytest.fixture
def router(graph):
    partition = hash_partition(graph, 4)
    plan = build_mirror_plan(graph, partition)
    return PointToPointRouter(graph, plan, message_bytes=8.0)


def run_kernel(kernel, workload):
    kernel.start_batch(workload)
    for _ in range(100_000):
        if kernel.step().done:
            break
    return kernel


class TestQueryKernel:
    def test_initial_mass_only_at_sources(self, graph, router):
        kernel = BPPRQueryKernel(
            graph, router, make_rng(3), walks_per_query=100,
            sample_limit=None,
        )
        kernel.start_batch(5)
        seeded = np.flatnonzero(kernel._stopped_vec + kernel._mass_vec)
        assert set(seeded.tolist()) <= set(
            kernel.sources.tolist()
        ) | set(graph.indices.tolist())

    def test_total_mass_matches_queries(self, graph, router):
        kernel = BPPRQueryKernel(
            graph, router, make_rng(3), walks_per_query=100,
            sample_limit=None,
        )
        kernel.start_batch(5)
        total = float(kernel._mass_vec.sum())
        assert total == pytest.approx(500.0)

    def test_sampling_preserves_total_mass(self, graph, router):
        kernel = BPPRQueryKernel(
            graph, router, make_rng(3), walks_per_query=100, sample_limit=8
        )
        kernel.start_batch(64)
        assert float(kernel._mass_vec.sum()) == pytest.approx(6400.0)

    def test_all_walks_terminate(self, graph, router):
        kernel = BPPRQueryKernel(
            graph, router, make_rng(3), walks_per_query=50,
            sample_limit=None,
        )
        run_kernel(kernel, 10)
        assert kernel.residual_bytes() == pytest.approx(
            10 * 50 * 12.0, rel=0.02
        )

    def test_lighter_than_full_bppr(self, graph, router):
        """A few queries cost far fewer messages than whole-graph BPPR."""
        from repro.tasks.bppr import BPPRKernel

        query = BPPRQueryKernel(
            graph, router, make_rng(3), walks_per_query=100,
            sample_limit=None,
        )
        query.start_batch(4)
        full = BPPRKernel(graph, router, make_rng(3))
        full.start_batch(100.0)
        assert query.step().wire_messages < full.step().wire_messages


class TestQueryTaskSpec:
    def test_factory_via_make_task(self, graph):
        task = make_task("bppr-query", graph, 32, walks_per_query=500)
        assert task.name == "bppr-query"
        assert task.params["walks_per_query"] == 500

    def test_runs_through_an_engine(self, graph):
        from repro.batching.executor import MultiProcessingJob
        from repro.cluster.cluster import galaxy8

        job = MultiProcessingJob("pregel+", galaxy8(scale=400))
        task = bppr_query_task(graph, 64, walks_per_query=200, sample_limit=16)
        metrics = job.run(task, num_batches=4, seed=2)
        assert metrics.num_batches == 4
        assert metrics.total_messages > 0
        assert not metrics.overloaded

    def test_batching_reduces_congestion(self, graph):
        from repro.batching.executor import MultiProcessingJob
        from repro.cluster.cluster import galaxy8

        job = MultiProcessingJob("pregel+", galaxy8(scale=400))

        def fresh():
            return bppr_query_task(
                graph, 64, walks_per_query=200, sample_limit=16
            )

        one = job.run(fresh(), num_batches=1, seed=2)
        four = job.run(fresh(), num_batches=4, seed=2)
        assert four.messages_per_round < one.messages_per_round
