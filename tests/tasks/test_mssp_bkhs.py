"""Correctness tests for MSSP and BKHS kernels against references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edges
from repro.graph.generators import chain, chung_lu, grid_2d
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import hash_partition
from repro.messages.routing import BroadcastRouter, PointToPointRouter
from repro.rng import make_rng
from repro.tasks.bkhs import BKHSKernel, bkhs_task
from repro.tasks.exact import (
    bfs_distances,
    dijkstra_distances,
    k_hop_set,
    shortest_path_distances,
)
from repro.tasks.mssp import MSSPKernel, mssp_task


def run_kernel(kernel, workload):
    kernel.start_batch(workload)
    for _ in range(100_000):
        if kernel.step().done:
            break
    return kernel


def router_for(graph, machines=4):
    partition = hash_partition(graph, machines)
    plan = build_mirror_plan(graph, partition)
    return PointToPointRouter(graph, plan)


class TestMSSPCorrectness:
    def test_unweighted_matches_bfs(self):
        graph = chung_lu(150, 6.0, seed=5)
        kernel = MSSPKernel(
            graph, router_for(graph), make_rng(2), sample_limit=None
        )
        run_kernel(kernel, 10)
        for source, dist in kernel.result.items():
            np.testing.assert_array_equal(
                dist, bfs_distances(graph, source)
            )

    def test_weighted_matches_dijkstra(self, weighted_graph):
        kernel = MSSPKernel(
            weighted_graph,
            router_for(weighted_graph, 2),
            make_rng(2),
            sample_limit=None,
        )
        run_kernel(kernel, 3)
        for source, dist in kernel.result.items():
            np.testing.assert_allclose(
                dist, dijkstra_distances(weighted_graph, source)
            )

    def test_chain_distances(self):
        graph = chain(20, directed=False)
        kernel = MSSPKernel(
            graph, router_for(graph, 2), make_rng(0), sample_limit=None
        )
        run_kernel(kernel, 5)
        for source, dist in kernel.result.items():
            expected = np.abs(np.arange(20) - source).astype(float)
            np.testing.assert_array_equal(dist, expected)

    def test_rounds_track_eccentricity(self):
        graph = grid_2d(6, 6, directed=False)
        kernel = MSSPKernel(
            graph, router_for(graph, 2), make_rng(0), sample_limit=1
        )
        run_kernel(kernel, 1)
        source = next(iter(kernel.result))
        ecc = int(
            np.max(kernel.result[source][np.isfinite(kernel.result[source])])
        )
        # One relaxation round per BFS level + the terminating round.
        assert kernel.round_index == ecc + 1

    def test_sampling_scales_counts(self):
        graph = chung_lu(150, 6.0, seed=5)
        limited = MSSPKernel(
            graph, router_for(graph), make_rng(2), sample_limit=4
        )
        limited.start_batch(40)
        full = MSSPKernel(
            graph, router_for(graph), make_rng(2), sample_limit=None
        )
        full.start_batch(40)
        lim_first = limited.step()
        full_first = full.step()
        assert limited._scale == pytest.approx(10.0)
        # Scaled counts approximate the full simulation's round-1 load.
        assert lim_first.wire_messages == pytest.approx(
            full_first.wire_messages, rel=0.6
        )

    def test_unreachable_stays_infinite(self):
        graph = from_edges(
            np.array([0]), np.array([1]), num_vertices=4
        )  # vertices 2, 3 unreachable from 0
        kernel = MSSPKernel(
            graph, router_for(graph, 2), make_rng(0), sample_limit=None
        )
        kernel.start_batch(4)
        # Force source set to include 0 for determinism of the check.
        for _ in range(100):
            if kernel.step().done:
                break
        for source, dist in kernel.result.items():
            expected = shortest_path_distances(graph, source)
            np.testing.assert_array_equal(dist, expected)


class TestBKHSCorrectness:
    def test_counts_match_bruteforce(self):
        graph = chung_lu(120, 5.0, seed=9)
        kernel = BKHSKernel(
            graph, router_for(graph), make_rng(3), k=2, sample_limit=None
        )
        run_kernel(kernel, 8)
        for source, count in kernel.result.items():
            assert count == int(k_hop_set(graph, source, 2).sum())

    def test_reachable_sets_match(self):
        graph = grid_2d(5, 5, directed=False)
        kernel = BKHSKernel(
            graph, router_for(graph, 2), make_rng(3), k=3, sample_limit=None
        )
        run_kernel(kernel, 4)
        for source, mask in kernel.reachable_sets().items():
            np.testing.assert_array_equal(
                mask, k_hop_set(graph, source, 3)
            )

    def test_fixed_round_count(self):
        graph = chung_lu(100, 6.0, seed=4)
        for k in (1, 2, 4):
            kernel = BKHSKernel(
                graph, router_for(graph), make_rng(3), k=k, sample_limit=4
            )
            run_kernel(kernel, 4)
            assert kernel.round_index == k + 1

    def test_k_must_be_positive(self):
        graph = chain(5)
        with pytest.raises(Exception):
            BKHSKernel(graph, router_for(graph, 2), make_rng(0), k=0)

    def test_broadcast_router_accepted(self):
        graph = chung_lu(100, 6.0, seed=4)
        partition = hash_partition(graph, 4)
        plan = build_mirror_plan(graph, partition, degree_threshold=10)
        router = BroadcastRouter(graph, plan)
        kernel = BKHSKernel(graph, router, make_rng(3), k=2, sample_limit=4)
        run_kernel(kernel, 4)
        for source, count in kernel.result.items():
            assert count == int(k_hop_set(graph, source, 2).sum())


class TestTaskSpecs:
    def test_mssp_task(self, random_graph):
        task = mssp_task(random_graph, 64)
        assert task.name == "mssp"
        assert task.params["sample_limit"] == 64

    def test_bkhs_task(self, random_graph):
        task = bkhs_task(random_graph, 64, k=3)
        assert task.params["k"] == 3


@given(
    st.integers(min_value=2, max_value=30),
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=30, deadline=None)
def test_mssp_property_matches_bfs(n, m, seed):
    """Property test: MSSP distances equal BFS on random digraphs."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    graph = from_edges(src, dst, num_vertices=n, dedup=True)
    kernel = MSSPKernel(
        graph, router_for(graph, 2), make_rng(seed), sample_limit=None
    )
    run_kernel(kernel, min(3, n))
    for source, dist in kernel.result.items():
        np.testing.assert_array_equal(dist, bfs_distances(graph, source))
