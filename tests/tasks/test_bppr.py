"""Correctness tests for the BPPR kernels against exact PPR."""

import numpy as np
import pytest

from repro.errors import TaskError
from repro.graph.generators import chain, chung_lu
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import hash_partition
from repro.messages.routing import BroadcastRouter, PointToPointRouter
from repro.rng import make_rng
from repro.tasks.bppr import BPPRKernel, bppr_task
from repro.tasks.exact import exact_ppr, exact_ppr_matrix


def run_kernel(kernel, workload):
    kernel.start_batch(workload)
    for _ in range(100_000):
        summary = kernel.step()
        if summary.done:
            break
    return kernel


@pytest.fixture
def graph():
    return chung_lu(60, avg_degree=5.0, seed=17)


@pytest.fixture
def point_router(graph):
    partition = hash_partition(graph, 4)
    plan = build_mirror_plan(graph, partition)
    return PointToPointRouter(graph, plan, message_bytes=8.0)


class TestExpectedKernel:
    def test_tracked_matches_exact_ppr(self, graph, point_router):
        kernel = BPPRKernel(
            graph,
            point_router,
            make_rng(1),
            mode="expected",
            track_sources=True,
            max_rounds=2000,
        )
        run_kernel(kernel, 100.0)
        estimates = kernel.result
        exact = exact_ppr_matrix(graph, alpha=0.15)
        np.testing.assert_allclose(estimates, exact, atol=5e-4)

    def test_rows_are_distributions(self, graph, point_router):
        kernel = BPPRKernel(
            graph, point_router, make_rng(1), track_sources=True
        )
        run_kernel(kernel, 10.0)
        rows = kernel.result.sum(axis=1)
        np.testing.assert_allclose(rows, 1.0, atol=1e-9)

    def test_untracked_aggregate_matches_tracked(self, graph, point_router):
        tracked = BPPRKernel(
            graph, point_router, make_rng(1), track_sources=True
        )
        run_kernel(tracked, 16.0)
        untracked = BPPRKernel(
            graph, point_router, make_rng(1), track_sources=False
        )
        run_kernel(untracked, 16.0)
        aggregate_tracked = tracked.result.mean(axis=0)
        np.testing.assert_allclose(
            untracked.result, aggregate_tracked, atol=1e-6
        )

    def test_message_counts_decay_geometrically(self, graph, point_router):
        kernel = BPPRKernel(graph, point_router, make_rng(1))
        kernel.start_batch(1000.0)
        first = kernel.step()
        second = kernel.step()
        # Each round keeps (1 - alpha) of the moving mass, modulo
        # dangling absorption.
        ratio = second.wire_messages / first.wire_messages
        assert 0.6 < ratio <= 0.85 + 1e-9

    def test_residual_grows_monotonically(self, graph, point_router):
        kernel = BPPRKernel(graph, point_router, make_rng(1))
        kernel.start_batch(100.0)
        previous = 0.0
        for _ in range(20):
            kernel.step()
            current = kernel.residual_bytes()
            assert current >= previous
            previous = current

    def test_residual_total_counts_all_walks(self, graph, point_router):
        kernel = BPPRKernel(graph, point_router, make_rng(1))
        run_kernel(kernel, 50.0)
        expected_walks = 50.0 * graph.num_vertices
        assert kernel.residual_bytes() == pytest.approx(
            expected_walks * 12.0, rel=0.01
        )

    def test_dangling_vertices_absorb(self, point_router):
        graph = chain(5, directed=True)  # vertex 4 dangles
        partition = hash_partition(graph, 2)
        plan = build_mirror_plan(graph, partition)
        router = PointToPointRouter(graph, plan)
        kernel = BPPRKernel(
            graph, router, make_rng(1), track_sources=True
        )
        run_kernel(kernel, 100.0)
        # All walk mass eventually stops somewhere.
        np.testing.assert_allclose(kernel.result.sum(axis=1), 1.0)

    def test_tracked_rejects_large_graphs(self, point_router):
        big = chung_lu(5000, 4.0, seed=1)
        partition = hash_partition(big, 4)
        plan = build_mirror_plan(big, partition)
        router = PointToPointRouter(big, plan)
        kernel = BPPRKernel(big, router, make_rng(1), track_sources=True)
        with pytest.raises(TaskError):
            kernel.start_batch(10.0)


class TestMonteCarloKernel:
    def test_converges_to_exact_ppr(self, graph, point_router):
        kernel = BPPRKernel(
            graph, point_router, make_rng(7), mode="montecarlo"
        )
        run_kernel(kernel, 400)
        exact = exact_ppr(graph, 0, alpha=0.15)
        estimate = kernel.result[0]
        # Statistical agreement: total variation distance shrinks like
        # 1/sqrt(W); at W=400 over 60 targets ~0.1 is the expected scale.
        tv = 0.5 * np.abs(estimate - exact).sum()
        assert tv < 0.13

    def test_every_walk_accounted(self, graph, point_router):
        kernel = BPPRKernel(
            graph, point_router, make_rng(7), mode="montecarlo"
        )
        run_kernel(kernel, 20)
        assert kernel._stop_counts.sum() == 20 * graph.num_vertices

    def test_integer_workload_required(self, graph, point_router):
        kernel = BPPRKernel(
            graph, point_router, make_rng(7), mode="montecarlo"
        )
        with pytest.raises(TaskError):
            kernel.start_batch(2.5)

    def test_deterministic_given_seed(self, graph, point_router):
        a = BPPRKernel(graph, point_router, make_rng(3), mode="montecarlo")
        run_kernel(a, 10)
        b = BPPRKernel(graph, point_router, make_rng(3), mode="montecarlo")
        run_kernel(b, 10)
        np.testing.assert_array_equal(a.result, b.result)


class TestBroadcastVariant:
    def test_broadcast_blocks_bounded_by_sources(self, graph):
        partition = hash_partition(graph, 4)
        plan = build_mirror_plan(graph, partition, degree_threshold=8)
        router = BroadcastRouter(graph, plan)
        kernel = BPPRKernel(graph, router, make_rng(1))
        kernel.start_batch(1000.0)
        first = kernel.step()
        # Round 1: one source per vertex, so at most n blocks, each
        # delivered to all neighbours.
        assert first.routed.delivered_messages <= graph.num_arcs + 1e-6

    def test_unbiased_estimates_under_broadcast(self, graph):
        partition = hash_partition(graph, 4)
        plan = build_mirror_plan(graph, partition, degree_threshold=8)
        router = BroadcastRouter(graph, plan)
        kernel = BPPRKernel(
            graph, router, make_rng(1), track_sources=True
        )
        run_kernel(kernel, 50.0)
        exact = exact_ppr_matrix(graph, alpha=0.15)
        np.testing.assert_allclose(kernel.result, exact, atol=5e-4)


class TestTaskSpec:
    def test_lifecycle_guards(self, graph, point_router):
        kernel = BPPRKernel(graph, point_router, make_rng(1))
        with pytest.raises(TaskError):
            kernel.step()  # not started
        kernel.start_batch(5.0)
        with pytest.raises(TaskError):
            kernel.start_batch(5.0)  # double start

    def test_invalid_alpha(self, graph, point_router):
        with pytest.raises(TaskError):
            BPPRKernel(graph, point_router, make_rng(1), alpha=1.5)

    def test_task_factory(self, graph):
        task = bppr_task(graph, 128)
        assert task.name == "bppr"
        assert task.workload == 128
        assert task.message_bytes == 8.0


class TestDenseTransitionCache:
    """The tracked kernel's n x n transition matrix is content-keyed in
    the artifact cache on (graph fingerprint, alpha) — repeated tracked
    runs over the same graph skip the rebuild entirely."""

    @pytest.fixture(autouse=True)
    def _pinned_cache(self):
        from repro.perf.cache import clear_cache, get_cache

        cache = get_cache()
        saved = cache.capacity
        cache.capacity = 64
        clear_cache()
        yield
        cache.capacity = saved
        clear_cache()

    def test_second_kernel_hits_the_cache(self, graph, point_router):
        from repro.perf.cache import get_cache

        first = BPPRKernel(
            graph, point_router, make_rng(1), track_sources=True
        )
        first.start_batch(10.0)
        hits_before = get_cache().stats.hits
        second = BPPRKernel(
            graph, point_router, make_rng(2), track_sources=True
        )
        second.start_batch(10.0)
        assert get_cache().stats.hits == hits_before + 1
        assert second._transition is first._transition
        assert not second._transition.flags.writeable

    def test_distinct_graphs_and_alphas_miss(self, graph, point_router):
        from repro.perf.cache import get_cache

        def transition_entries():
            return sum(
                1
                for key in get_cache()._entries
                if key[0] == "bppr-dense-transition"
            )

        BPPRKernel(
            graph, point_router, make_rng(1), track_sources=True
        ).start_batch(5.0)
        assert transition_entries() == 1
        BPPRKernel(
            graph, point_router, make_rng(1), alpha=0.3, track_sources=True
        ).start_batch(5.0)
        assert transition_entries() == 2

        other = chung_lu(40, avg_degree=4.0, seed=99)
        partition = hash_partition(other, 4)
        plan = build_mirror_plan(other, partition)
        router = PointToPointRouter(other, plan, message_bytes=8.0)
        BPPRKernel(
            other, router, make_rng(1), track_sources=True
        ).start_batch(5.0)
        assert transition_entries() == 3

    def test_cached_transition_still_converges(self, graph, point_router):
        from repro.tasks.exact import exact_ppr_matrix

        warm = BPPRKernel(
            graph, point_router, make_rng(1), track_sources=True
        )
        warm.start_batch(1.0)  # populate the cache
        kernel = BPPRKernel(
            graph,
            point_router,
            make_rng(2),
            track_sources=True,
            max_rounds=2000,
        )
        run_kernel(kernel, 100.0)
        exact = exact_ppr_matrix(graph, alpha=0.15)
        np.testing.assert_allclose(kernel.result, exact, atol=5e-4)

    def test_disk_round_trip(self, graph, point_router, tmp_path):
        from repro.perf.cache import clear_cache, get_cache

        cache = get_cache()
        saved_dir = cache.directory
        cache.directory = str(tmp_path)
        try:
            built = BPPRKernel(
                graph, point_router, make_rng(1), track_sources=True
            )
            built.start_batch(5.0)
            clear_cache()  # memory gone; disk must serve
            loaded = BPPRKernel(
                graph, point_router, make_rng(2), track_sources=True
            )
            loaded.start_batch(5.0)
            assert get_cache().stats.disk_hits >= 1
            assert (
                loaded._transition.tobytes() == built._transition.tobytes()
            )
        finally:
            cache.directory = saved_dir
