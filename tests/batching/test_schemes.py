"""Tests for batching schemes (plus hypothesis properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching.schemes import (
    doubling_batch_counts,
    equal_batches,
    explicit_batches,
    full_parallelism,
    two_batches_delta,
)
from repro.errors import BatchingError


class TestEqualBatches:
    def test_even_split(self):
        assert equal_batches(100, 4) == [25.0, 25.0, 25.0, 25.0]

    def test_remainder_spread_over_leading_batches(self):
        assert equal_batches(10, 3) == [4.0, 3.0, 3.0]

    def test_one_batch_is_full_parallelism(self):
        assert equal_batches(77, 1) == full_parallelism(77) == [77.0]

    def test_fractional_workload(self):
        assert equal_batches(2.5, 2) == [1.25, 1.25]

    def test_fractional_smaller_than_batches_rejected(self):
        # A batch must contain at least one unit task.
        with pytest.raises(BatchingError):
            equal_batches(1.5, 3)

    def test_too_many_batches_rejected(self):
        with pytest.raises(BatchingError):
            equal_batches(3, 5)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_counts(self, bad):
        with pytest.raises(BatchingError):
            equal_batches(10, bad)

    def test_invalid_workload(self):
        with pytest.raises(BatchingError):
            equal_batches(0, 1)


class TestTwoBatchesDelta:
    def test_balanced(self):
        assert two_batches_delta(100, 0) == [50.0, 50.0]

    def test_positive_delta_front_loads(self):
        assert two_batches_delta(100, 20) == [60.0, 40.0]

    def test_negative_delta_back_loads(self):
        assert two_batches_delta(100, -20) == [40.0, 60.0]

    def test_degenerate_delta_rejected(self):
        with pytest.raises(BatchingError):
            two_batches_delta(100, 100)
        with pytest.raises(BatchingError):
            two_batches_delta(100, -150)


class TestExplicit:
    def test_passthrough(self):
        assert explicit_batches([3, 2, 1]) == [3.0, 2.0, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(BatchingError):
            explicit_batches([])

    def test_nonpositive_rejected(self):
        with pytest.raises(BatchingError):
            explicit_batches([5, 0])


class TestDoublingAxis:
    def test_standard_axis(self):
        assert doubling_batch_counts(1000) == [1, 2, 4, 8, 16]

    def test_truncated_for_small_workload(self):
        assert doubling_batch_counts(5) == [1, 2, 4]

    def test_custom_limit(self):
        assert doubling_batch_counts(1000, limit=64) == [
            1, 2, 4, 8, 16, 32, 64,
        ]


@given(
    st.integers(min_value=1, max_value=10**6),
    st.integers(min_value=1, max_value=128),
)
@settings(max_examples=200, deadline=None)
def test_equal_batches_properties(workload, batches):
    """Sum preserved, sizes positive, near-equal, monotone."""
    if batches > workload:
        with pytest.raises(BatchingError):
            equal_batches(workload, batches)
        return
    sizes = equal_batches(workload, batches)
    assert len(sizes) == batches
    assert sum(sizes) == workload
    assert all(s > 0 for s in sizes)
    assert max(sizes) - min(sizes) <= 1
    assert sizes == sorted(sizes, reverse=True)


@given(
    st.floats(min_value=1.0, max_value=1e6),
    st.floats(min_value=-0.99, max_value=0.99),
)
@settings(max_examples=100, deadline=None)
def test_two_batches_delta_properties(workload, fraction):
    delta = workload * fraction
    sizes = two_batches_delta(workload, delta)
    assert sum(sizes) == pytest.approx(workload)
    # Absolute tolerance relative to the workload magnitude (tiny deltas
    # drown in float cancellation otherwise).
    assert sizes[0] - sizes[1] == pytest.approx(
        delta, abs=1e-9 * max(workload, 1.0)
    )


class TestGeometric:
    def test_sum_and_ratio(self):
        from repro.batching.schemes import geometric_batches

        sizes = geometric_batches(700, 3, ratio=0.5)
        assert sum(sizes) == pytest.approx(700)
        assert sizes == [400.0, 200.0, 100.0]

    def test_ratio_one_is_equal_split(self):
        from repro.batching.schemes import geometric_batches

        sizes = geometric_batches(90, 3, ratio=1.0)
        assert sizes == [30.0, 30.0, 30.0]

    def test_monotone_decreasing(self):
        from repro.batching.schemes import geometric_batches

        sizes = geometric_batches(1000, 6, ratio=0.7)
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_invalid_ratio(self):
        from repro.batching.schemes import geometric_batches

        with pytest.raises(BatchingError):
            geometric_batches(100, 3, ratio=0.0)
        with pytest.raises(BatchingError):
            geometric_batches(100, 3, ratio=1.5)
