"""Parallel fan-out: determinism vs the serial loop, fallback, jobs."""

import dataclasses

import pytest

from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig
from repro.experiments.common import sweep_batches, task_for
from repro.experiments.runner import run_experiment
from repro.graph.datasets import load_dataset
from repro.perf.parallel import parallel_map, parallel_map_fork, resolve_jobs

#: Small stand-in scale for fast sweeps.
SCALE = 4000


def _square(x):
    """Module-level (picklable) worker for ``parallel_map``."""
    return x * x


class TestResolveJobs:
    def test_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1  # cpu count

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestParallelMap:
    def test_preserves_order(self):
        args = [(i,) for i in range(7)]
        assert parallel_map(_square, args, jobs=2) == [
            i * i for i in range(7)
        ]

    def test_serial_path(self):
        args = [(i,) for i in range(4)]
        assert parallel_map(_square, args, jobs=1) == [0, 1, 4, 9]

    def test_fork_closures(self):
        base = 10
        result = parallel_map_fork(lambda i: base + i, 5, jobs=2)
        assert result == [10, 11, 12, 13, 14]

    def test_unpicklable_falls_back_to_serial(self):
        # Lambdas cannot cross a spawn/pickle boundary; parallel_map
        # must still produce the right answer via the serial loop (and
        # warn, rather than silently degrade — see test_parallel_faults).
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = parallel_map(lambda x: x + 1, [(1,), (2,)], jobs=2)
        assert result == [2, 3]


class TestSweepDeterminism:
    def test_sweep_batches_parallel_identical(self):
        graph = load_dataset("web-st", scale=SCALE)
        cluster = galaxy8(scale=SCALE)
        factory = lambda: task_for(graph, "bppr", 64.0, quick=True)
        serial = sweep_batches(
            "pregel+", cluster, factory, [1, 2, 4], seed=7
        )
        fanned = sweep_batches(
            "pregel+", cluster, factory, [1, 2, 4], seed=7, jobs=2
        )
        assert [dataclasses.asdict(m) for m in serial] == [
            dataclasses.asdict(m) for m in fanned
        ]

    def test_experiment_parallel_identical(self):
        serial = run_experiment(
            "fig8", ExperimentConfig(quick=True, scale=SCALE, jobs=1)
        )
        fanned = run_experiment(
            "fig8", ExperimentConfig(quick=True, scale=SCALE, jobs=2)
        )
        assert serial.to_markdown() == fanned.to_markdown()
