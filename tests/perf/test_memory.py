"""Peak-RSS accounting: ``repro.perf.memory``."""

from __future__ import annotations

import pytest

from repro.perf import memory


@pytest.fixture(autouse=True)
def _fresh_memory_state():
    memory.reset_memory_state()
    yield
    memory.reset_memory_state()


class TestSampling:
    def test_rss_and_peak_are_positive_on_linux(self):
        rss = memory.rss_bytes()
        peak = memory.peak_rss_bytes()
        assert rss is not None and rss > 0
        assert peak is not None and peak >= rss // 2  # same order

    def test_note_phase_records_high_water(self):
        memory.note_phase("build")
        stats = memory.memory_stats()
        assert "build" in stats["phase_high_water_bytes"]
        assert stats["phase_high_water_bytes"]["build"] > 0

    def test_high_water_never_decreases(self):
        memory.note_phase("kernel")
        first = memory.memory_stats()["phase_high_water_bytes"]["kernel"]
        memory.note_phase("kernel")
        second = memory.memory_stats()["phase_high_water_bytes"]["kernel"]
        assert second >= first

    def test_sampled_notes_are_throttled(self):
        for _ in range(memory.SAMPLE_EVERY - 1):
            memory.note_phase("hot", sampled=True)
        # Only the 0th tick of each SAMPLE_EVERY window samples.
        stats = memory.memory_stats()["phase_high_water_bytes"]
        assert "hot" in stats  # tick 0 sampled
        memory.reset_memory_state()
        memory._TICKS["hot2"] = 1  # mid-window: next note must skip
        memory.note_phase("hot2", sampled=True)
        assert "hot2" not in memory.memory_stats()["phase_high_water_bytes"]


class TestWorkerPeaks:
    def test_record_worker_peak_keeps_maximum(self):
        memory.record_worker_peak(100)
        memory.record_worker_peak(50)
        assert memory.memory_stats()["worker_peak_rss_bytes"] == 100

    def test_parent_peak_until_any_worker_reports(self):
        # jobs=1 runs have no pool workers: the parent *is* the worker,
        # so its own peak is folded in instead of reporting null.
        stats = memory.memory_stats()
        assert stats["worker_peak_rss_bytes"] is not None
        # Both read the same VmHWM; peak RSS is monotone, so the two
        # samples can differ by at most an allocation between them.
        assert stats["worker_peak_rss_bytes"] >= stats["peak_rss_bytes"]


class TestStateSpills:
    def test_record_state_spill_accumulates(self):
        memory.record_state_spill(1000)
        memory.record_state_spill(24)
        spills = memory.memory_stats()["state_spills"]
        assert spills == {"count": 2, "bytes": 1024}

    def test_reset_clears_spills(self):
        memory.record_state_spill(8)
        memory.reset_memory_state()
        spills = memory.memory_stats()["state_spills"]
        assert spills == {"count": 0, "bytes": 0}


class TestStatsShape:
    def test_memory_stats_keys(self):
        stats = memory.memory_stats()
        assert set(stats) == {
            "peak_rss_bytes",
            "current_rss_bytes",
            "worker_peak_rss_bytes",
            "phase_high_water_bytes",
            "state_spills",
        }

    def test_phases_sorted(self):
        memory.note_phase("zeta")
        memory.note_phase("alpha")
        phases = list(memory.memory_stats()["phase_high_water_bytes"])
        assert phases == sorted(phases)
