"""Phase-timing accumulator: add/span/merge/render/dump."""

import json

from repro.perf import timings


class TestTimings:
    def setup_method(self):
        timings.reset()

    def teardown_method(self):
        timings.reset()

    def test_add_and_snapshot(self):
        timings.add("kernel", 0.5)
        timings.add("kernel", 0.25, count=2)
        snap = timings.snapshot()
        assert snap["kernel"]["seconds"] == 0.75
        assert snap["kernel"]["count"] == 3

    def test_span_records_elapsed(self):
        with timings.span("phase-x"):
            pass
        snap = timings.snapshot()
        assert snap["phase-x"]["count"] == 1
        assert snap["phase-x"]["seconds"] >= 0.0

    def test_merge_folds_other_process(self):
        timings.add("kernel", 1.0)
        timings.merge({"kernel": {"seconds": 2.0, "count": 4}})
        snap = timings.snapshot()
        assert snap["kernel"]["seconds"] == 3.0
        assert snap["kernel"]["count"] == 5

    def test_render_table(self):
        assert "no timing spans" in timings.render_table()
        timings.add("graph-gen", 1.5)
        table = timings.render_table()
        assert "graph-gen" in table
        assert "1.500" in table

    def test_write_json(self, tmp_path):
        timings.add("partition", 0.125)
        path = tmp_path / "BENCH_perf.json"
        timings.write_json(str(path), extra={"wall_seconds": 9.0})
        payload = json.loads(path.read_text())
        assert payload["wall_seconds"] == 9.0
        assert payload["phases"]["partition"]["seconds"] == 0.125
