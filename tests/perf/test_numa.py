"""Tests for NUMA discovery, placement and fallbacks (repro.perf.numa).

The host running the suite is usually single-node, so multi-node
behaviour is exercised through a fake sysfs tree and injected
topologies; every degraded path (no sysfs, restrictive cpuset, denied
``sched_setaffinity``) must announce itself exactly once with a
NumaWarning and then proceed — silently broken placement is the one
outcome the layer is not allowed to produce.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import chung_lu
from repro.perf import numa, shm
from repro.perf.numa import (
    NumaNode,
    NumaTopology,
    NumaWarning,
    WorkerPlacement,
)
from repro.perf.parallel import parallel_map


@pytest.fixture(autouse=True)
def _fresh_numa_state():
    numa.reset_numa_state()
    yield
    numa.reset_numa_state()


def two_node_topology(cpus=(0,)):
    """An injected two-node topology whose CPUs this process owns."""
    return NumaTopology(
        nodes=(NumaNode(0, tuple(cpus)), NumaNode(1, tuple(cpus))),
        source="test",
    )


def write_fake_sysfs(root, layout):
    """Create ``nodeK/cpulist`` files under ``root`` from a dict."""
    for node_id, cpulist in layout.items():
        node_dir = root / f"node{node_id}"
        node_dir.mkdir(parents=True)
        (node_dir / "cpulist").write_text(cpulist)
    return str(root)


class TestParseCpuList:
    def test_ranges_and_singletons(self):
        assert numa.parse_cpu_list("0-3,8,10-11") == (0, 1, 2, 3, 8, 10, 11)

    def test_whitespace_and_duplicates(self):
        assert numa.parse_cpu_list(" 2, 1-2,\n") == (1, 2)

    def test_empty(self):
        assert numa.parse_cpu_list("") == ()


class TestDiscover:
    def test_multi_node_fake_sysfs(self, tmp_path):
        root = write_fake_sysfs(tmp_path, {0: "0-1", 1: "2-3"})
        topo = numa.discover(
            sysfs_root=root, affinity=frozenset(range(4))
        )
        assert topo.source == "sysfs"
        assert topo.node_ids() == (0, 1)
        assert topo.nodes[0].cpus == (0, 1)
        assert topo.nodes[1].cpus == (2, 3)

    def test_cpuset_restriction_drops_node_and_warns_once(self, tmp_path):
        root = write_fake_sysfs(tmp_path, {0: "0-1", 1: "2-3"})
        with pytest.warns(NumaWarning, match="cpuset"):
            topo = numa.discover(
                sysfs_root=root, affinity=frozenset({0, 1})
            )
        assert topo.node_ids() == (0,)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = numa.discover(
                sysfs_root=root, affinity=frozenset({0, 1})
            )
        assert again.node_ids() == (0,)

    def test_cpuset_emptying_every_node_falls_back(self, tmp_path):
        root = write_fake_sysfs(tmp_path, {0: "0-1", 1: "2-3"})
        with pytest.warns(NumaWarning, match="single node"):
            topo = numa.discover(
                sysfs_root=root, affinity=frozenset({9})
            )
        assert topo.source == "affinity"
        assert topo.num_nodes == 1
        assert topo.nodes[0].cpus == (9,)

    def test_missing_sysfs_warns_and_degrades(self, tmp_path):
        with pytest.warns(NumaWarning, match="unavailable"):
            topo = numa.discover(
                sysfs_root=str(tmp_path / "nope"),
                affinity=frozenset({0, 1}),
            )
        assert topo.source == "affinity"
        assert topo.num_nodes == 1

    def test_real_discovery_never_raises(self):
        topo = numa.discover()
        assert topo.num_nodes >= 1
        assert len(topo.cpus) >= 1


class TestPlanning:
    def test_round_robin_over_nodes(self, tmp_path):
        root = write_fake_sysfs(tmp_path, {0: "0-1", 1: "2-3"})
        topo = numa.discover(
            sysfs_root=root, affinity=frozenset(range(4))
        )
        plan = numa.plan_placement(topo, 5)
        assert [p.node_id for p in plan] == [0, 1, 0, 1, 0]
        assert plan[1].cpus == (2, 3)
        assert [p.slot for p in plan] == list(range(5))

    def test_plan_for_off_mode_is_none(self):
        numa.configure_numa(mode="off", topology=two_node_topology())
        assert numa.plan_for(4) is None

    def test_plan_for_serial_pool_is_none(self):
        numa.configure_numa(topology=two_node_topology())
        assert numa.plan_for(1) is None

    def test_single_node_is_a_silent_noop(self, recwarn):
        numa.configure_numa(
            topology=NumaTopology(nodes=(NumaNode(0, (0,)),), source="x")
        )
        assert numa.plan_for(4) is None
        assert not [
            w for w in recwarn if issubclass(w.category, NumaWarning)
        ]

    def test_multi_node_plan(self):
        numa.configure_numa(topology=two_node_topology())
        plan = numa.plan_for(4)
        assert plan is not None
        assert [p.node_id for p in plan] == [0, 1, 0, 1]

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="--numa"):
            numa.configure_numa(mode="sideways")


class TestApplyPlacement:
    def test_successful_pin_records_worker(self):
        allowed = sorted(os.sched_getaffinity(0))
        placement = WorkerPlacement(slot=0, node_id=3, cpus=tuple(allowed))
        try:
            assert numa.apply_placement(placement) is True
            assert numa.current_worker_node() == 3
            record = numa.worker_placement()
            assert record is not None and record["pinned"] is True
            assert record["pid"] == os.getpid()
        finally:
            os.sched_setaffinity(0, set(allowed))

    def test_permission_error_warns_once_and_proceeds(self, monkeypatch):
        def deny(pid, cpus):
            raise PermissionError("nope")

        monkeypatch.setattr(os, "sched_setaffinity", deny)
        placement = WorkerPlacement(slot=0, node_id=1, cpus=(0,))
        with pytest.warns(NumaWarning, match="denied"):
            assert numa.apply_placement(placement) is False
        record = numa.worker_placement()
        assert record is not None
        assert record["node"] == 1 and record["pinned"] is False
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert numa.apply_placement(placement) is False

    def test_missing_setaffinity_warns_and_proceeds(self, monkeypatch):
        monkeypatch.delattr(os, "sched_setaffinity")
        placement = WorkerPlacement(slot=0, node_id=0, cpus=(0,))
        with pytest.warns(NumaWarning, match="unavailable"):
            assert numa.apply_placement(placement) is False

    def test_impossible_cpus_warn_and_proceed(self):
        placement = WorkerPlacement(slot=0, node_id=0, cpus=(4096,))
        with pytest.warns(NumaWarning, match="unpinned"):
            assert numa.apply_placement(placement) is False


class TestSegmentPlacement:
    def test_off_or_single_node_is_single(self):
        numa.configure_numa(mode="off")
        assert numa.segment_placement(10**9, 2) == "single"
        numa.configure_numa(mode="auto")
        assert numa.segment_placement(10**9, 1) == "single"

    def test_auto_splits_on_threshold(self):
        numa.configure_numa(mode="auto", replicate_threshold=1000)
        assert numa.segment_placement(999, 2) == "interleave"
        assert numa.segment_placement(1000, 2) == "replicate"

    def test_forced_modes(self):
        numa.configure_numa(mode="replicate")
        assert numa.segment_placement(1, 2) == "replicate"
        numa.configure_numa(mode="interleave")
        assert numa.segment_placement(10**9, 2) == "interleave"

    def test_replication_nodes_follow_topology(self):
        numa.configure_numa(topology=two_node_topology())
        assert numa.replication_nodes() == (0, 1)
        numa.configure_numa(mode="off")
        assert numa.replication_nodes() == ()


def _square(x):
    return x * x


class TestPoolIntegration:
    def test_workers_pin_and_report(self):
        numa.configure_numa(topology=two_node_topology())
        results = parallel_map(_square, [(i,) for i in range(6)], jobs=2)
        assert results == [i * i for i in range(6)]
        stats = numa.numa_stats()
        assert stats["workers"], "workers never reported their placement"
        nodes_seen = {w["node"] for w in stats["workers"].values()}
        assert nodes_seen <= {0, 1}
        assert stats["workers_pinned"] + stats["workers_unpinned"] == len(
            stats["workers"]
        )
        assert stats["workers_pinned"] == len(stats["workers"])

    def test_off_mode_reports_no_workers(self):
        numa.configure_numa(mode="off", topology=two_node_topology())
        results = parallel_map(_square, [(i,) for i in range(4)], jobs=2)
        assert results == [0, 1, 4, 9]
        assert numa.numa_stats()["workers"] == {}


class TestShmReplicas:
    @pytest.fixture
    def registry(self):
        reg = shm.SharedGraphRegistry()
        yield reg
        reg.shutdown()

    def _export(self, reg, graph):
        handle = reg.export(
            ("dataset", "numa-test", 1, None),
            graph,
            nodes=numa.replication_nodes(),
        )
        if handle is None:
            pytest.skip("shared memory unavailable on this platform")
        return handle

    def test_replicated_export_and_node_local_attach(self, registry):
        numa.configure_numa(
            topology=two_node_topology(), replicate_threshold=1
        )
        graph = chung_lu(300, avg_degree=5.0, seed=3, name="numa-shm")
        handle = self._export(registry, graph)
        assert handle.placement == "replicate"
        assert {node for node, _ in handle.replicas} == {0, 1}

        numa.apply_placement(WorkerPlacement(slot=0, node_id=1, cpus=(0,)))
        attached = registry.attach(handle)
        np.testing.assert_array_equal(attached.indptr, graph.indptr)
        np.testing.assert_array_equal(attached.indices, graph.indices)
        counters = registry.counters
        assert counters["replica_segments"] == 2
        assert counters["replicas_populated"] == 1
        assert counters["node_local_attaches"] == 1

    def test_small_graph_interleaves(self, registry):
        numa.configure_numa(topology=two_node_topology())
        graph = chung_lu(50, avg_degree=3.0, seed=5, name="numa-small")
        handle = self._export(registry, graph)
        assert handle.placement == "interleave"
        assert handle.replicas == ()
        assert registry.counters["interleaved_graphs"] == 1

    def test_off_mode_exports_plain_segment(self, registry):
        numa.configure_numa(mode="off", topology=two_node_topology())
        graph = chung_lu(50, avg_degree=3.0, seed=5, name="numa-off")
        handle = self._export(registry, graph)
        assert handle.placement == "single"
        assert handle.replicas == ()

    def test_unplaced_worker_attaches_primary(self, registry):
        numa.configure_numa(
            topology=two_node_topology(), replicate_threshold=1
        )
        graph = chung_lu(200, avg_degree=4.0, seed=9, name="numa-unplaced")
        handle = self._export(registry, graph)
        attached = registry.attach(handle)
        np.testing.assert_array_equal(attached.indices, graph.indices)
        assert registry.counters["node_local_attaches"] == 0


class TestMemoryBudgetedWorkers:
    """``--jobs 0``: per-node CPU counts capped by per-node DRAM."""

    BUDGET = numa.DEFAULT_WORKER_MEMORY_BYTES

    def budgeted_topology(self):
        return NumaTopology(
            nodes=(
                NumaNode(0, (0, 1, 2, 3), memory_bytes=2 * self.BUDGET),
                NumaNode(1, (4, 5, 6, 7), memory_bytes=8 * self.BUDGET),
            ),
            source="test",
        )

    def test_memory_caps_per_node_workers(self):
        numa.configure_numa(topology=self.budgeted_topology())
        # node 0: 4 CPUs but DRAM for 2 workers; node 1: CPU-bound at 4.
        assert numa.budgeted_worker_count() == 6
        roster = numa.numa_stats()["worker_budget"]
        assert roster["0"] == {
            "cpus": 4,
            "memory_bytes": 2 * self.BUDGET,
            "workers": 2,
        }
        assert roster["1"]["workers"] == 4

    def test_unknown_memory_caps_by_cpus_alone(self):
        numa.configure_numa(
            topology=NumaTopology(
                nodes=(NumaNode(0, (0, 1, 2)),), source="test"
            )
        )
        assert numa.budgeted_worker_count() == 3
        assert numa.numa_stats()["worker_budget"]["0"]["memory_bytes"] is None

    def test_off_mode_restores_plain_cpu_count(self):
        numa.configure_numa(mode="off", topology=self.budgeted_topology())
        assert numa.budgeted_worker_count() == max(os.cpu_count() or 1, 1)
        assert numa.numa_stats()["worker_budget"] == {}

    def test_never_returns_zero(self):
        numa.configure_numa(
            topology=NumaTopology(
                nodes=(NumaNode(0, (0,), memory_bytes=self.BUDGET // 2),),
                source="test",
            )
        )
        assert numa.budgeted_worker_count() == 1

    def test_worker_memory_override(self):
        from repro.errors import ConfigurationError

        numa.configure_numa(
            topology=self.budgeted_topology(),
            worker_memory_bytes=self.BUDGET // 2,
        )
        # Halving the per-worker estimate doubles the memory caps:
        # node 0 fits 4 (CPU-bound), node 1 fits 4 (CPU-bound).
        assert numa.budgeted_worker_count() == 8
        with pytest.raises(ConfigurationError):
            numa.configure_numa(worker_memory_bytes=0)

    def test_resolve_jobs_zero_consults_budget(self):
        from repro.perf.parallel import resolve_jobs

        numa.configure_numa(topology=self.budgeted_topology())
        assert resolve_jobs(0) == 6
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3

    def test_discover_reads_node_meminfo(self, tmp_path):
        root = write_fake_sysfs(tmp_path, {0: "0-1", 1: "2-3"})
        (tmp_path / "node0" / "meminfo").write_text(
            "Node 0 MemTotal:       2048 kB\nNode 0 MemFree: 1024 kB\n"
        )
        topo = numa.discover(sysfs_root=root, affinity=frozenset(range(4)))
        assert topo.nodes[0].memory_bytes == 2048 * 1024
        assert topo.nodes[1].memory_bytes is None  # no meminfo file

    def test_affinity_fallback_reads_proc_meminfo(self):
        with pytest.warns(NumaWarning, match="single node"):
            topo = numa.discover(
                sysfs_root="/nonexistent", affinity=frozenset((0,))
            )
        assert topo.source == "affinity"
        # /proc/meminfo exists on Linux; elsewhere the field stays None.
        if os.path.exists("/proc/meminfo"):
            assert topo.nodes[0].memory_bytes > 0


class TestAdaptiveReplicateThreshold:
    """``--numa auto`` revises the replicate cutoff from measured
    cross-node read traffic instead of trusting the fixed 4 MiB guess."""

    def _signal(self, reads, total_bytes):
        return {
            "cross_node_reads": reads,
            "cross_node_read_bytes": total_bytes,
        }

    def test_auto_mode_adapts_from_measured_traffic(self):
        numa.configure_numa(mode="auto", topology=two_node_topology())
        revised = numa.adapt_replicate_threshold(self._signal(4, 8 << 20))
        # 2 MiB average read split across 2 nodes -> 1 MiB cutoff.
        assert revised == 1 << 20
        stats = numa.numa_stats()
        assert stats["replicate_threshold_bytes"] == 1 << 20
        assert stats["replicate_threshold_adaptations"] == 1
        assert stats["replicate_threshold_signal"]["cross_node_reads"] == 4

    def test_clamped_to_floor_and_ceiling(self):
        numa.configure_numa(mode="auto", topology=two_node_topology())
        assert (
            numa.adapt_replicate_threshold(self._signal(1000, 1000))
            == numa.MIN_REPLICATE_THRESHOLD_BYTES
        )
        assert (
            numa.adapt_replicate_threshold(self._signal(1, 1 << 40))
            == numa.REPLICATE_THRESHOLD_BYTES
        )

    def test_explicit_threshold_is_pinned(self):
        numa.configure_numa(
            mode="auto", topology=two_node_topology(), replicate_threshold=1
        )
        assert numa.adapt_replicate_threshold(self._signal(4, 8 << 20)) is None
        assert numa.numa_stats()["replicate_threshold_bytes"] == 1
        assert numa.numa_stats()["replicate_threshold_overridden"]

    def test_inert_outside_auto_mode(self):
        numa.configure_numa(mode="replicate", topology=two_node_topology())
        assert numa.adapt_replicate_threshold(self._signal(4, 8 << 20)) is None

    def test_inert_without_signal_or_second_node(self):
        numa.configure_numa(mode="auto", topology=two_node_topology())
        assert numa.adapt_replicate_threshold(self._signal(0, 0)) is None
        numa.configure_numa(
            mode="auto",
            topology=NumaTopology(nodes=(NumaNode(0, (0,)),), source="test"),
        )
        assert numa.adapt_replicate_threshold(self._signal(4, 8 << 20)) is None

    def test_reset_restores_default(self):
        numa.configure_numa(mode="auto", topology=two_node_topology())
        numa.adapt_replicate_threshold(self._signal(4, 8 << 20))
        numa.reset_numa_state()
        stats = numa.numa_stats()
        assert (
            stats["replicate_threshold_bytes"]
            == numa.REPLICATE_THRESHOLD_BYTES
        )
        assert stats["replicate_threshold_adaptations"] == 0
        assert not stats["replicate_threshold_overridden"]
