"""Artifact cache: determinism contract, LRU behaviour, disk store."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.cluster import docker32
from repro.engines.registry import create_engine
from repro.graph.datasets import load_dataset
from repro.perf.cache import ArtifactCache, clear_cache, get_cache
from repro.sim.metrics import clone_job, pack_job, unpack_job
from repro.tasks.mssp import mssp_task

#: Small stand-in scale: web-st shrinks to ~70 vertices.
SCALE = 4000


@pytest.fixture(autouse=True)
def _pinned_cache_capacity():
    """These tests assert cache *semantics* (identity on a memory hit,
    eviction order), so they pin the process-wide cache's capacity —
    the CI leg that disables the memory cache via ``REPRO_CACHE_SIZE=0``
    must not turn them into vacuous failures."""
    cache = get_cache()
    saved = cache.capacity
    cache.capacity = 256
    yield
    cache.capacity = saved


class TestArtifactCache:
    def test_memory_hit_returns_same_object(self):
        cache = ArtifactCache(capacity=4)
        built = []

        def build():
            built.append(1)
            return {"value": 42}

        first = cache.get_or_build(("k", 1), build)
        second = cache.get_or_build(("k", 1), build)
        assert first is second
        assert built == [1]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = ArtifactCache(capacity=2)
        for i in range(3):
            cache.get_or_build(("k", i), lambda i=i: i)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # Oldest key was evicted; newest two remain.
        assert cache.get(("k", 0)) is None
        assert cache.get(("k", 2)) == 2

    def test_stats_merge(self):
        cache = ArtifactCache()
        cache.stats.merge({"hits": 3, "misses": 2, "disk_hits": 1})
        assert cache.stats.hits == 3
        assert cache.stats.misses == 2
        assert cache.stats.disk_hits == 1


class TestDatasetDeterminism:
    def test_cached_vs_uncached_graph_identical(self):
        clear_cache()
        cached = load_dataset("web-st", scale=SCALE)
        again = load_dataset("web-st", scale=SCALE)
        fresh = load_dataset("web-st", scale=SCALE, cache=False)
        assert again is cached  # memory hit
        assert fresh is not cached  # independent build
        np.testing.assert_array_equal(fresh.indptr, cached.indptr)
        np.testing.assert_array_equal(fresh.indices, cached.indices)
        assert fresh.fingerprint == cached.fingerprint

    def test_disk_round_trip_bit_identical(self, tmp_path):
        clear_cache()
        original = load_dataset(
            "web-st", scale=SCALE, cache=False, cache_dir=str(tmp_path)
        )
        loaded = load_dataset(
            "web-st", scale=SCALE, cache=False, cache_dir=str(tmp_path)
        )
        assert get_cache().stats.disk_hits >= 1
        np.testing.assert_array_equal(loaded.indptr, original.indptr)
        np.testing.assert_array_equal(loaded.indices, original.indices)
        assert loaded.fingerprint == original.fingerprint


class TestRunCache:
    @pytest.fixture
    def setting(self):
        clear_cache()
        graph = load_dataset("web-st", scale=SCALE)
        engine = create_engine("pregel+", docker32(scale=SCALE))
        return graph, engine

    def test_cached_rerun_identical(self, setting):
        graph, engine = setting
        task = mssp_task(graph, 8.0)
        first = engine.run_job(task, [4.0, 4.0], seed=11)
        second = engine.run_job(task, [4.0, 4.0], seed=11)
        assert second is not first
        assert dataclasses.asdict(second) == dataclasses.asdict(first)

    def test_clone_job_is_independent(self, setting):
        graph, engine = setting
        job = engine.run_job(mssp_task(graph, 8.0), [8.0], seed=5)
        clone = clone_job(job)
        assert dataclasses.asdict(clone) == dataclasses.asdict(job)
        clone.batches[0].rounds[0].seconds = -1.0
        clone.extras["poison"] = 1.0
        assert job.batches[0].rounds[0].seconds != -1.0
        assert "poison" not in job.extras

    def test_pack_unpack_round_trip(self, setting):
        graph, engine = setting
        job = engine.run_job(mssp_task(graph, 8.0), [4.0, 4.0], seed=11)
        rebuilt = unpack_job(pack_job(job))
        assert dataclasses.asdict(rebuilt) == dataclasses.asdict(job)

    def test_run_persists_to_disk(self, setting, tmp_path):
        graph, engine = setting
        cache = get_cache()
        old_dir = cache.directory
        cache.directory = str(tmp_path)
        try:
            task = mssp_task(graph, 8.0)
            first = engine.run_job(task, [8.0], seed=2)
            assert list(tmp_path.glob("run-*.npz"))
            clear_cache()  # drop memory; force the disk path
            second = engine.run_job(task, [8.0], seed=2)
            assert cache.stats.disk_hits >= 1
            assert dataclasses.asdict(second) == dataclasses.asdict(first)
        finally:
            cache.directory = old_dir
