"""Differential determinism suite: perf knobs must never change results.

Every performance layer in :mod:`repro.perf` — worker pools, the
artifact cache, shared-memory graphs, NUMA placement — promises the
same contract: it changes *when and where* work runs, never what it
computes. This suite runs the same experiments under each knob's
settings and asserts the outputs are byte-identical:

* ``--jobs 1`` vs ``--jobs N`` (``REPRO_TEST_JOBS``, default 2);
* a cold artifact cache vs a warm one (memory and disk);
* shared-memory graph transport on vs off;
* ``--numa auto`` (with an injected multi-node topology, so pinning
  and replicas actually engage even on a single-node host) vs
  ``--numa off``;
* per-round metric streams across serial and forked sweeps;
* the online scheduler (``repro.sched``): the same seeded arrival
  stream must yield byte-identical service metrics — per-batch round
  traces included — under serial vs forked fan-out, cold vs warm
  caches, and every ``--numa`` mode.

"Byte-identical" is literal: rendered Markdown rows and
``json.dumps``-serialised metric streams are compared as strings, so
even a float's last bit flipping fails the suite.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import cluster_by_name
from repro.engines.registry import ENGINE_NAMES
from repro.experiments.base import ExperimentConfig
from repro.experiments.common import sweep_batches
from repro.experiments.runner import run_all, run_experiment
from repro.graph.datasets import load_dataset
from repro.perf import kernel_pool, numa
from repro.perf.cache import clear_cache, configure_cache, get_cache
from repro.tasks.base import make_task

SCALE = 4000
JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))
IDS = ["fig2", "fig8"]
CONFIG = dict(scale=SCALE, quick=True)


@pytest.fixture(autouse=True)
def _isolated_perf_state():
    """Fresh cache and NUMA state per test; restore the cache config."""
    cache = get_cache()
    directory, capacity = cache.directory, cache.capacity
    configure_cache(capacity=256)
    clear_cache()
    numa.reset_numa_state()
    kernel_pool.reset_kernel_pool()
    yield
    cache.directory, cache.capacity = directory, capacity
    clear_cache()
    numa.reset_numa_state()
    kernel_pool.reset_kernel_pool()


def _markdown(results):
    return "\n".join(result.to_markdown() for result in results)


def _run(jobs, only=IDS):
    clear_cache()
    config = ExperimentConfig(jobs=jobs, **CONFIG)
    return _markdown(run_all(config, only=only, jobs=jobs))


def two_node_topology():
    cpus = tuple(sorted(os.sched_getaffinity(0)))
    return numa.NumaTopology(
        nodes=(numa.NumaNode(0, cpus), numa.NumaNode(1, cpus)),
        source="test",
    )


class TestJobsInvariance:
    def test_serial_vs_pool(self):
        assert _run(jobs=1) == _run(jobs=JOBS)


class TestCacheInvariance:
    def test_cold_vs_warm_memory_cache(self):
        config = ExperimentConfig(jobs=1, **CONFIG)
        clear_cache()
        cold = run_experiment("fig8", config).to_markdown()
        warm = run_experiment("fig8", config).to_markdown()
        assert get_cache().stats.hits > 0
        assert cold == warm

    def test_cold_vs_warm_disk_cache(self, tmp_path):
        configure_cache(directory=str(tmp_path))
        config = ExperimentConfig(jobs=1, **CONFIG)
        clear_cache()
        cold = run_experiment("fig8", config).to_markdown()
        clear_cache()  # drop memory so the disk store must serve
        warm = run_experiment("fig8", config).to_markdown()
        assert get_cache().stats.disk_hits > 0
        assert cold == warm


class TestShmInvariance:
    def test_shared_graphs_on_vs_off(self, monkeypatch):
        with_shm = _run(jobs=JOBS)
        from repro.experiments import runner

        monkeypatch.setattr(
            runner, "_shared_graph_pool_args", lambda *a, **k: {}
        )
        without_shm = _run(jobs=JOBS)
        assert with_shm == without_shm


class TestNumaInvariance:
    def test_auto_vs_off(self):
        numa.configure_numa(
            mode="auto", topology=two_node_topology(), replicate_threshold=1
        )
        pinned = _run(jobs=JOBS)
        numa.configure_numa(mode="off")
        unpinned = _run(jobs=JOBS)
        assert pinned == unpinned

    def test_replicate_vs_interleave(self):
        numa.configure_numa(mode="replicate", topology=two_node_topology())
        replicated = _run(jobs=JOBS)
        numa.configure_numa(mode="interleave")
        interleaved = _run(jobs=JOBS)
        assert replicated == interleaved


class TestMappedGraphInvariance:
    """Out-of-core graphs (memory-mapped CSR directories plus the
    block-streaming kernel variants they dispatch to) vs the in-RAM
    path: same Markdown rows, same metric streams, same graph bits."""

    @pytest.fixture(autouse=True)
    def _restore_out_of_core(self):
        from repro.graph import datasets
        from repro.graph.csr import configure_streaming

        yield
        datasets.configure_out_of_core(None, None)
        configure_streaming(None)

    def _mapped_run(self, jobs, directory):
        from repro.graph import datasets

        datasets.configure_out_of_core(force=True, directory=str(directory))
        try:
            return _run(jobs=jobs)
        finally:
            datasets.configure_out_of_core(None, None)

    def test_mapped_vs_in_ram_serial(self, tmp_path):
        assert self._mapped_run(1, tmp_path) == _run(jobs=1)

    def test_mapped_vs_in_ram_pool(self, tmp_path):
        assert self._mapped_run(JOBS, tmp_path) == _run(jobs=JOBS)

    def test_mapped_cold_vs_warm(self, tmp_path):
        cold = self._mapped_run(1, tmp_path)
        # Same directory: the second run reopens the CSR files on disk.
        warm = self._mapped_run(1, tmp_path)
        assert cold == warm

    def test_chunked_build_bits_at_scale_400(self, tmp_path):
        from repro.graph.datasets import PAPER_DATASETS

        profile = PAPER_DATASETS["twitter"]
        in_ram = profile.instantiate(scale=400)
        mapped = profile.instantiate_mapped(
            scale=400, directory=str(tmp_path / "twitter.csr")
        )
        import numpy as np

        assert (
            np.asarray(in_ram.indptr).tobytes()
            == np.asarray(mapped.indptr).tobytes()
        )
        assert (
            np.asarray(in_ram.indices).tobytes()
            == np.asarray(mapped.indices).tobytes()
        )
        assert in_ram.fingerprint == mapped.fingerprint

    def test_engine_outputs_at_scale_400(self, tmp_path):
        from repro.graph import datasets

        def metrics():
            graph = load_dataset("twitter", scale=400)
            cluster = cluster_by_name("galaxy-8", scale=400)
            job = MultiProcessingJob("pregel+", cluster)
            run = job.run(make_task("mssp", graph, 64.0),
                          num_batches=2, seed=5)
            return json.dumps(
                run.to_dict(include_rounds=True), sort_keys=True
            )

        in_ram = metrics()
        clear_cache()
        datasets.configure_out_of_core(force=True, directory=str(tmp_path))
        try:
            mapped = metrics()
        finally:
            datasets.configure_out_of_core(None, None)
        assert in_ram == mapped


class TestRoundStreamInvariance:
    """Per-round metric streams, not just rendered tables."""

    def _streams(self, jobs):
        clear_cache()
        graph = load_dataset("dblp", scale=SCALE)
        cluster = cluster_by_name("galaxy-8", scale=SCALE)
        runs = sweep_batches(
            "pregel+",
            cluster,
            lambda: make_task("mssp", graph, 64.0),
            batch_counts=[1, 2, 4],
            seed=7,
            jobs=jobs,
        )
        return json.dumps(
            [m.to_dict(include_rounds=True) for m in runs],
            sort_keys=True,
        )

    def test_serial_vs_forked_round_streams(self):
        assert self._streams(jobs=1) == self._streams(jobs=JOBS)

    def test_repeat_runs_are_stable(self):
        graph = load_dataset("dblp", scale=SCALE)
        cluster = cluster_by_name("galaxy-8", scale=SCALE)
        job = MultiProcessingJob("pregel+", cluster)
        task = make_task("bppr", graph, 256.0)
        first = job.run(task, num_batches=2, seed=11)
        second = job.run(make_task("bppr", graph, 256.0),
                         num_batches=2, seed=11)
        assert json.dumps(
            first.to_dict(include_rounds=True), sort_keys=True
        ) == json.dumps(
            second.to_dict(include_rounds=True), sort_keys=True
        )


class TestSuspendResumeInvariance:
    """Barrier suspend/resume must be invisible in the metrics: a batch
    frozen at superstep barriers and resumed — for every engine and
    every preemptable task kind — must serialize byte-identically
    (``pack_job``) to the same batch run straight through."""

    KINDS = ("bppr", "mssp", "bkhs")
    BATCH_UNITS = 16.0

    def _job(self, engine_name, kind, suspend):
        from repro.engines.base import BatchCheckpoint, EngineSession
        from repro.engines.registry import create_engine
        from repro.sim.metrics import JobMetrics, pack_job

        graph = load_dataset("dblp", scale=SCALE)
        cluster = cluster_by_name("galaxy-8", scale=SCALE)
        engine = create_engine(engine_name, cluster)
        session = EngineSession(
            engine, make_task(kind, graph, self.BATCH_UNITS), seed=7
        )

        def at_even_barriers(batch):
            return len(batch.rounds) % 2 == 0

        callback = at_even_barriers if suspend else None
        suspends = 0
        job = JobMetrics(
            engine=engine.name,
            task=kind,
            dataset=graph.name,
            cluster=cluster.name,
            num_machines=cluster.num_machines,
            total_workload=2 * self.BATCH_UNITS,
            batch_sizes=[self.BATCH_UNITS, self.BATCH_UNITS],
        )
        for _ in range(2):
            result = session.run_batch(
                self.BATCH_UNITS, should_suspend=callback
            )
            while isinstance(result, BatchCheckpoint):
                suspends += 1
                result = session.resume(should_suspend=callback)
            job.batches.append(result)
        return bytes(pack_job(job)["payload"]), suspends

    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    def test_every_engine_and_kind(self, engine_name):
        total_suspends = 0
        for kind in self.KINDS:
            interrupted, suspends = self._job(engine_name, kind, True)
            straight, zero = self._job(engine_name, kind, False)
            assert zero == 0
            assert interrupted == straight, (engine_name, kind)
            total_suspends += suspends
        assert total_suspends > 0, "no barrier ever fired; test is vacuous"


class TestSchedulerInvariance:
    """The online scheduler under the same knobs: one seeded stream
    must produce the same latency tables, batch logs, and per-round
    traces no matter where or how often it runs."""

    RATES = (0.4, 0.8)

    def _one_stream(self, rate):
        from repro.engines.registry import create_engine
        from repro.sched.arrivals import generate_arrivals
        from repro.sched.service import SchedulerService

        graph = load_dataset("dblp", scale=SCALE)
        cluster = cluster_by_name("galaxy-8", scale=SCALE)
        service = SchedulerService(
            create_engine("pregel+", cluster),
            graph,
            kinds=("bppr",),
            seed=13,
            record_rounds=True,
        )
        requests = generate_arrivals(
            rate, 12, seed=13, kinds=("bppr",), units_range=(8, 48)
        )
        metrics = service.run(requests, arrival_rate=rate)
        return json.dumps(
            metrics.to_dict(include_latencies=True), sort_keys=True
        )

    def _streams(self, jobs):
        from repro.perf.parallel import parallel_map_fork

        clear_cache()
        return parallel_map_fork(
            lambda i: self._one_stream(self.RATES[i]),
            len(self.RATES),
            jobs=jobs,
        )

    def test_serial_vs_forked_scheduler_streams(self):
        assert self._streams(jobs=1) == self._streams(jobs=JOBS)

    def test_cold_vs_warm_training_cache(self):
        clear_cache()
        cold = self._one_stream(0.4)
        warm = self._one_stream(0.4)  # training probes now cache-hit
        assert get_cache().stats.hits > 0
        assert cold == warm

    @pytest.mark.parametrize("mode", ["auto", "replicate", "interleave"])
    def test_every_numa_mode_matches_off(self, mode):
        numa.configure_numa(mode="off")
        baseline = self._streams(jobs=JOBS)
        numa.configure_numa(
            mode=mode, topology=two_node_topology(), replicate_threshold=1
        )
        assert self._streams(jobs=JOBS) == baseline


class TestMultiTenantServeInvariance:
    """Multi-tenant serving knobs (engine routing table, tenant quotas,
    the content-keyed result cache) must not move a byte of the serve
    digest when they cannot matter: the cache on a duplicate-free
    stream, a routing table naming the base engine, and quota mappings
    that never bind or merely permute."""

    def _serve(self, policy=None, base_engine="pregel+"):
        from repro.engines.registry import create_engine
        from repro.sched.arrivals import TaskRequest
        from repro.sched.service import SchedulerService

        graph = load_dataset("dblp", scale=SCALE)
        cluster = cluster_by_name("galaxy-8", scale=SCALE)
        service = SchedulerService(
            create_engine(base_engine, cluster),
            graph,
            kinds=("bppr",),
            seed=17,
            record_rounds=True,
            policy=policy,
        )
        tenants = ("acme", "globex")
        # Hand-rolled duplicate-free stream: every request has a unique
        # unit count, so no two share a content key.
        requests = [
            TaskRequest(i, "bppr", 8.0 + i, float(3 * i),
                        tenant=tenants[i % 2])
            for i in range(8)
        ]
        metrics = service.run(requests)
        return metrics.to_dict(include_latencies=True)

    def test_cache_on_vs_off_duplicate_free_stream(self):
        from repro.sched.policy import ServicePolicy

        off = self._serve()
        on = self._serve(ServicePolicy(result_cache=True))
        cache = on.pop("result_cache")
        # Every request missed and executed: the cache stored but never
        # served, so the schedule digest must be untouched.
        assert cache["hits"] == 0 and cache["coalesced"] == 0
        assert cache["misses"] == 8 and cache["stores"] == 8
        assert json.dumps(on, sort_keys=True) == json.dumps(
            off, sort_keys=True
        )

    def test_cache_hits_replay_exact_payload_bytes(self):
        from repro.engines.registry import create_engine
        from repro.sched.arrivals import TaskRequest
        from repro.sched.policy import ServicePolicy
        from repro.sched.service import SchedulerService

        graph = load_dataset("dblp", scale=SCALE)
        cluster = cluster_by_name("galaxy-8", scale=SCALE)

        def responses(requests):
            service = SchedulerService(
                create_engine("pregel+", cluster),
                graph,
                kinds=("bppr",),
                seed=17,
                policy=ServicePolicy(result_cache=True),
            )
            service.run(requests)
            return service.responses

        warm = responses(
            [
                TaskRequest(0, "bppr", 8.0, 0.0),
                TaskRequest(1, "bppr", 8.0, 1.0e6),  # pure cache hit
            ]
        )
        cold = responses([TaskRequest(5, "bppr", 8.0, 0.0)])
        assert warm[1] == warm[0] == cold[5]

    def test_route_to_base_engine_is_identity(self):
        from repro.sched.policy import ServicePolicy

        unrouted = self._serve()
        routed = self._serve(ServicePolicy(routes={"bppr": "pregel+"}))
        assert json.dumps(routed, sort_keys=True) == json.dumps(
            unrouted, sort_keys=True
        )

    def test_routed_kind_matches_native_base_engine(self):
        from repro.sched.policy import ServicePolicy

        native = self._serve(base_engine="graphlab(async)")
        routed = self._serve(
            ServicePolicy(routes={"bppr": "graphlab(async)"}),
            base_engine="pregel+",
        )
        # Only the service-level engine header may differ: every batch
        # ran on graphlab(async) either way.
        assert native.pop("engine") == "graphlab(async)"
        assert routed.pop("engine") == "pregel+"
        assert json.dumps(routed, sort_keys=True) == json.dumps(
            native, sort_keys=True
        )

    def test_quota_permutation_and_generous_quotas(self):
        from repro.sched.policy import ServicePolicy

        first = self._serve(
            ServicePolicy(tenant_quotas={"acme": 0.9, "globex": 0.8})
        )
        permuted = self._serve(
            ServicePolicy(tenant_quotas={"globex": 0.8, "acme": 0.9})
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            permuted, sort_keys=True
        )
        # Quotas generous enough never to bind must not change the
        # admission order — only the batch log's tenant attribution
        # (absent with quotas off) may differ.
        bare = self._serve()
        for entry in first["batches"]:
            entry.pop("tenants")
        assert json.dumps(first, sort_keys=True) == json.dumps(
            bare, sort_keys=True
        )


class TestCalibrationInvariance:
    """Online ask-tell calibration (``--calibrate`` and friends): the
    degenerate policy — calibration off, even worker shares, admit-all
    cache — must keep the serve digest byte-identical to the default,
    and a warm restart from persisted coefficients must reproduce the
    cold run's digest with zero probe runs."""

    def _serve(self, policy=None, kinds=("bppr",)):
        from repro.engines.registry import create_engine
        from repro.sched.arrivals import generate_arrivals
        from repro.sched.service import SchedulerService

        graph = load_dataset("dblp", scale=SCALE)
        cluster = cluster_by_name("galaxy-8", scale=SCALE)
        service = SchedulerService(
            create_engine("pregel+", cluster),
            graph,
            kinds=kinds,
            seed=13,
            record_rounds=True,
            policy=policy,
            task_params={"mssp": {"sample_limit": 16}},
        )
        requests = generate_arrivals(
            0.4, 12, seed=13, kinds=kinds, units_range=(8, 48)
        )
        metrics = service.run(requests, arrival_rate=0.4)
        return metrics.to_dict(include_latencies=True)

    def test_degenerate_policy_matches_default_byte_for_byte(self):
        from repro.sched.policy import ServicePolicy

        default = self._serve()
        clear_cache()
        degenerate = self._serve(
            ServicePolicy(
                calibrate=False,
                cost_shares=False,
                cache_min_seconds=None,
                tenant_cache_quotas=None,
            )
        )
        assert json.dumps(degenerate, sort_keys=True) == json.dumps(
            default, sort_keys=True
        )

    def test_warm_restart_reproduces_cold_digest(self, tmp_path):
        # Multi-kind on purpose: probe training prepares the kinds in
        # policy order while a warm restart prepares them in arrival
        # order, so any preparation-order dependence (e.g. two kinds
        # sharing one router prep) breaks this digest and only this
        # digest.
        from repro.sched.policy import ServicePolicy

        configure_cache(directory=str(tmp_path))
        kinds = ("bppr", "mssp")
        policy = ServicePolicy(calibrate=True)
        cold = self._serve(policy, kinds=kinds)
        cold_cal = cold.pop("calibration")
        assert cold_cal["training_runs"] > 0
        assert not cold_cal["warm_start"]
        clear_cache()  # drop memory so the disk store must serve
        warm = self._serve(policy, kinds=kinds)
        warm_cal = warm.pop("calibration")
        # Zero probe executions on restart: the coefficients and probe
        # samples came back from the artifact cache.
        assert warm_cal["training_runs"] == 0
        assert warm_cal["warm_start"]
        assert warm_cal["probe_seconds_saved"] > 0
        # Only the training provenance may differ — the scheduling
        # trajectory itself is reproduced byte-for-byte.
        assert json.dumps(warm, sort_keys=True) == json.dumps(
            cold, sort_keys=True
        )


class TestKernelShardInvariance:
    """Intra-task sharded kernels (``--kernel-workers``): the shard
    count changes where rounds run, never what they compute — every
    ``pack_job`` payload and rendered experiment row must stay
    byte-identical across shard counts 1/2/7, pool on/off, mapped
    graphs, and every ``--numa`` mode."""

    KINDS = ("bppr", "mssp", "bkhs")
    WORKER_COUNTS = (1, 2, 7)
    BATCH_UNITS = 16.0

    def _job(self, kind, workers):
        from repro.engines.base import EngineSession
        from repro.engines.registry import create_engine
        from repro.sim.metrics import JobMetrics, pack_job

        clear_cache()
        kernel_pool.reset_kernel_pool()
        if workers > 1:
            kernel_pool.configure_kernel_workers(
                workers, min_shard_candidates=1
            )
        graph = load_dataset("dblp", scale=SCALE)
        cluster = cluster_by_name("galaxy-8", scale=SCALE)
        engine = create_engine("pregel+", cluster)
        session = EngineSession(
            engine, make_task(kind, graph, self.BATCH_UNITS), seed=7
        )
        job = JobMetrics(
            engine=engine.name,
            task=kind,
            dataset=graph.name,
            cluster=cluster.name,
            num_machines=cluster.num_machines,
            total_workload=2 * self.BATCH_UNITS,
            batch_sizes=[self.BATCH_UNITS, self.BATCH_UNITS],
        )
        for _ in range(2):
            job.batches.append(session.run_batch(self.BATCH_UNITS))
        dispatches = kernel_pool.kernel_pool_stats()["sharded_dispatches"]
        kernel_pool.reset_kernel_pool()
        return bytes(pack_job(job)["payload"]), dispatches

    @pytest.mark.parametrize("kind", KINDS)
    def test_pack_job_across_shard_counts(self, kind):
        serial, _ = self._job(kind, 1)
        for workers in self.WORKER_COUNTS[1:]:
            sharded, dispatches = self._job(kind, workers)
            assert dispatches > 0, (kind, workers, "sharding never ran")
            assert sharded == serial, (kind, workers)

    def test_experiments_across_shard_counts(self):
        baseline = _run(jobs=1)
        for workers in self.WORKER_COUNTS[1:]:
            kernel_pool.configure_kernel_workers(
                workers, min_shard_candidates=1
            )
            assert _run(jobs=1) == baseline, workers

    def test_pool_off_matches_inline_shards(self):
        """The same shard plan run inline (pool off) and on the pool."""
        import numpy as np

        from repro.graph.csr import segment_min_sharded, segment_sum_sharded

        rng = np.random.default_rng(3)
        rows = rng.integers(0, 6, size=503)
        cols = rng.integers(0, 41, size=503)
        values = rng.random(503)
        counts = np.ones(503)
        inline_min = segment_min_sharded(rows, cols, values, 41, 5)
        inline_sum = segment_sum_sharded(rows, cols, counts, 41, 5)
        kernel_pool.configure_kernel_workers(5, min_shard_candidates=1)
        pooled_min = segment_min_sharded(rows, cols, values, 41, 5)
        pooled_sum = segment_sum_sharded(rows, cols, counts, 41, 5)
        for inline, pooled in ((inline_min, pooled_min),
                               (inline_sum, pooled_sum)):
            for a, b in zip(inline, pooled):
                assert a.tobytes() == b.tobytes()

    def test_mapped_graphs_with_shards(self, tmp_path):
        from repro.graph import datasets

        baseline = _run(jobs=1)
        kernel_pool.configure_kernel_workers(7, min_shard_candidates=1)
        datasets.configure_out_of_core(force=True, directory=str(tmp_path))
        try:
            mapped_sharded = _run(jobs=1)
        finally:
            datasets.configure_out_of_core(None, None)
        assert mapped_sharded == baseline

    @pytest.mark.parametrize("mode", ["auto", "replicate", "interleave"])
    def test_every_numa_mode_matches_off(self, mode):
        numa.configure_numa(mode="off")
        kernel_pool.configure_kernel_workers(2, min_shard_candidates=1)
        baseline = _run(jobs=1)
        kernel_pool.reset_kernel_pool()
        numa.configure_numa(
            mode=mode, topology=two_node_topology(), replicate_threshold=1
        )
        kernel_pool.configure_kernel_workers(2, min_shard_candidates=1)
        assert _run(jobs=1) == baseline


class TestShardSplitProperties:
    """Hypothesis: the sharded segment reductions are shard-split
    invariant — any shard count folds to the exact bytes of the
    monolithic reduction (min always; sum in the all-ones /
    integer-valued exactness regime every call site keeps)."""

    @staticmethod
    def _compare(fn_mono, fn_sharded, rows, cols, values, num_cols, shards):
        import numpy as np

        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        mono = fn_mono(rows, cols, values, num_cols)
        sharded = fn_sharded(rows, cols, values, num_cols, shards)
        for a, b in zip(mono, sharded):
            assert np.asarray(a).tobytes() == np.asarray(b).tobytes()

    def test_segment_min_shard_split_invariance(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.graph.csr import segment_min, segment_min_sharded

        @settings(max_examples=60, deadline=None)
        @given(data=st.data())
        def run(data):
            num_rows = data.draw(st.integers(1, 5))
            num_cols = data.draw(st.integers(1, 9))
            size = data.draw(st.integers(0, 80))
            rows = data.draw(
                st.lists(st.integers(0, num_rows - 1),
                         min_size=size, max_size=size)
            )
            cols = data.draw(
                st.lists(st.integers(0, num_cols - 1),
                         min_size=size, max_size=size)
            )
            values = data.draw(
                st.lists(
                    st.floats(allow_nan=False, width=64),
                    min_size=size, max_size=size,
                )
            )
            shards = data.draw(st.integers(1, 9))
            self._compare(
                segment_min, segment_min_sharded,
                rows, cols, values, num_cols, shards,
            )

        run()

    def test_segment_sum_shard_split_invariance(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.graph.csr import segment_sum, segment_sum_sharded

        @settings(max_examples=60, deadline=None)
        @given(data=st.data())
        def run(data):
            num_rows = data.draw(st.integers(1, 5))
            num_cols = data.draw(st.integers(1, 9))
            size = data.draw(st.integers(0, 80))
            rows = data.draw(
                st.lists(st.integers(0, num_rows - 1),
                         min_size=size, max_size=size)
            )
            cols = data.draw(
                st.lists(st.integers(0, num_cols - 1),
                         min_size=size, max_size=size)
            )
            # The exactness regime: integer-valued float64 counts (the
            # walk tallies every production call site passes).
            values = data.draw(
                st.lists(st.integers(-(2 ** 40), 2 ** 40),
                         min_size=size, max_size=size)
            )
            shards = data.draw(st.integers(1, 9))
            self._compare(
                segment_sum, segment_sum_sharded,
                rows, cols, values, num_cols, shards,
            )

        run()
