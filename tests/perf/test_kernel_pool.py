"""Unit tests for :mod:`repro.perf.kernel_pool` and the state-spill
allocator it feeds (``alloc_state_matrix``)."""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.csr import configure_streaming
from repro.perf import kernel_pool, memory


@pytest.fixture(autouse=True)
def _fresh_pool_state():
    kernel_pool.reset_kernel_pool()
    memory.reset_memory_state()
    yield
    kernel_pool.reset_kernel_pool()
    memory.reset_memory_state()
    configure_streaming(None)


class TestConfiguration:
    def test_defaults_are_serial(self):
        assert kernel_pool.kernel_workers() == 0
        assert kernel_pool.get_pool() is None

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            kernel_pool.configure_kernel_workers(-1)

    def test_zero_min_shard_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            kernel_pool.configure_kernel_workers(2, min_shard_candidates=0)

    def test_configure_returns_count(self):
        assert kernel_pool.configure_kernel_workers(3) == 3
        assert kernel_pool.kernel_workers() == 3

    def test_reconfigure_rebuilds_pool(self):
        kernel_pool.configure_kernel_workers(2)
        first = kernel_pool.get_pool()
        kernel_pool.configure_kernel_workers(4)
        second = kernel_pool.get_pool()
        assert first is not second
        assert second.workers == 4

    def test_reset_restores_defaults(self):
        kernel_pool.configure_kernel_workers(5, min_shard_candidates=1)
        kernel_pool.reset_kernel_pool()
        assert kernel_pool.kernel_workers() == 0
        assert (
            kernel_pool.min_shard_candidates()
            == kernel_pool.DEFAULT_MIN_SHARD_CANDIDATES
        )
        stats = kernel_pool.kernel_pool_stats()
        assert stats["sharded_dispatches"] == 0


class TestChooseShards:
    def test_serial_when_pool_off(self):
        assert kernel_pool.choose_shards(1 << 30) == 1

    def test_capped_by_worker_count(self):
        kernel_pool.configure_kernel_workers(4, min_shard_candidates=1)
        assert kernel_pool.choose_shards(1 << 20) == 4

    def test_small_rounds_stay_serial(self):
        kernel_pool.configure_kernel_workers(4)
        floor = kernel_pool.min_shard_candidates()
        assert kernel_pool.choose_shards(floor - 1) == 1
        assert (
            kernel_pool.kernel_pool_stats()["serial_fallbacks"] == 1
        )

    def test_crossover_scales_shard_count(self):
        kernel_pool.configure_kernel_workers(8, min_shard_candidates=100)
        assert kernel_pool.choose_shards(250) == 2
        assert kernel_pool.choose_shards(799) == 7


class TestShardBounds:
    def test_partitions_index_space_in_order(self):
        weights = np.ones(10, dtype=np.int64)
        ranges = kernel_pool.shard_bounds(weights, 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 10
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_weight_balanced_split(self):
        # One heavy entry up front: the first shard should stop there.
        weights = np.array([100, 1, 1, 1, 1, 1], dtype=np.int64)
        ranges = kernel_pool.shard_bounds(weights, 2)
        lo, hi = ranges[0]
        assert (lo, hi) == (0, 1)
        assert ranges[1] == (1, 6)

    def test_zero_weights_fall_back_to_even_split(self):
        weights = np.zeros(9, dtype=np.int64)
        ranges = kernel_pool.shard_bounds(weights, 3)
        assert ranges == [(0, 3), (3, 6), (6, 9)]

    def test_single_shard_and_empty(self):
        assert kernel_pool.shard_bounds(np.ones(5), 1) == [(0, 5)]
        assert kernel_pool.shard_bounds(np.empty(0), 4) == [(0, 0)]


class TestPoolExecution:
    def test_run_preserves_input_order(self):
        kernel_pool.configure_kernel_workers(3)
        results = kernel_pool.run_sharded(
            [lambda k=k: k * k for k in range(7)]
        )
        assert results == [k * k for k in range(7)]

    def test_run_inline_when_pool_off(self):
        results = kernel_pool.run_sharded([lambda: 1, lambda: 2])
        assert results == [1, 2]
        assert kernel_pool.kernel_pool_stats()["sharded_dispatches"] == 0

    def test_first_exception_propagates_after_all_settle(self):
        kernel_pool.configure_kernel_workers(2)
        settled = []

        def ok(k):
            settled.append(k)
            return k

        def boom():
            raise ValueError("shard failed")

        with pytest.raises(ValueError, match="shard failed"):
            kernel_pool.get_pool().run(
                [lambda: ok(0), boom, lambda: ok(2)]
            )
        assert settled == [0, 2]

    def test_submit_returns_future(self):
        kernel_pool.configure_kernel_workers(2)
        future = kernel_pool.get_pool().submit(lambda: 41 + 1)
        assert future.result() == 42

    def test_stats_count_dispatches_and_shards(self):
        kernel_pool.configure_kernel_workers(2)
        kernel_pool.run_sharded([lambda: None] * 5)
        kernel_pool.run_sharded([lambda: None] * 3)
        stats = kernel_pool.kernel_pool_stats()
        assert stats["sharded_dispatches"] == 2
        assert stats["shards_executed"] == 8
        assert stats["workers"] == 2


class TestAllocStateMatrix:
    def test_in_ram_without_budget(self):
        from repro.tasks.base import alloc_state_matrix

        arr = alloc_state_matrix((3, 4), np.float64, np.inf)
        assert not isinstance(arr, np.memmap)
        assert np.all(np.isinf(arr))

    def test_spills_over_budget_and_counts(self):
        from repro.tasks.base import alloc_state_matrix

        configure_streaming(max_ram_bytes=1)
        arr = alloc_state_matrix((8, 16), np.float64, np.inf)
        assert isinstance(arr, np.memmap)
        assert np.all(np.isinf(arr))
        spills = memory.memory_stats()["state_spills"]
        assert spills["count"] == 1
        assert spills["bytes"] == 8 * 16 * 8

    def test_spilled_matches_in_ram_bytes(self):
        from repro.tasks.base import alloc_state_matrix

        in_ram = alloc_state_matrix((5, 7), np.float64, np.inf)
        configure_streaming(max_ram_bytes=1)
        spilled = alloc_state_matrix((5, 7), np.float64, np.inf)
        rng = np.random.default_rng(11)
        updates = rng.random((5, 7))
        in_ram[:] = np.minimum(in_ram, updates)
        spilled[:] = np.minimum(spilled, updates)
        assert in_ram.tobytes() == np.asarray(spilled).tobytes()

    def test_scratch_dir_removed_when_collected(self):
        import os

        from repro.tasks.base import alloc_state_matrix

        configure_streaming(max_ram_bytes=1)
        arr = alloc_state_matrix((4, 4), np.bool_)
        scratch = os.path.dirname(arr.filename)
        assert os.path.isdir(scratch)
        del arr
        gc.collect()
        assert not os.path.isdir(scratch)


class TestParallelBuild:
    def test_parallel_build_matches_serial_bytes(self, tmp_path):
        from repro.graph.datasets import PAPER_DATASETS

        profile = PAPER_DATASETS["twitter"]
        serial = profile.instantiate_mapped(
            scale=400, directory=str(tmp_path / "serial.csr")
        )
        kernel_pool.configure_kernel_workers(3)
        parallel = profile.instantiate_mapped(
            scale=400, directory=str(tmp_path / "parallel.csr")
        )
        assert (
            np.asarray(serial.indptr).tobytes()
            == np.asarray(parallel.indptr).tobytes()
        )
        assert (
            np.asarray(serial.indices).tobytes()
            == np.asarray(parallel.indices).tobytes()
        )
        assert serial.fingerprint == parallel.fingerprint
