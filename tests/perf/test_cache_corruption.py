"""On-disk cache hardening: checksums, quarantine, transparent rebuild."""

import glob
import os

import numpy as np
import pytest

from repro.perf.cache import ArtifactCache, ArraySerializer, CHECKSUM_KEY

SERIALIZER = ArraySerializer(
    pack=lambda v: {"data": np.asarray(v)},
    unpack=lambda arrays: arrays["data"].copy(),
)

KEY = ("artifact", 1)


def _build_counted(calls):
    def build():
        calls.append(1)
        return np.arange(128, dtype=np.int64)

    return build


def _artifact_path(directory):
    paths = glob.glob(os.path.join(directory, "*.npz"))
    assert len(paths) == 1
    return paths[0]


class TestCorruptionRecovery:
    def test_truncated_artifact_quarantined_and_recomputed(self, tmp_path):
        calls = []
        build = _build_counted(calls)
        first = ArtifactCache(directory=str(tmp_path))
        value = first.get_or_build(KEY, build, serializer=SERIALIZER)
        path = _artifact_path(str(tmp_path))

        with open(path, "rb") as fh:
            payload = fh.read()
        with open(path, "wb") as fh:
            fh.write(payload[: len(payload) // 2])

        fresh = ArtifactCache(directory=str(tmp_path))
        rebuilt = fresh.get_or_build(KEY, build, serializer=SERIALIZER)
        assert np.array_equal(value, rebuilt)
        assert len(calls) == 2  # recomputed, not raised
        assert fresh.stats.corruptions == 1
        assert os.path.exists(path + ".corrupt")
        assert os.path.exists(path)  # fresh copy re-persisted

    def test_garbled_bytes_detected_by_checksum_or_zip(self, tmp_path):
        calls = []
        build = _build_counted(calls)
        first = ArtifactCache(directory=str(tmp_path))
        value = first.get_or_build(KEY, build, serializer=SERIALIZER)
        path = _artifact_path(str(tmp_path))

        payload = bytearray(open(path, "rb").read())
        for offset in range(64, 96):
            payload[offset] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(payload))

        fresh = ArtifactCache(directory=str(tmp_path))
        rebuilt = fresh.get_or_build(KEY, build, serializer=SERIALIZER)
        assert np.array_equal(value, rebuilt)
        assert fresh.stats.corruptions == 1

    def test_legacy_artifact_without_checksum_accepted(self, tmp_path):
        calls = []
        build = _build_counted(calls)
        first = ArtifactCache(directory=str(tmp_path))
        first.get_or_build(KEY, build, serializer=SERIALIZER)
        path = _artifact_path(str(tmp_path))
        np.savez_compressed(path, data=np.arange(128, dtype=np.int64))

        fresh = ArtifactCache(directory=str(tmp_path))
        value = fresh.get_or_build(KEY, build, serializer=SERIALIZER)
        assert np.array_equal(value, np.arange(128))
        assert fresh.stats.corruptions == 0
        assert fresh.stats.disk_hits == 1
        assert len(calls) == 1  # the legacy file was trusted

    def test_stored_artifacts_carry_checksum(self, tmp_path):
        cache = ArtifactCache(directory=str(tmp_path))
        cache.get_or_build(KEY, lambda: np.ones(8), serializer=SERIALIZER)
        with np.load(_artifact_path(str(tmp_path))) as data:
            assert CHECKSUM_KEY in data.files

    def test_stats_round_trip_corruptions(self):
        cache = ArtifactCache()
        cache.stats.corruptions = 3
        snapshot = cache.stats.to_dict()
        assert snapshot["corruptions"] == 3
        other = ArtifactCache()
        other.stats.merge(snapshot)
        assert other.stats.corruptions == 3
