"""Worker supervision: backoff policy, watchdog, and chaos counters.

The pool's crash handling is covered by ``test_parallel_faults``; this
module exercises the supervision layer added on top of it — the seeded
exponential :class:`~repro.perf.backoff.BackoffPolicy`, the hung-worker
watchdog, the chaos observer seam, and the counters that land in
``BENCH_perf.json``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import ConfigurationError
from repro.perf import parallel
from repro.perf.backoff import DEFAULT_BACKOFF, BackoffPolicy
from repro.perf.parallel import (
    configure_retries,
    configure_watchdog,
    parallel_map,
    reset_supervision,
    set_pool_observer,
    supervision_stats,
)
from repro.rng import make_rng


@pytest.fixture(autouse=True)
def _restore_supervision_state():
    """Snapshot and restore every module-level supervision knob."""
    retry = dict(parallel._RETRY)
    rng = parallel._RETRY_RNG
    heartbeat = parallel._WATCHDOG["heartbeat_seconds"]
    observer = set_pool_observer(None)
    reset_supervision()
    yield
    parallel._RETRY.update(retry)
    parallel._RETRY_RNG = rng
    configure_watchdog(heartbeat)
    set_pool_observer(observer)
    reset_supervision()


class TestBackoffPolicy:
    def test_exponential_schedule(self):
        policy = BackoffPolicy(base_seconds=0.1, factor=2.0, jitter=0.0)
        assert [policy.delay_seconds(r) for r in (1, 2, 3, 4)] == [
            0.1,
            0.2,
            0.4,
            0.8,
        ]

    def test_cap(self):
        policy = BackoffPolicy(
            base_seconds=1.0, factor=10.0, max_seconds=5.0, jitter=0.0
        )
        assert policy.delay_seconds(4) == 5.0

    def test_seeded_jitter_is_deterministic(self):
        policy = BackoffPolicy(base_seconds=0.1, factor=2.0, jitter=0.5)
        first = [
            policy.delay_seconds(r, make_rng(7, label="perf/backoff"))
            for r in (1, 2, 3)
        ]
        second = [
            policy.delay_seconds(r, make_rng(7, label="perf/backoff"))
            for r in (1, 2, 3)
        ]
        assert first == second
        assert first != [0.1, 0.2, 0.4]  # jitter actually moved them
        for delay, base in zip(first, (0.1, 0.2, 0.4)):
            assert 0.5 * base <= delay <= 1.5 * base

    def test_no_rng_means_exact_schedule_even_with_jitter(self):
        policy = BackoffPolicy(base_seconds=0.1, factor=2.0, jitter=0.5)
        assert policy.delay_seconds(2, None) == 0.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(max_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy().delay_seconds(0)

    def test_default_matches_legacy_pool_schedule(self):
        assert DEFAULT_BACKOFF.base_seconds == 0.05
        assert DEFAULT_BACKOFF.factor == 2.0
        assert DEFAULT_BACKOFF.jitter == 0.0


def _crash_once(x, flag_path):
    if x == 2 and not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return x + 100


def _crash_twice(x, flag_dir):
    """Item 2 SIGKILLs its worker on its first two executions."""
    if x == 2:
        crashes = len(os.listdir(flag_dir))
        if crashes < 2:
            with open(os.path.join(flag_dir, f"crash{crashes}"), "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
    return x + 100


def _hang_once(x, flag_path):
    if x == 1 and not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        time.sleep(60.0)
    return x * 7


class TestSupervisionCounters:
    def test_clean_run_counts_nothing(self):
        assert parallel_map(_crash_once, [(0, "/nonexistent-flag")], jobs=1) \
            == [100]
        stats = supervision_stats()
        assert stats["pool_crashes"] == 0
        assert stats["items_recovered"] == 0
        assert stats["items_lost"] == 0

    def test_crash_recovery_is_counted(self, tmp_path):
        flag = str(tmp_path / "crashed")
        configure_retries(max_retries=2, backoff_seconds=0.0)
        args = [(i, flag) for i in range(4)]
        assert parallel_map(_crash_once, args, jobs=2) == [
            100,
            101,
            102,
            103,
        ]
        stats = supervision_stats()
        assert stats["pool_crashes"] >= 1
        assert stats["isolated_attempts"] >= 1
        assert stats["items_recovered"] >= 1
        assert stats["items_lost"] == 0

    def test_seeded_backoff_accumulates_jittered_sleep(self, tmp_path):
        flag_dir = str(tmp_path)
        configure_retries(
            max_retries=3, backoff_seconds=0.01, seed=11, jitter=0.5
        )
        # Item 2 dies in the shared pool AND on its first isolated
        # attempt, so the second isolated attempt must sleep one
        # jittered backoff delay first — drawn from the seeded
        # ``perf/backoff`` stream, hence exactly reproducible.
        assert parallel_map(
            _crash_twice, [(i, flag_dir) for i in range(4)], jobs=2
        ) == [100, 101, 102, 103]
        stats = supervision_stats()
        assert stats["retries"] >= 1
        expected = BackoffPolicy(
            base_seconds=0.01, factor=2.0, jitter=0.5
        ).delay_seconds(1, make_rng(11, label="perf/backoff"))
        assert stats["backoff_seconds_total"] == pytest.approx(expected)

    def test_reset_zeroes_counters(self, tmp_path):
        flag = str(tmp_path / "crashed")
        configure_retries(max_retries=2, backoff_seconds=0.0)
        parallel_map(_crash_once, [(i, flag) for i in range(4)], jobs=2)
        assert supervision_stats()["pool_crashes"] >= 1
        reset_supervision()
        assert supervision_stats()["pool_crashes"] == 0


class TestWatchdog:
    def test_validation_and_disarm(self):
        with pytest.raises(ConfigurationError):
            configure_watchdog(0.0)
        with pytest.raises(ConfigurationError):
            configure_watchdog(-1.0)
        assert configure_watchdog(2.5) == 2.5
        assert configure_watchdog(None) is None

    def test_hung_worker_is_killed_and_item_recovers(self, tmp_path):
        flag = str(tmp_path / "hung")
        configure_retries(max_retries=2, backoff_seconds=0.0)
        configure_watchdog(0.5)
        args = [(i, flag) for i in range(3)]
        assert parallel_map(_hang_once, args, jobs=2) == [0, 7, 14]
        assert os.path.exists(flag)  # the hang really happened
        stats = supervision_stats()
        assert stats["watchdog_stalls"] >= 1
        assert stats["items_recovered"] >= 1
        assert stats["items_lost"] == 0

    def test_disarmed_watchdog_keeps_legacy_path(self):
        configure_watchdog(None)
        assert parallel_map(
            _crash_once, [(i, "/nonexistent-flag") for i in range(3)], jobs=2
        ) == [100, 101, 102]
        assert supervision_stats()["watchdog_stalls"] == 0


class _Killer:
    """Chaos observer: SIGKILL one worker shortly after submit."""

    def __init__(self):
        self.kills = 0

    def __call__(self, executor):
        import threading

        pids = sorted(executor._processes)
        if not pids or self.kills:
            return
        victim = pids[0]

        def strike():
            time.sleep(0.2)
            try:
                os.kill(victim, signal.SIGKILL)
                self.kills += 1
            except OSError:
                pass

        threading.Thread(target=strike, daemon=True).start()


def _slow_square(x):
    time.sleep(0.5)
    return x * x


class TestPoolObserver:
    def test_observer_sees_executor_and_chaos_recovers(self):
        configure_retries(max_retries=2, backoff_seconds=0.0)
        killer = _Killer()
        set_pool_observer(killer)
        try:
            result = parallel_map(_slow_square, [(i,) for i in range(4)],
                                  jobs=2)
        finally:
            set_pool_observer(None)
        assert result == [0, 1, 4, 9]
        assert killer.kills == 1
        stats = supervision_stats()
        assert stats["pool_crashes"] >= 1
        assert stats["items_recovered"] >= 1
        assert stats["items_lost"] == 0

    def test_set_pool_observer_returns_previous(self):
        sentinel = object()
        assert set_pool_observer(sentinel) is None
        assert set_pool_observer(None) is sentinel
