"""Tests for the shared-memory graph transport (:mod:`repro.perf.shm`)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graph.generators import chain, chung_lu
from repro.perf import shm


@pytest.fixture
def registry():
    reg = shm.SharedGraphRegistry()
    yield reg
    reg.shutdown()


def _attachable(reg, graph, key=("dataset", "x", 400, None)):
    handle = reg.export(key, graph)
    if handle is None:
        pytest.skip("shared memory unavailable on this platform")
    return handle


class TestExport:
    def test_roundtrip_is_bit_identical(self, registry):
        graph = chung_lu(300, avg_degree=5.0, seed=3, name="shm-test")
        handle = _attachable(registry, graph)
        attached = registry.attach(handle)
        assert attached is not None
        np.testing.assert_array_equal(attached.indptr, graph.indptr)
        np.testing.assert_array_equal(attached.indices, graph.indices)
        assert attached.directed == graph.directed
        assert attached.name == graph.name
        assert attached.fingerprint == graph.fingerprint
        assert not attached.indptr.flags.writeable

    def test_weighted_graph_roundtrip(self, registry):
        graph = chain(10, weight=2.5)
        handle = _attachable(registry, graph)
        attached = registry.attach(handle)
        np.testing.assert_array_equal(attached.weights, graph.weights)

    def test_same_fingerprint_ships_once(self, registry):
        graph = chain(50)
        first = _attachable(registry, graph, key=("dataset", "a", 1, None))
        second = registry.export(("dataset", "b", 1, None), graph)
        assert second is first
        assert registry.counters["exported_graphs"] == 1
        assert registry.counters["export_reuses"] == 1

    def test_handle_is_picklable(self, registry):
        handle = _attachable(registry, chain(20))
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle


class TestAttach:
    def test_attach_caches_per_fingerprint(self, registry):
        handle = _attachable(registry, chain(40))
        first = registry.attach(handle)
        second = registry.attach(handle)
        assert second is first
        assert registry.counters["attaches"] == 1
        assert registry.counters["attach_reuses"] == 1

    def test_lookup_miss_returns_none(self, registry):
        assert registry.lookup(("dataset", "nope", 1, None)) is None

    def test_install_then_lookup(self, registry):
        key = ("dataset", "c", 1, None)
        graph = chain(30)
        _attachable(registry, graph, key=key)
        worker = shm.SharedGraphRegistry()
        worker.install(registry.handle_table())
        attached = worker.lookup(key)
        assert attached is not None
        np.testing.assert_array_equal(attached.indices, graph.indices)


class TestModuleSingleton:
    def test_lookup_shared_fast_path_without_table(self):
        # No table installed -> one dict probe, no graph.
        assert shm.lookup_shared(("dataset", "dblp", 400, None)) is None

    def test_load_dataset_prefers_installed_table(self):
        from repro.graph.datasets import load_dataset

        graph = load_dataset("dblp", scale=4000)
        key = ("dataset", "dblp", 4000, None)
        registry = shm.get_registry()
        if registry.export(key, graph) is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            shared = load_dataset("dblp", scale=4000)
            assert shared.fingerprint == graph.fingerprint
            assert shm.shm_stats()["attaches"] >= 1
        finally:
            registry.shutdown()
            registry.counters.update(
                {key: 0 for key in registry.counters}
            )
            registry._attached.clear()

    def test_merge_counters_ignores_unknown_keys(self):
        registry = shm.get_registry()
        before = shm.shm_stats()
        shm.merge_counters({"attaches": 2, "bogus": 99})
        after = shm.shm_stats()
        assert after["attaches"] == before["attaches"] + 2
        assert "bogus" not in after
        registry.counters["attaches"] = before["attaches"]


class TestHugePages:
    """Segments above the replicate threshold get madvise(MADV_HUGEPAGE)."""

    @pytest.fixture(autouse=True)
    def _fresh_state(self, monkeypatch):
        from repro.perf import numa

        numa.reset_numa_state()
        monkeypatch.setattr(shm, "_WARNED", set())
        yield
        numa.reset_numa_state()

    def test_small_segment_stays_on_base_pages(self, registry):
        _attachable(registry, chain(50))
        assert registry.counters["huge_page_segments"] == 0
        assert registry.counters["huge_page_bytes"] == 0

    def test_large_segment_is_advised(self, registry):
        import mmap
        import warnings as _warnings

        if not hasattr(mmap, "MADV_HUGEPAGE"):
            pytest.skip("mmap.MADV_HUGEPAGE unavailable on this platform")
        from repro.perf import numa

        numa.configure_numa(replicate_threshold=256)
        graph = chung_lu(300, avg_degree=5.0, seed=3, name="hp-large")
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            handle = _attachable(registry, graph)
        if caught:  # kernel refused (e.g. THP disabled): clean fallback
            assert registry.counters["huge_page_segments"] == 0
            assert "huge" in str(caught[0].message).lower()
        else:
            assert registry.counters["huge_page_segments"] == 1
            assert registry.counters["huge_page_bytes"] == handle.nbytes

    def test_replica_segments_are_advised_too(self, registry):
        import mmap
        import warnings as _warnings

        if not hasattr(mmap, "MADV_HUGEPAGE"):
            pytest.skip("mmap.MADV_HUGEPAGE unavailable on this platform")
        from repro.perf import numa

        numa.configure_numa(mode="replicate", replicate_threshold=256)
        graph = chung_lu(300, avg_degree=5.0, seed=3, name="hp-replica")
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            handle = registry.export(
                ("dataset", "hp", 1, None), graph, nodes=(0, 1)
            )
        if handle is None:
            pytest.skip("shared memory unavailable on this platform")
        if not caught:
            assert registry.counters["replica_segments"] == 2
            # primary + both replicas
            assert registry.counters["huge_page_segments"] == 3
            assert (
                registry.counters["huge_page_bytes"] == 3 * handle.nbytes
            )

    def test_unsupported_platform_warns_once(self, registry, monkeypatch):
        import mmap
        import warnings as _warnings

        monkeypatch.delattr(mmap, "MADV_HUGEPAGE", raising=False)
        from repro.perf import numa

        numa.configure_numa(replicate_threshold=256)
        first = chung_lu(300, avg_degree=5.0, seed=3, name="hp-warn-a")
        with pytest.warns(RuntimeWarning, match="huge pages"):
            _attachable(registry, first, key=("dataset", "wa", 1, None))
        second = chung_lu(280, avg_degree=5.0, seed=4, name="hp-warn-b")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")  # a second warning would raise
            registry.export(("dataset", "wb", 1, None), second)
        assert registry.counters["huge_page_segments"] == 0
        assert registry.counters["huge_page_bytes"] == 0
