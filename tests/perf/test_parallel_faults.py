"""Crash isolation and retry policy of the parallel fan-out."""

import os
import signal

import pytest

from repro.errors import ConfigurationError, ReproError, WorkerCrashError
from repro.perf.parallel import (
    configure_retries,
    parallel_map,
    parallel_map_fork,
)


def _square(x):
    return x * x


def _crash_once(x, flag_path):
    """Kill the worker the first time it sees x == 3."""
    if x == 3 and not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


def _crash_always(x):
    if x == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return x


def _raise_value_error(x):
    raise ValueError(f"bad item {x}")


@pytest.fixture(autouse=True)
def _restore_retry_config():
    yield
    configure_retries(max_retries=2, backoff_seconds=0.05)


class TestCrashIsolation:
    def test_transient_crash_fails_only_its_item(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        configure_retries(backoff_seconds=0.0)
        args = [(i, flag) for i in range(6)]
        assert parallel_map(_crash_once, args, jobs=2) == [
            i * 10 for i in range(6)
        ]
        assert os.path.exists(flag)  # the crash really happened

    def test_persistent_crash_exhausts_budget(self):
        configure_retries(max_retries=1, backoff_seconds=0.0)
        with pytest.raises(WorkerCrashError) as excinfo:
            parallel_map(_crash_always, [(i,) for i in range(4)], jobs=2)
        error = excinfo.value
        assert isinstance(error, ReproError)
        assert error.item_index == 2
        assert error.attempts == 1
        assert "item 2" in str(error)

    def test_zero_budget_fails_immediately(self):
        configure_retries(max_retries=0)
        with pytest.raises(WorkerCrashError):
            parallel_map(_crash_always, [(i,) for i in range(4)], jobs=2)

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="bad item"):
            parallel_map(_raise_value_error, [(1,), (2,)], jobs=2)


class TestSerialFallbackWarns:
    def test_unpicklable_payload_warns_with_cause(self):
        with pytest.warns(RuntimeWarning, match="pickle"):
            result = parallel_map(lambda x: x + 1, [(1,), (2,)], jobs=2)
        assert result == [2, 3]

    def test_serial_path_stays_silent(self, recwarn):
        assert parallel_map(_square, [(i,) for i in range(4)], jobs=1) == [
            0,
            1,
            4,
            9,
        ]
        assert not [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]

    def test_fork_path_still_works(self):
        base = 5
        assert parallel_map_fork(lambda i: base + i, 4, jobs=2) == [
            5,
            6,
            7,
            8,
        ]


class TestConfigureRetries:
    def test_returns_live_config(self):
        config = configure_retries(max_retries=7, backoff_seconds=0.01)
        assert config["max_retries"] == 7
        assert config["backoff_seconds"] == 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            configure_retries(max_retries=-1)
        with pytest.raises(ConfigurationError):
            configure_retries(backoff_seconds=-0.5)
