"""Tests for message routing and combining estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import chung_lu, star
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import hash_partition
from repro.messages.combine import (
    combined_walk_messages,
    expected_occupied_bins,
)
from repro.messages.routing import BroadcastRouter, PointToPointRouter


@pytest.fixture
def routed_setup():
    graph = chung_lu(300, avg_degree=8.0, seed=21)
    partition = hash_partition(graph, 8)
    plan = build_mirror_plan(graph, partition, degree_threshold=40)
    return graph, partition, plan


class TestPointToPoint:
    def test_conservation(self, routed_setup):
        graph, _, plan = routed_setup
        router = PointToPointRouter(graph, plan)
        ids = np.arange(graph.num_vertices)
        emissions = np.full(graph.num_vertices, 10.0)
        routed = router.route(ids, emissions)
        assert routed.network_messages + routed.local_messages == (
            pytest.approx(routed.delivered_messages)
        )
        assert routed.delivered_messages == pytest.approx(emissions.sum())

    def test_single_machine_all_local(self):
        graph = chung_lu(100, 6.0, seed=3)
        partition = hash_partition(graph, 1)
        plan = build_mirror_plan(graph, partition)
        router = PointToPointRouter(graph, plan)
        routed = router.route(
            np.arange(100), np.full(100, 5.0)
        )
        assert routed.network_messages == 0.0

    def test_empty_emission(self, routed_setup):
        graph, _, plan = routed_setup
        router = PointToPointRouter(graph, plan)
        routed = router.route(np.empty(0, dtype=np.int64), np.empty(0))
        assert routed.delivered_messages == 0.0

    def test_network_share_matches_cut(self, routed_setup):
        graph, partition, plan = routed_setup
        router = PointToPointRouter(graph, plan)
        degrees = np.diff(graph.indptr).astype(np.float64)
        active = np.flatnonzero(degrees > 0)
        # One message per out-arc: the network share equals the cut.
        routed = router.route(active, degrees[active])
        assert routed.network_messages == pytest.approx(partition.cut_arcs)


class TestBroadcast:
    def test_mirrored_hub_cheap(self):
        graph = star(400, directed=False)
        partition = hash_partition(graph, 8)
        plan = build_mirror_plan(graph, partition, degree_threshold=50)
        router = BroadcastRouter(graph, plan)
        hub = router.route(np.array([0]), np.array([1.0]))
        # One block from the mirrored hub costs at most 7 wire messages.
        assert hub.network_messages <= 7
        # ... but is delivered to all 399 leaves.
        assert hub.delivered_messages == pytest.approx(399)

    def test_unmirrored_pays_per_neighbor(self):
        graph = star(400, directed=False)
        partition = hash_partition(graph, 8)
        plan = build_mirror_plan(graph, partition, degree_threshold=10**9)
        router = BroadcastRouter(graph, plan)
        hub = router.route(np.array([0]), np.array([1.0]))
        assert hub.network_messages == pytest.approx(
            plan.remote_neighbors[0]
        )

    def test_blocks_scale_linearly(self, routed_setup):
        graph, _, plan = routed_setup
        router = BroadcastRouter(graph, plan)
        ids = np.arange(graph.num_vertices)
        one = router.route(ids, np.ones(graph.num_vertices))
        five = router.route(ids, np.full(graph.num_vertices, 5.0))
        assert five.network_messages == pytest.approx(
            5 * one.network_messages
        )


class TestCombining:
    def test_one_bin_fully_occupied(self):
        out = expected_occupied_bins(np.array([7.0]), np.array([1.0]))
        assert out[0] == pytest.approx(1.0)

    def test_many_balls_saturate_bins(self):
        out = expected_occupied_bins(np.array([10000.0]), np.array([10.0]))
        assert out[0] == pytest.approx(10.0, rel=1e-3)

    def test_single_ball_hits_one_bin(self):
        out = expected_occupied_bins(np.array([1.0]), np.array([50.0]))
        assert out[0] == pytest.approx(1.0)

    def test_zero_cases(self):
        out = expected_occupied_bins(
            np.array([0.0, 5.0]), np.array([10.0, 0.0])
        )
        assert (out == 0).all()

    @given(
        st.floats(min_value=1.0, max_value=1e5),
        st.floats(min_value=1.0, max_value=1e4),
    )
    @settings(max_examples=100, deadline=None)
    def test_occupancy_bounds(self, balls, bins):
        out = float(
            expected_occupied_bins(np.array([balls]), np.array([bins]))[0]
        )
        assert 0.0 < out <= min(balls, bins) + 1e-6

    def test_combined_never_exceeds_raw(self):
        mass = np.array([100.0, 3.0, 50000.0])
        degrees = np.array([10.0, 10.0, 5.0])
        combined = combined_walk_messages(mass, degrees)
        assert (combined <= mass + 1e-9).all()

    def test_source_diversity_weakens_combining(self):
        mass = np.array([1000.0])
        degrees = np.array([10.0])
        few = combined_walk_messages(mass, degrees, 1.0)
        many = combined_walk_messages(mass, degrees, 100.0)
        assert many[0] > few[0]
