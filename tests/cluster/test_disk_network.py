"""Tests for the disk and network models."""

import pytest

from repro.cluster.disk import DiskModel, DiskSpec
from repro.cluster.network import NetworkModel, NetworkSpec
from repro.errors import ConfigurationError
from repro.units import MB


@pytest.fixture
def disk():
    return DiskModel(DiskSpec(bandwidth_bytes_per_second=100 * MB))


@pytest.fixture
def network():
    return NetworkModel(
        NetworkSpec(
            bandwidth_bytes_per_second=100 * MB,
            congestion_threshold_bytes=10 * MB,
            knee_exponent=1.0,
            knee_coefficient=10.0,
        ),
        num_machines=1,
    )


class TestDiskModel:
    def test_no_spill_no_cost(self, disk):
        usage = disk.round_time(0.0, other_seconds=1.0, message_bytes=8)
        assert usage.busy_seconds == 0.0
        assert usage.utilization == 0.0

    def test_light_spill_overlaps(self, disk):
        # 10 MB at 100 MB/s = 0.1 s busy inside a 1 s round.
        usage = disk.round_time(10 * MB, other_seconds=1.0, message_bytes=8)
        assert usage.busy_seconds == pytest.approx(0.1, rel=0.1)
        assert usage.round_seconds == pytest.approx(1.0)
        assert not usage.saturated

    def test_saturation_extends_round(self, disk):
        usage = disk.round_time(
            500 * MB, other_seconds=1.0, message_bytes=8
        )
        assert usage.saturated
        assert usage.utilization > 1.0
        assert usage.round_seconds > usage.busy_seconds

    def test_queue_grows_with_overflow(self, disk):
        light = disk.round_time(150 * MB, other_seconds=1.0, message_bytes=8)
        heavy = disk.round_time(600 * MB, other_seconds=1.0, message_bytes=8)
        assert heavy.queue_length > light.queue_length

    def test_overuse_accumulates_only_saturated(self, disk):
        disk.round_time(10 * MB, other_seconds=1.0, message_bytes=8)
        assert disk.overuse_seconds() == 0.0
        disk.round_time(500 * MB, other_seconds=1.0, message_bytes=8)
        assert disk.overuse_seconds() > 0.0

    def test_reset(self, disk):
        disk.round_time(500 * MB, other_seconds=1.0, message_bytes=8)
        disk.reset()
        assert disk.max_utilization() == 0.0
        assert disk.total_spilled_bytes() == 0.0

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            DiskSpec(bandwidth_bytes_per_second=0)


class TestNetworkModel:
    def test_linear_below_threshold(self, network):
        usage = network.round_time(5 * MB, cluster_bytes=5 * MB)
        assert usage.penalty_seconds == 0.0
        assert usage.transfer_seconds == pytest.approx(0.05)
        assert not usage.saturated

    def test_penalty_above_threshold(self, network):
        usage = network.round_time(20 * MB, cluster_bytes=20 * MB)
        assert usage.saturated
        # excess ratio 1.0, coefficient 10 -> penalty = 10x base.
        assert usage.penalty_seconds == pytest.approx(
            10 * usage.transfer_seconds
        )

    def test_cluster_bytes_drive_the_knee(self, network):
        # Small per-machine bytes but huge cluster volume still saturates.
        usage = network.round_time(1 * MB, cluster_bytes=100 * MB)
        assert usage.saturated

    def test_threshold_scales_with_machines(self):
        spec = NetworkSpec(
            bandwidth_bytes_per_second=100 * MB,
            congestion_threshold_bytes=10 * MB,
        )
        one = NetworkModel(spec, num_machines=1)
        eight = NetworkModel(spec, num_machines=8)
        assert eight.cluster_threshold_bytes == 8 * one.cluster_threshold_bytes
        assert not eight.round_time(
            20 * MB, cluster_bytes=20 * MB
        ).saturated

    def test_overuse_mixes_saturated_and_load(self, network):
        network.round_time(20 * MB, cluster_bytes=20 * MB)  # saturated
        saturated_overuse = network.overuse_seconds()
        assert saturated_overuse > 0
        network.round_time(1 * MB, cluster_bytes=1 * MB)  # light
        assert network.overuse_seconds() >= saturated_overuse

    def test_zero_bytes_free(self, network):
        usage = network.round_time(0.0)
        assert usage.total_seconds == 0.0

    def test_scaled_spec(self):
        spec = NetworkSpec(
            bandwidth_bytes_per_second=100 * MB,
            congestion_threshold_bytes=10 * MB,
        )
        scaled = spec.scaled(10)
        assert scaled.bandwidth_bytes_per_second == 10 * MB
        assert scaled.congestion_threshold_bytes == 1 * MB

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec(
                bandwidth_bytes_per_second=1.0,
                congestion_threshold_bytes=1.0,
                knee_exponent=0.5,
            )
