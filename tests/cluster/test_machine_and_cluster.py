"""Tests for machine specs and cluster presets."""

import pytest

from repro.cluster.cluster import (
    cluster_by_name,
    custom_cluster,
    docker32,
    galaxy8,
    galaxy27,
)
from repro.cluster.machine import GALAXY_MACHINE, MachineSpec
from repro.errors import ConfigurationError
from repro.units import GB


class TestMachineSpec:
    def test_usable_memory(self):
        assert GALAXY_MACHINE.usable_memory_bytes == 14 * GB

    def test_overload_limit(self):
        spec = MachineSpec(
            memory_bytes=16 * GB,
            os_reserve_bytes=2 * GB,
            cores=8,
            compute_ops_per_second=1e6,
            swap_allowance_fraction=0.5,
        )
        assert spec.overload_limit_bytes == 24 * GB

    def test_scaled_divides_capacity_and_throughput(self):
        scaled = GALAXY_MACHINE.scaled(400)
        assert scaled.memory_bytes == GALAXY_MACHINE.memory_bytes / 400
        assert (
            scaled.compute_ops_per_second
            == GALAXY_MACHINE.compute_ops_per_second / 400
        )
        assert scaled.cores == GALAXY_MACHINE.cores

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(memory_bytes=0),
            dict(os_reserve_bytes=99 * GB),
            dict(cores=0),
            dict(compute_ops_per_second=-1),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        base = dict(
            memory_bytes=16 * GB,
            os_reserve_bytes=2 * GB,
            cores=8,
            compute_ops_per_second=1e6,
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            MachineSpec(**base)


class TestClusterPresets:
    def test_paper_machine_counts(self):
        assert galaxy8().num_machines == 8
        assert galaxy27().num_machines == 27
        assert docker32().num_machines == 32

    def test_paper_memory(self):
        for cluster in (galaxy8(), galaxy27(), docker32()):
            assert cluster.machine.memory_bytes == 16 * GB

    def test_docker_has_credit_rate(self):
        assert docker32().credit_rate_per_machine_hour is not None
        assert galaxy8().credit_rate_per_machine_hour is None

    def test_scaled_capacities(self):
        cluster = galaxy8(scale=400)
        assert cluster.scaled_machine.memory_bytes == 16 * GB / 400
        assert (
            cluster.scaled_network.bandwidth_bytes_per_second
            == cluster.network.bandwidth_bytes_per_second / 400
        )
        assert (
            cluster.scaled_disk.bandwidth_bytes_per_second
            == cluster.disk.bandwidth_bytes_per_second / 400
        )

    def test_with_machines(self):
        four = galaxy8().with_machines(4)
        assert four.num_machines == 4
        assert four.machine == galaxy8().machine

    def test_total_memory(self):
        cluster = galaxy8(scale=1)
        assert cluster.total_memory_bytes == 8 * 16 * GB

    def test_lookup_by_name(self):
        assert cluster_by_name("Galaxy-8").num_machines == 8
        assert cluster_by_name("docker-32").kind == "cloud"
        with pytest.raises(ConfigurationError):
            cluster_by_name("galaxy-99")

    def test_custom_cluster(self):
        c = custom_cluster(5, memory_gb=32, cores=12)
        assert c.num_machines == 5
        assert c.machine.memory_bytes == 32 * 2**30
        assert c.machine.cores == 12

    def test_describe_mentions_name(self):
        assert "galaxy-8" in galaxy8().describe()
