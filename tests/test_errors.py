"""Exception hierarchy contract and strict-mode error context."""

import inspect

import pytest

from repro import errors
from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8
from repro.errors import (
    OverloadError,
    RecoveryError,
    ReproError,
    WorkerCrashError,
)
from repro.graph.datasets import load_dataset
from repro.tasks.bppr import bppr_task


class TestHierarchy:
    def test_every_public_exception_derives_from_repro_error(self):
        public = [
            obj
            for name, obj in vars(errors).items()
            if not name.startswith("_")
            and inspect.isclass(obj)
            and issubclass(obj, BaseException)
        ]
        assert len(public) > 10  # the hierarchy, not an accidental import
        for exc in public:
            assert issubclass(exc, ReproError), exc.__name__

    def test_base_is_an_exception(self):
        # Catchable by `except Exception`, but not swallowing
        # KeyboardInterrupt/SystemExit.
        assert issubclass(ReproError, Exception)
        assert not issubclass(KeyboardInterrupt, ReproError)


class TestErrorPayloads:
    def test_strict_mode_overload_carries_context(self):
        graph = load_dataset("dblp")
        job = MultiProcessingJob("pregel+", galaxy8())
        with pytest.raises(OverloadError) as excinfo:
            job.run(
                bppr_task(graph, 15000),
                num_batches=1,
                seed=7,
                on_overload="raise",
            )
        error = excinfo.value
        assert error.machine  # names the spec that overloaded
        assert error.peak_memory_bytes > error.limit_bytes > 0
        assert error.batch_index == 0
        assert error.reason in ("memory", "timeout")
        assert error.reason in str(error)

    def test_recovery_error_history(self):
        history = [{"attempt": 1, "reason": "memory"}]
        error = RecoveryError("gave up", history=history)
        assert error.history == history
        assert error.history is not history  # defensive copy
        assert RecoveryError("gave up").history == []

    def test_worker_crash_error_attrs(self):
        error = WorkerCrashError("item 3 crashed", item_index=3, attempts=2)
        assert error.item_index == 3
        assert error.attempts == 2
        assert isinstance(error, ReproError)
