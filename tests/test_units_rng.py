"""Tests for units formatting and RNG plumbing."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.rng import DEFAULT_SEED, derive_seed, make_rng, spawn
from repro.units import (
    GB,
    KB,
    MB,
    OVERLOAD_CUTOFF_SECONDS,
    format_bytes,
    format_count,
    format_seconds,
)


class TestUnits:
    def test_byte_constants(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3

    def test_cutoff_matches_paper(self):
        assert OVERLOAD_CUTOFF_SECONDS == 6000.0

    @pytest.mark.parametrize(
        "value,expected",
        [
            (15.1 * GB, "15.1GB"),
            (2.5 * MB, "2.5MB"),
            (512.0, "512B"),
            (3.2 * KB, "3.2KB"),
        ],
    )
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (173.3, "173.3s"),
            (51 * 60, "51.0min"),
            (2 * 3600, "2.0h"),
            (0.094, "94ms"),
        ],
    )
    def test_format_seconds(self, value, expected):
        assert format_seconds(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [(633.2e6, "633.2M"), (63.7e3, "63.7K"), (1.5e9, "1.5B"), (42, "42")],
    )
    def test_format_count(self, value, expected):
        assert format_count(value) == expected

    def test_negative_values(self):
        assert format_bytes(-GB) == "-1.0GB"
        assert format_seconds(-5) == "-5.0s"
        assert format_count(-2e6) == "-2.0M"


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(42, "walks") == derive_seed(42, "walks")

    def test_derive_seed_label_independence(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_make_rng_default_seed(self):
        a = make_rng(None)
        b = make_rng(DEFAULT_SEED)
        assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_labelled_streams_differ(self):
        a = make_rng(1, label="x")
        b = make_rng(1, label="y")
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_spawn_from_generator_consumes_state(self):
        parent = np.random.default_rng(9)
        first = spawn(parent, "child")
        second = spawn(parent, "child")
        assert (
            first.integers(0, 10**9) != second.integers(0, 10**9)
        )

    def test_spawn_from_int_is_deterministic(self):
        a = spawn(3, "kid")
        b = spawn(3, "kid")
        assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_module_default_exists(self):
        assert isinstance(rng_mod.DEFAULT_SEED, int)


class TestPublicApi:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy(self):
        from repro.errors import (
            BatchingError,
            ConfigurationError,
            EngineError,
            FitError,
            GraphFormatError,
            OverloadError,
            PartitionError,
            ReproError,
            TaskError,
            TuningError,
            UnknownEngineError,
        )

        for exc in (
            ConfigurationError,
            GraphFormatError,
            PartitionError,
            EngineError,
            TaskError,
            BatchingError,
            OverloadError,
            TuningError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(UnknownEngineError, EngineError)
        assert issubclass(FitError, TuningError)
