"""Failure-injection and degenerate-input tests.

Production libraries fail loudly and precisely; these tests pin the
behaviour on broken kernels, degenerate graphs and hostile settings.
"""

import numpy as np
import pytest

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8
from repro.engines.base import MAX_ROUNDS_PER_BATCH, SimulatedEngine
from repro.engines.registry import create_engine, engine_profile
from repro.errors import EngineError, TaskError
from repro.graph.build import from_edge_list, from_edges
from repro.graph.generators import chain, chung_lu, star
from repro.messages.routing import RoutedMessages
from repro.tasks.base import RoundSummary, TaskKernel, TaskSpec
from repro.tasks.bkhs import bkhs_task
from repro.tasks.bppr import bppr_task
from repro.tasks.mssp import mssp_task


class _NeverendingKernel(TaskKernel):
    """A kernel that never reports done (simulates a task bug)."""

    def _initialise(self, workload):
        pass

    def _advance(self):
        return RoundSummary(
            routed=RoutedMessages(1.0, 1.0, 2.0),
            compute_ops=1.0,
            task_state_bytes=0.0,
            active_vertices=1.0,
            done=False,
        )

    def residual_bytes(self):
        return 0.0

    @property
    def result(self):
        return None


def neverending_task(graph):
    return TaskSpec(
        name="neverending",
        graph=graph,
        workload=10,
        kernel_factory=lambda g, r, w, rng: _NeverendingKernel(g, r),
    )


class TestEngineGuards:
    def test_nonterminating_kernel_raises(self):
        graph = chain(4)
        engine = create_engine("pregel+", galaxy8(scale=400))
        with pytest.raises(EngineError, match="did not terminate"):
            engine.run_job(neverending_task(graph), [10.0], seed=1)

    def test_max_rounds_guard_is_generous(self):
        # The guard must sit far above real task round counts.
        assert MAX_ROUNDS_PER_BATCH >= 1000

    def test_overload_reason_recorded(self):
        graph = chung_lu(1500, 13.0, seed=3)
        engine = create_engine("pregel+", galaxy8(scale=400))
        metrics = engine.run_job(bppr_task(graph, 60000), [60000.0], seed=1)
        assert metrics.overloaded
        reasons = {b.overload_reason for b in metrics.batches}
        assert reasons <= {"memory", "timeout", None}
        assert any(r is not None for r in reasons)

    def test_single_machine_cluster_works(self):
        graph = chung_lu(200, 6.0, seed=5)
        job = MultiProcessingJob(
            "pregel+", galaxy8(scale=400).with_machines(1)
        )
        metrics = job.run(bppr_task(graph, 64), num_batches=2, seed=1)
        assert metrics.network_messages == 0.0
        assert metrics.seconds > 0


class TestDegenerateGraphs:
    def test_edgeless_graph_bppr(self):
        graph = from_edges(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            num_vertices=64,
        )
        job = MultiProcessingJob("pregel+", galaxy8(scale=400))
        # Every walk dies on its dangling start vertex in round 1.
        metrics = job.run(bppr_task(graph, 16), num_batches=1, seed=1)
        assert metrics.num_rounds == 1
        assert metrics.total_messages == 0.0

    def test_edgeless_graph_mssp(self):
        graph = from_edges(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            num_vertices=64,
        )
        job = MultiProcessingJob("pregel+", galaxy8(scale=400))
        metrics = job.run(
            mssp_task(graph, 8, sample_limit=None), num_batches=1, seed=1
        )
        assert not metrics.overloaded

    def test_star_graph_all_engines(self):
        graph = star(300, directed=False)
        for name in ("pregel+", "pregel+(mirror)", "graphd", "graphlab"):
            job = MultiProcessingJob(name, galaxy8(scale=400))
            metrics = job.run(bppr_task(graph, 32), num_batches=2, seed=1)
            assert metrics.seconds > 0, name

    def test_self_loop_heavy_graph(self):
        graph = from_edge_list(
            [(i, i) for i in range(20)] + [(0, 1), (1, 2)],
            num_vertices=20,
        )
        job = MultiProcessingJob("pregel+", galaxy8(scale=400))
        metrics = job.run(bppr_task(graph, 8), num_batches=1, seed=1)
        assert metrics.seconds > 0

    def test_two_vertex_graph_bkhs(self):
        graph = from_edge_list([(0, 1)], num_vertices=2, directed=False)
        job = MultiProcessingJob("pregel+", galaxy8(scale=400))
        metrics = job.run(
            bkhs_task(graph, 2, k=1, sample_limit=None), num_batches=1,
            seed=1,
        )
        assert metrics.num_rounds == 2  # k + 1


class TestHostileSettings:
    def test_zero_workload_rejected(self):
        graph = chain(4)
        with pytest.raises(TaskError):
            bppr_task(graph, 0)

    def test_negative_batch_rejected(self):
        graph = chung_lu(50, 4.0, seed=2)
        engine = create_engine("pregel+", galaxy8(scale=400))
        from repro.errors import BatchingError

        with pytest.raises(BatchingError):
            engine.run_job(bppr_task(graph, 10), [12.0, -2.0], seed=1)

    def test_profile_is_frozen(self):
        profile = engine_profile("pregel+")
        with pytest.raises(Exception):
            profile.cpu_factor = 99.0  # frozen dataclass

    def test_engine_reuse_across_graphs(self):
        """The per-graph preparation cache must key correctly."""
        engine = create_engine("pregel+", galaxy8(scale=400))
        a = chung_lu(100, 5.0, seed=1)
        b = chung_lu(300, 5.0, seed=2)
        first = engine.run_job(bppr_task(a, 16), [16.0], seed=1)
        second = engine.run_job(bppr_task(b, 16), [16.0], seed=1)
        # The bigger graph moves more messages.
        assert second.total_messages > first.total_messages

    def test_fresh_engine_same_results(self):
        """Engine instances must not leak state across jobs."""
        graph = chung_lu(150, 5.0, seed=9)
        one = create_engine("graphd", galaxy8(scale=400)).run_job(
            bppr_task(graph, 128), [64.0, 64.0], seed=4
        )
        two = create_engine("graphd", galaxy8(scale=400)).run_job(
            bppr_task(graph, 128), [64.0, 64.0], seed=4
        )
        assert one.seconds == two.seconds
        assert one.io_overuse_seconds == two.io_overuse_seconds
