"""Documentation-quality guards.

Every public module, class and function in the library must carry a
docstring — the deliverable promises doc comments on every public item,
and this test keeps that promise honest as the code evolves.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if "__main__" not in name
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if meth.__doc__ and meth.__doc__.strip():
                    continue
                # Overrides inherit their contract's docstring.
                inherited = any(
                    getattr(
                        getattr(base, meth_name, None), "__doc__", None
                    )
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, f"{module_name}: {undocumented}"


def test_readme_and_design_exist():
    import pathlib

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (root / doc).exists(), doc


def test_public_api_documented():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__ and obj.__doc__.strip(), name
