"""Priority lanes, aging, shedding, and barrier preemption.

Policy arithmetic is tested standalone; the service-level scenarios
run real engines at a small scale and assert the *scheduling*
consequences — who is served first, who is shed, when a running batch
suspends — plus the two legacy-equivalence guarantees: one priority
class reproduces FIFO byte for byte, and an un-preempted run under a
preemption-enabled policy executes identical batches.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.cluster import cluster_by_name
from repro.engines.registry import create_engine
from repro.errors import ConfigurationError
from repro.graph.datasets import load_dataset
from repro.sched.arrivals import TaskRequest, generate_arrivals
from repro.sched.policy import ServicePolicy
from repro.sched.service import SchedulerService
from repro.sim.metrics import JobMetrics, pack_job

SCALE = 400


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp", scale=SCALE)


@pytest.fixture(scope="module")
def engine():
    return create_engine("pregel+", cluster_by_name("galaxy-8", scale=SCALE))


def service_for(engine, graph, policy=None, kinds=("bppr",), **kwargs):
    kwargs.setdefault("task_params", {"bkhs": {"sample_limit": 16}})
    return SchedulerService(
        engine, graph, kinds=kinds, seed=21, policy=policy, **kwargs
    )


def metrics_json(metrics):
    return json.dumps(
        metrics.to_dict(include_latencies=True), sort_keys=True
    )


class TestPolicyArithmetic:
    def test_static_class_clamps_to_lanes(self):
        policy = ServicePolicy(priority_classes=3)
        req = lambda p: TaskRequest(0, "bppr", 8.0, 0.0, priority=p)
        assert policy.static_class(req(0)) == 0
        assert policy.static_class(req(7)) == 2
        assert policy.static_class(req(-4)) == 0

    def test_single_class_collapses_everything(self):
        policy = ServicePolicy()
        req = TaskRequest(3, "bppr", 8.0, 1.5, priority=9)
        assert policy.static_class(req) == 0
        assert policy.selection_key(req, 100.0) == (0, 1.5, 3)

    def test_aging_promotes_one_lane_per_interval(self):
        policy = ServicePolicy(priority_classes=4, aging_seconds=10.0)
        req = TaskRequest(0, "bppr", 8.0, 0.0, priority=3)
        assert policy.effective_class(req, 0.0) == 3
        assert policy.effective_class(req, 10.0) == 2
        assert policy.effective_class(req, 25.0) == 1
        assert policy.effective_class(req, 1000.0) == 0  # never below 0

    def test_aging_disabled_keeps_static_class(self):
        policy = ServicePolicy(priority_classes=4, aging_seconds=None)
        req = TaskRequest(0, "bppr", 8.0, 0.0, priority=3)
        assert policy.effective_class(req, 1e9) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServicePolicy(priority_classes=0)
        with pytest.raises(ConfigurationError):
            ServicePolicy(aging_seconds=0.0)
        with pytest.raises(ConfigurationError):
            ServicePolicy(preempt_rule="sometimes")
        with pytest.raises(ConfigurationError):
            ServicePolicy(max_queue=0)
        with pytest.raises(ConfigurationError):
            ServicePolicy(shed_watermark=1.5)
        with pytest.raises(ConfigurationError):
            ServicePolicy(preempt_after_rounds=0)


class TestFifoEquivalence:
    """The load-bearing regression guard: the policy layer must be
    invisible unless its knobs are actually exercised."""

    def _stream(self, engine, graph, policy):
        service = service_for(engine, graph, policy, record_rounds=True)
        requests = generate_arrivals(
            0.6, 15, seed=21, kinds=("bppr",), units_range=(8, 48)
        )
        return metrics_json(service.run(requests, arrival_rate=0.6))

    def test_default_policy_is_byte_identical_to_legacy(self, engine, graph):
        legacy = self._stream(engine, graph, None)
        explicit = self._stream(engine, graph, ServicePolicy())
        assert legacy == explicit

    def test_uniform_priorities_match_fifo(self, engine, graph):
        # Every generated request carries DEFAULT_PRIORITY, so three
        # lanes plus aging still order exactly like FIFO. Only the
        # recorded lane label may differ (class 1 instead of the
        # single-lane 0); everything measured must match byte for byte.
        def normalized(payload):
            data = json.loads(payload)
            for entry in data["batches"]:
                entry.pop("priority", None)
            return json.dumps(data, sort_keys=True)

        fifo = normalized(self._stream(engine, graph, None))
        laned = normalized(
            self._stream(engine, graph, ServicePolicy(priority_classes=3))
        )
        assert fifo == laned

    def test_unexercised_preemption_executes_identical_batches(
        self, engine, graph
    ):
        # A single request can never be preempted (nothing else is
        # waiting): the engine-level batches must be identical to the
        # default policy's.
        request = [TaskRequest(0, "bppr", 64.0, 0.0)]

        def batches(policy):
            service = service_for(engine, graph, policy)
            service.run(list(request))
            job = JobMetrics(
                engine="pregel+",
                task="bppr",
                dataset=graph.name,
                cluster="galaxy-8",
                num_machines=engine.cluster.num_machines,
                total_workload=64.0,
                batch_sizes=[64.0],
            )
            for _, batch in service.executed_batches:
                job.batches.append(batch)
            return bytes(pack_job(job)["payload"])

        preemptive = ServicePolicy(
            priority_classes=3, preempt=True, preempt_rule="eager"
        )
        assert batches(None) == batches(preemptive)


class TestPriorityOrdering:
    def test_urgent_class_is_served_first(self, engine, graph):
        policy = ServicePolicy(priority_classes=3, aging_seconds=None)
        service = service_for(engine, graph, policy)
        requests = [
            TaskRequest(0, "bppr", 16.0, 0.0, priority=2),
            TaskRequest(1, "bppr", 16.0, 0.0, priority=0),
            TaskRequest(2, "bppr", 16.0, 0.0, priority=1),
        ]
        metrics = service.run(requests)
        assert metrics.completed_tasks == 3
        first_units = [
            latency.task_id
            for latency in sorted(
                metrics.latencies, key=lambda l: l.start_seconds
            )
        ]
        # Urgent first; ties broken by start order = class order.
        assert first_units.index(1) < first_units.index(2) < first_units.index(0)

    def test_aging_rescues_a_starved_request(self, engine, graph):
        policy = ServicePolicy(priority_classes=3, aging_seconds=60.0)
        service = service_for(engine, graph, policy)
        # The patient request has waited 200 s by clock zero — aging
        # has promoted it past the fresh urgent arrival.
        requests = [
            TaskRequest(0, "bppr", 16.0, -200.0, priority=2),
            TaskRequest(1, "bppr", 16.0, 0.0, priority=1),
        ]
        metrics = service.run(requests)
        starts = {l.task_id: l.start_seconds for l in metrics.latencies}
        assert starts[0] <= starts[1]

        # Without aging the same stream serves the fresh class-1 first.
        unaged = service_for(
            engine,
            graph,
            ServicePolicy(priority_classes=3, aging_seconds=None),
        )
        metrics = unaged.run(
            [
                TaskRequest(0, "bppr", 16.0, -200.0, priority=2),
                TaskRequest(1, "bppr", 16.0, 0.0, priority=1),
            ]
        )
        starts = {l.task_id: l.start_seconds for l in metrics.latencies}
        assert starts[1] <= starts[0]


class TestShedding:
    def test_bounded_queue_evicts_least_urgent_youngest(self, engine, graph):
        policy = ServicePolicy(
            priority_classes=3, aging_seconds=None, max_queue=2
        )
        service = service_for(engine, graph, policy)
        requests = [
            TaskRequest(0, "bppr", 16.0, 0.0, priority=0),
            TaskRequest(1, "bppr", 16.0, 0.0, priority=2),
            TaskRequest(2, "bppr", 16.0, 0.0, priority=2),
            TaskRequest(3, "bppr", 16.0, 0.0, priority=1),
        ]
        metrics = service.run(requests)
        assert metrics.dropped_requests == 2
        assert metrics.drops_queue_full == 2
        # Deterministic victims: lowest class, youngest arrival first.
        assert [d["task_id"] for d in metrics.drop_log] == [2, 1]
        assert all(
            d["retry_after_seconds"]
            >= policy.retry_after_floor_seconds
            for d in metrics.drop_log
        )
        assert metrics.completed_tasks == 2
        assert {l.task_id for l in metrics.latencies} == {0, 3}

    def test_watermark_sheds_lowest_class_under_pressure(self, engine, graph):
        policy = ServicePolicy(
            priority_classes=2, aging_seconds=None, shed_watermark=0.0
        )
        service = service_for(engine, graph, policy)
        requests = [
            TaskRequest(0, "bppr", 32.0, 0.0, priority=0),
            # Arrives after the first batch has accumulated residual
            # memory: above the (zero) watermark, lowest class -> shed.
            TaskRequest(1, "bppr", 16.0, 5.0, priority=1),
        ]
        metrics = service.run(requests)
        assert metrics.completed_tasks == 1
        assert metrics.drops_watermark == 1
        assert metrics.drop_log[0]["task_id"] == 1
        assert metrics.drop_log[0]["reason"] == "watermark"

    def test_expired_requests_drop_before_starting(self, engine, graph):
        policy = ServicePolicy(
            priority_classes=2, aging_seconds=None, drop_expired=True
        )
        service = service_for(engine, graph, policy)
        requests = [
            TaskRequest(0, "bppr", 64.0, 0.0, priority=0),
            TaskRequest(
                1, "bppr", 16.0, 1.0, priority=1, deadline_seconds=0.5
            ),
        ]
        metrics = service.run(requests)
        assert metrics.drops_expired == 1
        assert metrics.completed_tasks == 1
        assert metrics.resilience_summary()["drops_expired"] == 1


class TestPreemption:
    def test_urgent_cross_kind_request_preempts(self, engine, graph):
        policy = ServicePolicy(
            priority_classes=3,
            aging_seconds=None,
            preempt=True,
            preempt_rule="eager",
        )
        service = service_for(
            engine, graph, policy, kinds=("bppr", "bkhs")
        )
        requests = [
            TaskRequest(0, "bkhs", 96.0, 0.0, priority=2),
            TaskRequest(1, "bppr", 8.0, 0.5, priority=0),
        ]
        metrics = service.run(requests)
        assert metrics.preemptions >= 1
        assert metrics.resumes >= 1
        assert metrics.preempt_seconds > 0.0
        assert metrics.completed_tasks == 2
        # The urgent request overtakes: it finishes first.
        finishes = {l.task_id: l.finish_seconds for l in metrics.latencies}
        assert finishes[1] < finishes[0]
        # All pinned checkpoint memory was released on resume.
        assert service.admission.pinned_bytes() == 0.0
        summary = metrics.resilience_summary()
        assert summary["preemptions"] == metrics.preemptions
        assert summary["resumes"] == metrics.resumes

    def test_same_kind_never_preempts(self, engine, graph):
        policy = ServicePolicy(
            priority_classes=3,
            aging_seconds=None,
            preempt=True,
            preempt_rule="eager",
        )
        service = service_for(engine, graph, policy, kinds=("bppr", "bkhs"))
        requests = [
            TaskRequest(0, "bkhs", 96.0, 0.0, priority=2),
            TaskRequest(1, "bkhs", 8.0, 0.5, priority=0),
        ]
        metrics = service.run(requests)
        assert metrics.preemptions == 0
        assert metrics.completed_tasks == 2

    def test_suspend_cap_bounds_churn(self, engine, graph):
        policy = ServicePolicy(
            priority_classes=3,
            aging_seconds=None,
            preempt=True,
            preempt_rule="eager",
            max_suspends_per_batch=1,
        )
        service = service_for(engine, graph, policy, kinds=("bppr", "bkhs"))
        requests = [TaskRequest(0, "bkhs", 96.0, 0.0, priority=2)] + [
            TaskRequest(
                i, "bppr", 8.0, 0.5 * i, priority=0
            )
            for i in range(1, 6)
        ]
        metrics = service.run(requests)
        assert metrics.completed_tasks == 6
        per_batch = [
            entry["preemptions"]
            for entry in metrics.batch_log
            if entry["kind"] == "bkhs"
        ]
        assert per_batch and max(per_batch) <= 1
