"""Tests for the seeded arrival streams (repro.sched.arrivals)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sched.arrivals import (
    DEFAULT_KINDS,
    TICK_SECONDS,
    TaskRequest,
    generate_arrivals,
)


class TestGenerateArrivals:
    def test_same_seed_same_stream(self):
        first = generate_arrivals(0.8, 50, seed=42)
        second = generate_arrivals(0.8, 50, seed=42)
        assert first == second
        assert first, "a 50-tick stream at rate 0.8 should not be empty"

    def test_different_seeds_differ(self):
        assert generate_arrivals(0.8, 50, seed=1) != generate_arrivals(
            0.8, 50, seed=2
        )

    def test_stream_shape(self):
        requests = generate_arrivals(
            1.5, 30, seed=7, kinds=("bppr", "mssp"), units_range=(4, 16)
        )
        assert [r.task_id for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_seconds for r in requests]
        assert arrivals == sorted(arrivals)
        for request in requests:
            assert request.kind in ("bppr", "mssp")
            assert 4 <= request.units <= 16
            assert request.units == int(request.units)
            assert request.arrival_seconds % TICK_SECONDS == 0

    def test_default_kinds_cover_paper_tasks(self):
        assert DEFAULT_KINDS == ("bppr", "mssp", "bkhs")
        kinds = {r.kind for r in generate_arrivals(2.0, 60, seed=3)}
        assert kinds == set(DEFAULT_KINDS)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rate=0.0, duration=10),
            dict(rate=-1.0, duration=10),
            dict(rate=1.0, duration=0),
            dict(rate=1.0, duration=10, kinds=()),
            dict(rate=1.0, duration=10, units_range=(0, 4)),
            dict(rate=1.0, duration=10, units_range=(8, 4)),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SchedulingError):
            generate_arrivals(**kwargs)

    def test_request_is_frozen(self):
        request = TaskRequest(0, "bppr", 8.0, 0.0)
        with pytest.raises(AttributeError):
            request.units = 16.0
