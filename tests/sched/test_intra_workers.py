"""Intra-task worker shares in the serving loop.

``ServicePolicy.intra_workers`` hands the scheduler a pool of kernel
workers to split across the sessions concurrently in flight (running
plus suspended mid-batch). The tests pin down three guarantees: the
split arithmetic is applied at every dispatch point, a policy that
grants no workers never touches the kernel-pool configuration (so the
schedule stays byte-identical to the pre-parallel service), and a
sharded service run produces byte-identical metrics to the serial one.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.cluster import cluster_by_name
from repro.engines.registry import create_engine
from repro.errors import ConfigurationError
from repro.graph.datasets import load_dataset
from repro.perf import kernel_pool
from repro.perf.cache import clear_cache
from repro.sched.arrivals import TaskRequest, generate_arrivals
from repro.sched.policy import ServicePolicy
from repro.sched.service import SchedulerService

SCALE = 400


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp", scale=SCALE)


@pytest.fixture(scope="module")
def engine():
    return create_engine("pregel+", cluster_by_name("galaxy-8", scale=SCALE))


@pytest.fixture(autouse=True)
def _fresh_pool():
    kernel_pool.reset_kernel_pool()
    clear_cache()
    yield
    kernel_pool.reset_kernel_pool()
    clear_cache()


def metrics_json(metrics):
    return json.dumps(
        metrics.to_dict(include_latencies=True), sort_keys=True
    )


class TestWorkerShareArithmetic:
    def test_even_split_with_floor_of_one(self):
        policy = ServicePolicy(intra_workers=4)
        assert policy.worker_share(1) == 4
        assert policy.worker_share(2) == 2
        assert policy.worker_share(3) == 1
        assert policy.worker_share(9) == 1  # never starves a session

    def test_zero_grants_nothing(self):
        policy = ServicePolicy()
        assert policy.intra_workers == 0
        assert policy.worker_share(1) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ServicePolicy(intra_workers=-1)


class TestServeDispatch:
    def _preempt_policy(self, intra_workers):
        return ServicePolicy(
            priority_classes=3,
            aging_seconds=None,
            preempt=True,
            preempt_rule="eager",
            intra_workers=intra_workers,
        )

    def _preempt_requests(self):
        # A big low-priority BKHS batch that an urgent BPPR request
        # suspends mid-flight: while the BPPR batch runs, two sessions
        # are in flight and the pool splits.
        return [
            TaskRequest(0, "bkhs", 96.0, 0.0, priority=2),
            TaskRequest(1, "bppr", 8.0, 0.5, priority=0),
        ]

    def test_pool_splits_between_concurrent_sessions(
        self, engine, graph, monkeypatch
    ):
        applied = []
        original = SchedulerService._apply_worker_share

        def spy(self, concurrent_sessions, **kwargs):
            share = original(self, concurrent_sessions, **kwargs)
            applied.append((concurrent_sessions, share))
            return share

        monkeypatch.setattr(SchedulerService, "_apply_worker_share", spy)
        service = SchedulerService(
            engine,
            graph,
            kinds=("bppr", "bkhs"),
            seed=21,
            policy=self._preempt_policy(4),
            task_params={"bkhs": {"sample_limit": 16}},
        )
        metrics = service.run(self._preempt_requests())
        assert metrics.preemptions >= 1
        # The urgent batch dispatched while the big one sat suspended:
        # two concurrent sessions, each granted half the pool.
        assert (2, 2) in applied
        # Solo dispatches get the whole pool.
        assert (1, 4) in applied
        # The batch log records the share each batch finished under.
        shares = [e["intra_workers"] for e in metrics.batch_log]
        assert shares and all(s >= 1 for s in shares)

    def test_zero_workers_never_touches_pool_config(
        self, engine, graph, monkeypatch
    ):
        def forbidden(*args, **kwargs):
            raise AssertionError(
                "intra_workers=0 must never reconfigure the kernel pool"
            )

        monkeypatch.setattr(
            kernel_pool, "configure_kernel_workers", forbidden
        )
        service = SchedulerService(
            engine,
            graph,
            kinds=("bppr",),
            seed=21,
            policy=ServicePolicy(),
            record_rounds=True,
        )
        requests = generate_arrivals(
            0.6, 10, seed=21, kinds=("bppr",), units_range=(8, 32)
        )
        metrics = service.run(requests, arrival_rate=0.6)
        assert metrics.completed_tasks > 0
        assert all(
            "intra_workers" not in entry for entry in metrics.batch_log
        )

    def _stream(self, engine, graph, policy):
        clear_cache()
        service = SchedulerService(
            engine,
            graph,
            kinds=("bppr",),
            seed=21,
            policy=policy,
            record_rounds=True,
        )
        requests = generate_arrivals(
            0.6, 10, seed=21, kinds=("bppr",), units_range=(8, 32)
        )
        return service.run(requests, arrival_rate=0.6)

    def test_cost_shares_without_deadlines_match_even_split(
        self, engine, graph
    ):
        """``cost_shares`` on a deadline-free stream degenerates to the
        even split: every batch gets the same share, so the whole serve
        digest is byte-identical to the plain ``intra_workers`` run."""
        even = metrics_json(
            self._stream(engine, graph, ServicePolicy(intra_workers=3))
        )
        cost = metrics_json(
            self._stream(
                engine,
                graph,
                ServicePolicy(intra_workers=3, cost_shares=True),
            )
        )
        assert cost == even


class TestCostShareArithmetic:
    """The deadline-pressure interpolation, pinned deterministically
    with a stubbed seconds model."""

    class _FakeCalibrator:
        def __init__(self, seconds):
            self.seconds = seconds

        def predict_seconds(self, workload):
            return self.seconds

    def _inflight(self, deadline_at):
        from types import SimpleNamespace

        pending = SimpleNamespace(
            request=SimpleNamespace(deadline_at=deadline_at)
        )
        return SimpleNamespace(
            kind="bppr", batch_units=8.0, parts=[(pending, 8.0)]
        )

    @pytest.fixture(scope="class")
    def service(self, engine, graph):
        clear_cache()
        return SchedulerService(
            engine,
            graph,
            kinds=("bppr",),
            seed=21,
            policy=ServicePolicy(intra_workers=4, cost_shares=True),
        )

    def _share(self, service, seconds, deadline_at, sessions=2, clock=0.0):
        service.calibrators["bppr"] = self._FakeCalibrator(seconds)
        return service._cost_worker_share(
            self._inflight(deadline_at), sessions, clock
        )

    def test_pressure_one_grants_the_full_pool(self, service):
        # Predicted to take 30 s against 10 s of slack: whole pool.
        assert self._share(service, 30.0, deadline_at=10.0) == 4

    def test_blown_deadline_grants_the_full_pool(self, service):
        assert self._share(service, 1.0, deadline_at=-5.0) == 4

    def test_generous_slack_keeps_the_even_split(self, service):
        assert self._share(service, 1.0, deadline_at=1.0e6) == 2

    def test_intermediate_pressure_interpolates(self, service):
        # pressure = 10/20 = 0.5 -> 2 + (4-2)*0.5 = 3.
        assert self._share(service, 10.0, deadline_at=20.0) == 3

    def test_no_deadline_keeps_the_even_split(self, service):
        assert self._share(service, 30.0, deadline_at=None) == 2

    def test_no_seconds_model_keeps_the_even_split(self, service):
        assert self._share(service, None, deadline_at=10.0) == 2

    def test_missing_calibrator_keeps_the_even_split(self, service):
        service.calibrators.pop("bppr", None)
        share = service._cost_worker_share(
            self._inflight(10.0), 2, 0.0
        )
        assert share == 2


class TestShardedServiceInvariance:
    def _stream(self, engine, graph, policy):
        clear_cache()
        service = SchedulerService(
            engine,
            graph,
            kinds=("bppr",),
            seed=21,
            policy=policy,
            record_rounds=True,
        )
        requests = generate_arrivals(
            0.6, 10, seed=21, kinds=("bppr",), units_range=(8, 32)
        )
        return service.run(requests, arrival_rate=0.6)

    def test_sharded_service_matches_serial_byte_for_byte(
        self, engine, graph
    ):
        serial = metrics_json(self._stream(engine, graph, ServicePolicy()))

        # Force the crossover down so the small test graph actually
        # shards; the service then drives the worker count per batch.
        kernel_pool.configure_kernel_workers(0, min_shard_candidates=1)
        sharded_metrics = self._stream(
            engine, graph, ServicePolicy(intra_workers=3)
        )
        dispatches = kernel_pool.kernel_pool_stats()["sharded_dispatches"]
        assert dispatches > 0, "sharded kernels never ran; test is vacuous"

        # The share annotation is the only permitted difference.
        data = json.loads(metrics_json(sharded_metrics))
        for entry in data["batches"]:
            assert entry.pop("intra_workers") == 3
        assert json.dumps(data, sort_keys=True) == serial
