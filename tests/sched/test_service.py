"""Tests for the scheduler service loop (repro.sched.service).

The load-bearing assertion is byte-identity of the degenerate
schedule: one pre-queued request, a single kind, and the same seed
must reproduce the legacy offline runner's ``JobMetrics`` down to the
serialized bytes (``pack_job``), proving the refactor changed the
architecture and not the simulation.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster.cluster import cluster_by_name
from repro.engines.registry import create_engine
from repro.errors import SchedulingError
from repro.graph.datasets import load_dataset
from repro.sched.arrivals import TaskRequest, generate_arrivals
from repro.sched.service import SchedulerService, run_degenerate
from repro.sim.metrics import JobMetrics, pack_job
from repro.tasks.base import make_task

SCALE = 400
#: Overload fraction small enough that 4096 BPPR walks need a
#: multi-batch, front-loaded schedule at this scale.
FRACTION = 0.25
WORKLOAD = 4096.0


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp", scale=SCALE)


@pytest.fixture(scope="module")
def engine():
    return create_engine("pregel+", cluster_by_name("galaxy-8", scale=SCALE))


def run_stream(engine, graph, rate=0.6, duration=20, seed=21, **kwargs):
    """One seeded single-kind stream through a fresh service."""
    service = SchedulerService(
        engine,
        graph,
        kinds=("bppr",),
        seed=seed,
        record_rounds=True,
        **kwargs,
    )
    requests = generate_arrivals(
        rate, duration, seed=seed, kinds=("bppr",), units_range=(8, 64)
    )
    return service, service.run(requests, arrival_rate=rate)


class TestDegenerateByteIdentity:
    def test_matches_offline_runner(self, engine, graph):
        schedule, job = run_degenerate(
            engine,
            lambda w: make_task("bppr", graph, w),
            WORKLOAD,
            seed=7,
            overload_fraction=FRACTION,
        )
        assert len(schedule) > 1, "need a multi-batch schedule to compare"
        assert schedule == sorted(schedule, reverse=True)

        service = SchedulerService(
            engine,
            graph,
            kinds=("bppr",),
            seed=7,
            overload_fraction=FRACTION,
            reference_workload=WORKLOAD,
        )
        metrics = service.run([TaskRequest(0, "bppr", WORKLOAD, 0.0)])
        batches = [batch for _, batch in service.executed_batches]
        assert [batch.workload for batch in batches] == schedule
        assert metrics.flushes == 0

        # Reassemble the offline JobMetrics from the service's raw
        # batches and session state, then compare serialized bytes.
        session = service.sessions["bppr"]
        rebuilt = JobMetrics(
            engine=engine.name,
            task="bppr",
            dataset=graph.name,
            cluster=engine.cluster.name,
            num_machines=engine.cluster.num_machines,
            total_workload=WORKLOAD,
            batch_sizes=[batch.workload for batch in batches],
        )
        rebuilt.batches.extend(batches)
        rebuilt.aggregation_seconds = engine._aggregation_seconds(
            session.task, session.residual_bytes
        )
        rebuilt.extras.update(session.cost_model.overuse_totals())
        rebuilt.extras["residual_memory_bytes"] = session.residual_bytes
        ours, theirs = pack_job(rebuilt), pack_job(job)
        assert ours.keys() == theirs.keys()
        for key in ours:
            assert np.array_equal(ours[key], theirs[key]), key


class TestServiceRuns:
    def test_seeded_stream_is_deterministic(self, engine, graph):
        _, first = run_stream(engine, graph)
        _, second = run_stream(engine, graph)
        assert json.dumps(
            first.to_dict(include_latencies=True), sort_keys=True
        ) == json.dumps(second.to_dict(include_latencies=True), sort_keys=True)

    def test_queue_drains_and_latencies_are_complete(self, engine, graph):
        requests = generate_arrivals(
            0.6, 20, seed=21, kinds=("bppr",), units_range=(8, 64)
        )
        service, metrics = run_stream(engine, graph)
        assert metrics.completed_tasks == len(requests)
        assert metrics.completed_units == sum(r.units for r in requests)
        for latency in metrics.latencies:
            assert (
                latency.arrival_seconds
                <= latency.start_seconds
                <= latency.finish_seconds
            )
        percentiles = metrics.latency_percentiles()
        assert percentiles["p50_seconds"] <= percentiles["p99_seconds"]

    def test_admission_invariant_on_batch_log(self, engine, graph):
        _, metrics = run_stream(
            engine, graph, rate=1.2, duration=30, overload_fraction=FRACTION
        )
        assert metrics.batch_log
        for entry in metrics.batch_log:
            if not entry["aborted"]:
                assert entry["projected_bytes"] <= entry["budget_bytes"] * (
                    1 + 1e-9
                )

    def test_backpressure_flushes_under_tight_budget(self, engine, graph):
        service = SchedulerService(
            engine,
            graph,
            kinds=("bppr",),
            seed=3,
            overload_fraction=FRACTION,
            reference_workload=WORKLOAD,
        )
        requests = [
            TaskRequest(0, "bppr", WORKLOAD, 0.0),
            TaskRequest(1, "bppr", WORKLOAD, 0.0),
        ]
        metrics = service.run(requests)
        assert metrics.flushes >= 1
        # pregel+ prices aggregation at zero (point-to-point results);
        # the flush still resets the admission budget.
        assert metrics.flush_seconds >= 0
        assert metrics.completed_tasks == 2

    def test_mixed_kinds_share_one_budget(self, engine, graph):
        service = SchedulerService(
            engine,
            graph,
            kinds=("bppr", "mssp"),
            seed=5,
            task_params={"mssp": {"sample_limit": 8}},
        )
        requests = generate_arrivals(
            0.5, 16, seed=5, kinds=("bppr", "mssp"), units_range=(4, 16)
        )
        metrics = service.run(requests)
        assert metrics.completed_tasks == len(requests)
        kinds_run = {entry["kind"] for entry in metrics.batch_log}
        assert kinds_run == {"bppr", "mssp"}

    def test_requires_at_least_one_kind(self, engine, graph):
        with pytest.raises(SchedulingError):
            SchedulerService(engine, graph, kinds=())


class TestStreamingCapAdmission:
    """``--max-ram`` in the serve path: mapped-graph deployments admit
    batches against the streaming budget, so an over-RAM request is
    split across admissions instead of allocating dense kernel state
    past the budget."""

    @pytest.fixture(autouse=True)
    def _restore_streaming(self):
        from repro.graph.csr import configure_streaming

        yield
        configure_streaming(None)

    def test_over_ram_batch_is_split_not_oom(self, engine, graph):
        from repro.graph.csr import configure_streaming
        from repro.sched.service import STREAMING_STATE_BYTES_PER_VERTEX

        cap_units = 6
        per_unit = graph.num_vertices * STREAMING_STATE_BYTES_PER_VERTEX
        configure_streaming(int(cap_units * per_unit))
        service = SchedulerService(engine, graph, kinds=("bppr",), seed=5)
        metrics = service.run([TaskRequest(0, "bppr", 40.0, 0.0)])

        assert metrics.completed_units == 40.0
        assert len(metrics.batch_log) >= 40 / cap_units
        assert all(
            entry["workload"] <= cap_units for entry in metrics.batch_log
        )

    def test_no_budget_means_no_cap(self, engine, graph):
        service = SchedulerService(engine, graph, kinds=("bppr",), seed=5)
        assert service._streaming_unit_cap() is None
