"""Chaos under service: fault injection must not change scheduling.

The service loop makes every decision — batch formation, priority
selection, preemption — on quantities that injected machine faults do
not perturb when the preemption trigger is round-based
(``preempt_after_rounds``): faults add replay *seconds*, never extra
rounds or different workloads. These tests run the same preemptive
scenario fault-free and under a seeded fault plan and assert the
timing-free scheduling digest is identical, that no request is ever
lost to chaos, and that the faulty run itself is reproducible.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.cluster import cluster_by_name
from repro.engines.registry import create_engine
from repro.faults.plan import mixed_fault_plan
from repro.graph.datasets import load_dataset
from repro.sched.arrivals import TaskRequest
from repro.sched.policy import ServicePolicy
from repro.sched.service import SchedulerService

SCALE = 400
SEED = 23
FAULT_RATE = 0.15

#: Round-count preemption trigger: fault-timing invariant (replay adds
#: seconds, not rounds), so the faulty and fault-free runs suspend at
#: the same barriers.
POLICY = ServicePolicy(
    priority_classes=3,
    aging_seconds=None,
    preempt=True,
    preempt_after_rounds=2,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp", scale=SCALE)


@pytest.fixture(scope="module")
def cluster():
    return cluster_by_name("galaxy-8", scale=SCALE)


def requests():
    """One patient BKHS job plus urgent BPPR queries arriving just
    after it starts — enough to exercise suspend/resume."""
    stream = [TaskRequest(0, "bkhs", 96.0, 0.0, priority=2)]
    stream += [
        TaskRequest(i, "bppr", 8.0, 0.001 * i, priority=0)
        for i in range(1, 4)
    ]
    return stream


def run_service(graph, cluster, fault_plan):
    service = SchedulerService(
        create_engine("pregel+", cluster),
        graph,
        kinds=("bppr", "bkhs"),
        seed=SEED,
        task_params={"bkhs": {"sample_limit": 16}},
        fault_plan=fault_plan,
        checkpoint_every=2,
        policy=POLICY,
    )
    metrics = service.run(requests())
    return service, metrics


def scheduling_digest(service, metrics):
    """Everything chaos must not change: batch formation, ordering,
    preemption pattern, completions — no clock values."""
    return json.dumps(
        {
            "batches": [
                {
                    "kind": entry["kind"],
                    "workload": entry["workload"],
                    "rounds": entry["rounds"],
                    "priority": entry["priority"],
                    "preemptions": entry["preemptions"],
                    "aborted": entry["aborted"],
                }
                for entry in metrics.batch_log
            ],
            "completed": sorted(l.task_id for l in metrics.latencies),
            "preemptions": metrics.preemptions,
            "resumes": metrics.resumes,
            "dropped": metrics.dropped_requests,
            "flushes": metrics.flushes,
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def warmed(graph, cluster):
    """Discarded warmup: the first service in a process trains its
    memory models cold, which perturbs downstream RNG streams."""
    run_service(graph, cluster, None)
    return True


class TestChaosInvariance:
    def test_faults_do_not_change_scheduling(self, graph, cluster, warmed):
        plan = mixed_fault_plan(SEED, cluster.num_machines, FAULT_RATE)
        _, clean = run_service(graph, cluster, None)
        faulty_service, faulty = run_service(graph, cluster, plan)

        crashes = sum(
            batch.crashes
            for _, batch in faulty_service.executed_batches
        )
        assert crashes > 0, "fault plan injected no crashes; test is vacuous"
        assert clean.preemptions >= 1, "scenario never preempted"
        assert scheduling_digest(None, clean) == scheduling_digest(
            None, faulty
        )

    def test_no_request_lost_to_chaos(self, graph, cluster, warmed):
        plan = mixed_fault_plan(SEED, cluster.num_machines, FAULT_RATE)
        _, metrics = run_service(graph, cluster, plan)
        assert metrics.completed_tasks == len(requests())
        assert metrics.dropped_requests == 0
        assert {l.task_id for l in metrics.latencies} == {
            r.task_id for r in requests()
        }

    def test_faulty_run_is_reproducible(self, graph, cluster, warmed):
        plan = mixed_fault_plan(SEED, cluster.num_machines, FAULT_RATE)
        _, first = run_service(graph, cluster, plan)
        _, second = run_service(graph, cluster, plan)
        assert json.dumps(
            first.to_dict(include_latencies=True), sort_keys=True
        ) == json.dumps(
            second.to_dict(include_latencies=True), sort_keys=True
        )

    def test_chaos_costs_show_up_in_the_clock(self, graph, cluster, warmed):
        plan = mixed_fault_plan(SEED, cluster.num_machines, FAULT_RATE)
        _, clean = run_service(graph, cluster, None)
        _, faulty = run_service(graph, cluster, plan)
        # Same schedule, strictly more simulated time: replay is paid.
        assert faulty.elapsed_seconds > clean.elapsed_seconds
