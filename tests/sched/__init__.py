"""Tests for the online scheduling service (repro.sched)."""
