"""Property and integration tests for the serving tier's result cache
(repro.perf.cache.ResultCache + repro.sched.service wiring).

Three invariants carry the feature:

* **single-flight** — N duplicate concurrent requests cause exactly one
  engine execution, and every response carries byte-identical payload;
* **TTL monotonicity** — once a cached entry has expired it never
  resurfaces (without a fresh store);
* **bytes budget** — the cache's resident bytes never exceed its LRU
  budget, under arbitrary interleavings of stores and expiries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import cluster_by_name
from repro.engines.registry import create_engine
from repro.graph.datasets import load_dataset
from repro.perf.cache import ResultCache
from repro.sched.arrivals import TaskRequest
from repro.sched.policy import ServicePolicy
from repro.sched.service import SchedulerService

SCALE = 400


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp", scale=SCALE)


@pytest.fixture(scope="module")
def cluster():
    return cluster_by_name("galaxy-8", scale=SCALE)


def make_service(cluster, graph, kinds=("bppr",), **policy_kwargs):
    policy = ServicePolicy(result_cache=True, **policy_kwargs)
    return SchedulerService(
        create_engine("pregel+", cluster),
        graph,
        kinds=kinds,
        seed=9,
        policy=policy,
    )


class TestSingleFlightService:
    """The invariant through the whole serving stack."""

    def test_duplicates_execute_exactly_once(self, cluster, graph):
        service = make_service(cluster, graph)
        requests = [TaskRequest(i, "bppr", 8.0, 0.0) for i in range(5)]
        metrics = service.run(requests)

        assert len(service.executed_batches) == 1
        assert metrics.result_cache["coalesced"] == 4
        assert metrics.result_cache["stores"] == 1
        served = sorted(t.served_by for t in metrics.latencies)
        assert served == ["coalesced"] * 4 + ["executed"]
        payloads = {bytes(service.responses[i]) for i in range(5)}
        assert len(payloads) == 1

    def test_hit_is_byte_identical_to_cold_run(self, cluster, graph):
        service = make_service(cluster, graph)
        requests = [
            TaskRequest(0, "bppr", 8.0, 0.0),
            TaskRequest(1, "bppr", 8.0, 1.0e6),  # long after completion
        ]
        metrics = service.run(requests)
        assert metrics.result_cache["hits"] == 1
        assert service.responses[1] == service.responses[0]

        # A fresh service executing the same content cold must produce
        # the exact bytes the hit replayed.
        cold = make_service(cluster, graph)
        cold.run([TaskRequest(7, "bppr", 8.0, 0.0)])
        assert cold.responses[7] == service.responses[1]

    def test_different_content_never_shares_payloads(self, cluster, graph):
        service = make_service(cluster, graph)
        requests = [
            TaskRequest(0, "bppr", 8.0, 0.0),
            TaskRequest(1, "bppr", 9.0, 0.0),  # different units
        ]
        metrics = service.run(requests)
        assert metrics.result_cache["coalesced"] == 0
        assert service.responses[0] != service.responses[1]

    def test_dropped_leader_drops_its_joiners(self, cluster, graph):
        service = make_service(
            cluster,
            graph,
            kinds=("bppr", "mssp"),
            drop_expired=True,
        )
        requests = [
            # A long job occupies the service first.
            TaskRequest(0, "mssp", 24.0, 0.0),
            # Leader with a hopeless deadline, plus one duplicate that
            # coalesces onto it while it waits.
            TaskRequest(1, "bppr", 8.0, 1.0, deadline_seconds=0.5),
            TaskRequest(2, "bppr", 8.0, 2.0),
        ]
        metrics = service.run(requests)
        assert metrics.dropped_requests == 2
        dropped = sorted(d["task_id"] for d in metrics.drop_log)
        assert dropped == [1, 2]
        assert all(d["reason"] == "expired" for d in metrics.drop_log)
        assert 1 not in service.responses and 2 not in service.responses


class TestResultCacheProtocol:
    def test_enlist_requires_a_leader(self):
        cache = ResultCache()
        with pytest.raises(KeyError):
            cache.enlist(("k",), "token")

    def test_leader_then_joiners_fan_out_in_order(self):
        cache = ResultCache()
        key = ("k",)
        assert cache.leader(key) is True
        assert cache.leader(key) is False
        cache.enlist(key, "a")
        cache.enlist(key, "b")
        assert cache.complete(key, b"payload", 0.0) == ["a", "b"]
        assert not cache.inflight(key)
        assert cache.lookup(key, 0.0) == b"payload"
        assert cache.stats.coalesced == 2

    def test_abandon_returns_joiners_and_clears_the_key(self):
        cache = ResultCache()
        key = ("k",)
        cache.leader(key)
        cache.enlist(key, "x")
        assert cache.abandon(key) == ["x"]
        assert not cache.inflight(key)
        assert cache.lookup(key, 0.0) is None
        # The key is free again: a new leader can register.
        assert cache.leader(key) is True

    def test_oversized_payload_is_not_stored(self):
        cache = ResultCache(max_bytes=4)
        cache.leader(("k",))
        cache.complete(("k",), b"12345", 0.0)
        assert len(cache) == 0
        assert cache.total_bytes == 0
        assert cache.stats.evictions == 1


class TestTTLExpiry:
    @settings(max_examples=80, deadline=None)
    @given(
        ttl=st.floats(min_value=0.1, max_value=50.0),
        stored_at=st.floats(min_value=0.0, max_value=100.0),
        probes=st.lists(
            st.floats(min_value=0.0, max_value=1000.0),
            min_size=1,
            max_size=12,
        ),
    )
    def test_expiry_is_exact_and_monotonic(self, ttl, stored_at, probes):
        cache = ResultCache(ttl_seconds=ttl)
        key = ("k",)
        assert cache.lookup(key, stored_at) is None
        assert cache.leader(key)
        cache.complete(key, b"abc", stored_at)

        alive = True
        for now in sorted(stored_at + p for p in probes):
            hit = cache.lookup(key, now) is not None
            assert hit == ((now - stored_at) <= ttl)
            # Monotonic: once expired, never alive again.
            assert alive or not hit
            alive = hit


class TestBytesBudget:
    @settings(max_examples=80, deadline=None)
    @given(
        budget=st.integers(min_value=1, max_value=4000),
        ttl=st.one_of(
            st.none(), st.floats(min_value=0.5, max_value=30.0)
        ),
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),     # key id
                st.integers(min_value=1, max_value=2000),  # payload size
                st.floats(min_value=0.0, max_value=20.0),  # time step
            ),
            max_size=40,
        ),
    )
    def test_never_exceeds_budget(self, budget, ttl, ops):
        cache = ResultCache(ttl_seconds=ttl, max_bytes=float(budget))
        now = 0.0
        for key_id, size, step in ops:
            now += step
            key = ("k", key_id)
            if cache.lookup(key, now) is None and cache.leader(key):
                cache.complete(key, b"x" * size, now)
            assert cache.total_bytes <= budget
            assert cache.total_bytes >= 0
            assert len(cache) <= budget  # every entry holds >= 1 byte

class TestTenantQuotas:
    """Per-tenant byte quotas mirror the admission memory quotas: a
    tenant over its cap evicts its *own* least-recent entries first,
    and never dips into another tenant's residency."""

    def _cache(self, **tenant_bytes):
        return ResultCache(max_bytes=100.0, tenant_bytes=tenant_bytes)

    def _store(self, cache, key_id, payload, tenant, now=0.0):
        key = ("k", key_id)
        cache.leader(key)
        cache.complete(key, payload, now, tenant=tenant)

    def test_tenant_over_cap_evicts_its_own_lru(self):
        cache = self._cache(acme=10.0)
        self._store(cache, 0, b"aaaa", "acme")     # 4 bytes
        self._store(cache, 1, b"bbbb", "acme")     # 8 bytes
        self._store(cache, 2, b"gggggggg", "globex")
        self._store(cache, 3, b"cccc", "acme")     # would be 12 > 10
        # acme's oldest entry went; globex's survived untouched.
        assert cache.lookup(("k", 0), 0.0) is None
        assert cache.lookup(("k", 1), 0.0) == b"bbbb"
        assert cache.lookup(("k", 3), 0.0) == b"cccc"
        assert cache.lookup(("k", 2), 0.0) == b"gggggggg"
        assert cache.tenant_resident_bytes("acme") == 8.0

    def test_payload_over_tenant_cap_is_never_stored(self):
        cache = self._cache(acme=4.0)
        self._store(cache, 0, b"12345", "acme")
        assert cache.lookup(("k", 0), 0.0) is None
        assert cache.tenant_resident_bytes("acme") == 0.0
        assert cache.tenant_summary()["acme"]["cache_evictions"] == 1

    def test_unlisted_tenant_shares_global_budget_only(self):
        cache = self._cache(acme=8.0)
        self._store(cache, 0, b"x" * 60, "globex")
        self._store(cache, 1, b"y" * 40, "globex")
        assert cache.total_bytes == 100.0

    def test_tenant_summary_counts_hits_and_evictions(self):
        cache = self._cache(acme=8.0)
        self._store(cache, 0, b"aaaa", "acme")
        assert cache.lookup(("k", 0), 0.0, tenant="acme") == b"aaaa"
        assert cache.lookup(("k", 0), 0.0, tenant="globex") == b"aaaa"
        self._store(cache, 1, b"bbbbbbbb", "acme")  # evicts key 0
        summary = cache.tenant_summary()
        assert summary["acme"]["cache_hits"] == 1
        assert summary["acme"]["cache_stores"] == 2
        assert summary["acme"]["cache_evictions"] == 1
        assert summary["acme"]["cache_bytes"] == 8.0
        assert summary["globex"]["cache_hits"] == 1

    def test_quota_invariant_under_arbitrary_interleavings(self):
        @settings(max_examples=60, deadline=None)
        @given(
            caps=st.tuples(
                st.integers(min_value=1, max_value=40),
                st.integers(min_value=1, max_value=40),
            ),
            ops=st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=7),     # key id
                    st.integers(min_value=1, max_value=30),    # size
                    st.sampled_from(["acme", "globex", "dey"]),
                ),
                max_size=40,
            ),
        )
        def check(caps, ops):
            tenant_bytes = {"acme": float(caps[0]), "globex": float(caps[1])}
            cache = ResultCache(
                max_bytes=60.0, tenant_bytes=tenant_bytes
            )
            for key_id, size, tenant in ops:
                key = ("k", key_id)
                if cache.lookup(key, 0.0, tenant=tenant) is None:
                    if cache.leader(key):
                        cache.complete(key, b"x" * size, 0.0, tenant=tenant)
                assert cache.total_bytes <= 60.0
                for name, cap in tenant_bytes.items():
                    assert cache.tenant_resident_bytes(name) <= cap

        check()


class TestTenantQuotaService:
    def test_quotas_surface_in_tenant_summary(self, cluster, graph):
        service = make_service(
            cluster,
            graph,
            result_cache_bytes=1e9,
            tenant_cache_quotas={"acme": 0.5, "globex": 0.5},
        )
        requests = [
            TaskRequest(0, "bppr", 8.0, 0.0, tenant="acme"),
            TaskRequest(1, "bppr", 8.0, 1.0e6, tenant="globex"),  # hit
        ]
        metrics = service.run(requests)
        assert metrics.tenant_cache is not None
        summary = metrics.tenant_summary()
        assert summary["acme"]["cache_stores"] == 1
        assert summary["globex"]["cache_hits"] == 1
        assert summary["acme"]["cache_bytes"] > 0


class TestCostAwareAdmission:
    def test_cheap_payloads_skip_the_store(self, cluster, graph):
        service = make_service(
            cluster, graph, calibrate=True, cache_min_seconds=1e9
        )
        requests = [
            TaskRequest(0, "bppr", 8.0, 0.0),
            TaskRequest(1, "bppr", 8.0, 1.0e6),  # would have been a hit
        ]
        metrics = service.run(requests)
        # Every predicted recompute is below the (absurd) threshold:
        # nothing is cached, the repeat executes again.
        assert metrics.result_cache["stores"] == 0
        assert metrics.result_cache["hits"] == 0
        assert len(service.executed_batches) == 2
        assert service.calibration_summary()["cache_skips"] == 2
        assert service.responses[1] == service.responses[0]

    def test_zero_threshold_admits_everything(self, cluster, graph):
        service = make_service(
            cluster, graph, calibrate=True, cache_min_seconds=0.0
        )
        requests = [
            TaskRequest(0, "bppr", 8.0, 0.0),
            TaskRequest(1, "bppr", 8.0, 1.0e6),
        ]
        metrics = service.run(requests)
        assert metrics.result_cache["stores"] == 1
        assert metrics.result_cache["hits"] == 1
        assert service.calibration_summary()["cache_skips"] == 0
