"""Tests for shared-budget admission control (repro.sched.admission).

The property tests drive the controller with synthetic power-law
models so Hypothesis can vary the model shapes freely; the invariant
under test is Equation 1 itself — for every batch the controller
admits, the projected ``Σ_k Mr_k + M*`` never exceeds the ``p·M``
budget.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import MachineSpec
from repro.errors import SchedulingError, TuningError
from repro.sched.admission import AdmissionController
from repro.tuning.memory_model import MemoryCostModel, PowerLawModel
from repro.tuning.planner import plan_batches

#: Relative slack for float round-off in the budget comparison.
EPS = 1e-9


def make_machine(memory_bytes: float = 1e9) -> MachineSpec:
    return MachineSpec(
        memory_bytes=memory_bytes,
        os_reserve_bytes=0.0,
        cores=4,
        compute_ops_per_second=1e9,
    )


def make_model(
    peak=(2e4, 1.0, 1e6), residual=(1e4, 0.9, 5e5)
) -> MemoryCostModel:
    return MemoryCostModel(
        peak=PowerLawModel(*peak), residual=PowerLawModel(*residual)
    )


class TestAdmissionController:
    def test_single_kind_collapses_to_plan_batches(self):
        machine = make_machine()
        model = make_model()
        total = 30000.0
        schedule = plan_batches(model, total, machine, overload_fraction=0.5)
        assert len(schedule) > 1

        controller = AdmissionController(
            {"bppr": model}, machine, overload_fraction=0.5
        )
        admitted = []
        remaining = total
        while remaining > 0:
            allowed = controller.admissible_units("bppr")
            batch = min(remaining, allowed)
            controller.admit("bppr", batch)
            admitted.append(batch)
            remaining -= batch
        assert admitted == schedule

    def test_unknown_kind(self):
        controller = AdmissionController(
            {"bppr": make_model()}, make_machine()
        )
        with pytest.raises(SchedulingError, match="unknown task kind"):
            controller.admissible_units("pagerank")

    def test_requires_models_and_valid_fraction(self):
        with pytest.raises(SchedulingError):
            AdmissionController({}, make_machine())
        with pytest.raises(SchedulingError):
            AdmissionController(
                {"bppr": make_model()}, make_machine(), overload_fraction=0.0
            )

    def test_oversized_admit_is_rejected(self):
        controller = AdmissionController(
            {"bppr": make_model()}, make_machine()
        )
        allowed = controller.admissible_units("bppr")
        with pytest.raises(TuningError):
            controller.admit("bppr", allowed + 1.0)

    def test_budget_is_shared_across_kinds(self):
        controller = AdmissionController(
            {"bppr": make_model(), "mssp": make_model()}, make_machine()
        )
        before = controller.admissible_units("mssp")
        controller.admit("bppr", controller.admissible_units("bppr"))
        after = controller.admissible_units("mssp")
        assert after < before

    def test_release_all_restores_the_budget(self):
        controller = AdmissionController(
            {"bppr": make_model(), "mssp": make_model()}, make_machine()
        )
        baseline = controller.admissible_units("bppr")
        controller.admit("bppr", baseline)
        controller.admit("mssp", controller.admissible_units("mssp"))
        assert controller.residual_bytes() > 0
        freed = controller.release_all()
        assert freed > 0
        assert controller.residual_bytes() == 0
        assert controller.admissible_units("bppr") == baseline


model_params = st.tuples(
    st.floats(min_value=1e2, max_value=1e5),  # a
    st.floats(min_value=0.5, max_value=1.5),  # b
    st.floats(min_value=0.0, max_value=5e6),  # c
)


class TestAdmissionInvariant:
    """Admission never exceeds the ``p`` fraction of machine memory."""

    @settings(max_examples=60, deadline=None)
    @given(
        peaks=st.lists(model_params, min_size=1, max_size=3),
        residuals=st.lists(model_params, min_size=3, max_size=3),
        memory=st.floats(min_value=1e8, max_value=1e10),
        fraction=st.floats(min_value=0.3, max_value=1.0),
        actions=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=1,
            max_size=30,
        ),
    )
    def test_projected_bytes_never_exceed_budget(
        self, peaks, residuals, memory, fraction, actions
    ):
        kinds = [f"kind{i}" for i in range(len(peaks))]
        models = {
            kind: MemoryCostModel(
                peak=PowerLawModel(*peaks[i]),
                residual=PowerLawModel(*residuals[i]),
            )
            for i, kind in enumerate(kinds)
        }
        controller = AdmissionController(
            models, make_machine(memory), overload_fraction=fraction
        )
        for index, share in actions:
            kind = kinds[index % len(kinds)]
            allowed = controller.admissible_units(kind)
            if allowed < 1.0:
                # Backpressure point: the service would flush here.
                controller.release_all()
                continue
            units = max(1.0, float(int(allowed * share)))
            projected = controller.projected_bytes(kind, units)
            assert projected <= controller.budget * (1 + EPS)
            controller.admit(kind, units)
        assert controller.residual_bytes() >= 0


class TestTenantQuotas:
    def test_quota_caps_below_the_global_budget(self):
        machine = make_machine()
        controller = AdmissionController(
            {"bppr": make_model()},
            machine,
            overload_fraction=0.8,
            tenant_quotas={"acme": 0.1 * 0.8 * machine.memory_bytes},
        )
        capped = controller.tenant_admissible_units("bppr", "acme")
        assert capped < controller.admissible_units("bppr")
        # Unlisted tenants are unconstrained.
        assert controller.tenant_admissible_units(
            "bppr", "globex"
        ) == float("inf")

    def test_pinned_shares_charge_the_tenant(self):
        machine = make_machine()
        quota = 0.2 * 0.8 * machine.memory_bytes
        controller = AdmissionController(
            {"bppr": make_model()},
            machine,
            overload_fraction=0.8,
            tenant_quotas={"acme": quota},
        )
        before = controller.tenant_admissible_units("bppr", "acme")
        controller.pin("suspended:bppr", 1e7, tenants={"acme": 1e7})
        assert controller.tenant_charged_bytes("acme") == 1e7
        assert controller.tenant_admissible_units("bppr", "acme") < before
        controller.unpin("suspended:bppr")
        assert controller.tenant_charged_bytes("acme") == 0.0

    def test_release_all_clears_tenant_residuals_not_pins(self):
        machine = make_machine()
        controller = AdmissionController(
            {"bppr": make_model()},
            machine,
            overload_fraction=0.8,
            tenant_quotas={"acme": 0.5 * 0.8 * machine.memory_bytes},
        )
        take = min(
            controller.admissible_units("bppr"),
            controller.tenant_admissible_units("bppr", "acme"),
        )
        controller.admit("bppr", take, tenant_units={"acme": take})
        controller.pin("suspended:bppr", 5e6, tenants={"acme": 5e6})
        assert controller.tenant_resident_bytes("acme") > 0
        controller.release_all()
        assert controller.tenant_resident_bytes("acme") == 0.0
        assert controller.tenant_pinned_bytes("acme") == 5e6


class TestTenantQuotaInvariant:
    """Per-tenant analogue of Equation 1: for random quota/arrival
    streams, no tenant's resident+pinned bytes ever exceed its quota,
    and the global budget invariant still holds on every admission."""

    @settings(max_examples=60, deadline=None)
    @given(
        peaks=st.lists(model_params, min_size=1, max_size=3),
        residuals=st.lists(model_params, min_size=3, max_size=3),
        memory=st.floats(min_value=1e8, max_value=1e10),
        fraction=st.floats(min_value=0.3, max_value=1.0),
        quota_fracs=st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=2,
            max_size=3,
        ),
        actions=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # kind index
                st.integers(min_value=0, max_value=2),  # tenant index
                st.floats(min_value=0.05, max_value=1.0),  # batch share
            ),
            min_size=1,
            max_size=30,
        ),
    )
    def test_tenant_charges_never_exceed_quotas(
        self, peaks, residuals, memory, fraction, quota_fracs, actions
    ):
        kinds = [f"kind{i}" for i in range(len(peaks))]
        models = {
            kind: MemoryCostModel(
                peak=PowerLawModel(*peaks[i]),
                residual=PowerLawModel(*residuals[i]),
            )
            for i, kind in enumerate(kinds)
        }
        budget = fraction * memory
        tenants = [f"t{i}" for i in range(len(quota_fracs))]
        quotas = {
            tenant: frac * budget
            for tenant, frac in zip(tenants, quota_fracs)
        }
        controller = AdmissionController(
            models,
            make_machine(memory),
            overload_fraction=fraction,
            tenant_quotas=quotas,
        )
        for kind_index, tenant_index, share in actions:
            kind = kinds[kind_index % len(kinds)]
            tenant = tenants[tenant_index % len(tenants)]
            allowed = min(
                controller.admissible_units(kind),
                controller.tenant_admissible_units(kind, tenant),
            )
            if allowed < 1.0:
                # Backpressure point: the service would flush here.
                controller.release_all()
                continue
            units = max(1.0, float(int(allowed * share)))
            projected = controller.projected_bytes(kind, units)
            assert projected <= controller.budget * (1 + EPS)
            controller.admit(kind, units, tenant_units={tenant: units})
            for name in tenants:
                assert controller.tenant_charged_bytes(name) <= quotas[
                    name
                ] * (1 + EPS)
        assert controller.residual_bytes() >= 0
