"""Tests for shared-budget admission control (repro.sched.admission).

The property tests drive the controller with synthetic power-law
models so Hypothesis can vary the model shapes freely; the invariant
under test is Equation 1 itself — for every batch the controller
admits, the projected ``Σ_k Mr_k + M*`` never exceeds the ``p·M``
budget.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import MachineSpec
from repro.errors import SchedulingError, TuningError
from repro.sched.admission import AdmissionController
from repro.tuning.memory_model import MemoryCostModel, PowerLawModel
from repro.tuning.planner import plan_batches

#: Relative slack for float round-off in the budget comparison.
EPS = 1e-9


def make_machine(memory_bytes: float = 1e9) -> MachineSpec:
    return MachineSpec(
        memory_bytes=memory_bytes,
        os_reserve_bytes=0.0,
        cores=4,
        compute_ops_per_second=1e9,
    )


def make_model(
    peak=(2e4, 1.0, 1e6), residual=(1e4, 0.9, 5e5)
) -> MemoryCostModel:
    return MemoryCostModel(
        peak=PowerLawModel(*peak), residual=PowerLawModel(*residual)
    )


class TestAdmissionController:
    def test_single_kind_collapses_to_plan_batches(self):
        machine = make_machine()
        model = make_model()
        total = 30000.0
        schedule = plan_batches(model, total, machine, overload_fraction=0.5)
        assert len(schedule) > 1

        controller = AdmissionController(
            {"bppr": model}, machine, overload_fraction=0.5
        )
        admitted = []
        remaining = total
        while remaining > 0:
            allowed = controller.admissible_units("bppr")
            batch = min(remaining, allowed)
            controller.admit("bppr", batch)
            admitted.append(batch)
            remaining -= batch
        assert admitted == schedule

    def test_unknown_kind(self):
        controller = AdmissionController(
            {"bppr": make_model()}, make_machine()
        )
        with pytest.raises(SchedulingError, match="unknown task kind"):
            controller.admissible_units("pagerank")

    def test_requires_models_and_valid_fraction(self):
        with pytest.raises(SchedulingError):
            AdmissionController({}, make_machine())
        with pytest.raises(SchedulingError):
            AdmissionController(
                {"bppr": make_model()}, make_machine(), overload_fraction=0.0
            )

    def test_oversized_admit_is_rejected(self):
        controller = AdmissionController(
            {"bppr": make_model()}, make_machine()
        )
        allowed = controller.admissible_units("bppr")
        with pytest.raises(TuningError):
            controller.admit("bppr", allowed + 1.0)

    def test_budget_is_shared_across_kinds(self):
        controller = AdmissionController(
            {"bppr": make_model(), "mssp": make_model()}, make_machine()
        )
        before = controller.admissible_units("mssp")
        controller.admit("bppr", controller.admissible_units("bppr"))
        after = controller.admissible_units("mssp")
        assert after < before

    def test_release_all_restores_the_budget(self):
        controller = AdmissionController(
            {"bppr": make_model(), "mssp": make_model()}, make_machine()
        )
        baseline = controller.admissible_units("bppr")
        controller.admit("bppr", baseline)
        controller.admit("mssp", controller.admissible_units("mssp"))
        assert controller.residual_bytes() > 0
        freed = controller.release_all()
        assert freed > 0
        assert controller.residual_bytes() == 0
        assert controller.admissible_units("bppr") == baseline


model_params = st.tuples(
    st.floats(min_value=1e2, max_value=1e5),  # a
    st.floats(min_value=0.5, max_value=1.5),  # b
    st.floats(min_value=0.0, max_value=5e6),  # c
)


class TestAdmissionInvariant:
    """Admission never exceeds the ``p`` fraction of machine memory."""

    @settings(max_examples=60, deadline=None)
    @given(
        peaks=st.lists(model_params, min_size=1, max_size=3),
        residuals=st.lists(model_params, min_size=3, max_size=3),
        memory=st.floats(min_value=1e8, max_value=1e10),
        fraction=st.floats(min_value=0.3, max_value=1.0),
        actions=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=1,
            max_size=30,
        ),
    )
    def test_projected_bytes_never_exceed_budget(
        self, peaks, residuals, memory, fraction, actions
    ):
        kinds = [f"kind{i}" for i in range(len(peaks))]
        models = {
            kind: MemoryCostModel(
                peak=PowerLawModel(*peaks[i]),
                residual=PowerLawModel(*residuals[i]),
            )
            for i, kind in enumerate(kinds)
        }
        controller = AdmissionController(
            models, make_machine(memory), overload_fraction=fraction
        )
        for index, share in actions:
            kind = kinds[index % len(kinds)]
            allowed = controller.admissible_units(kind)
            if allowed < 1.0:
                # Backpressure point: the service would flush here.
                controller.release_all()
                continue
            units = max(1.0, float(int(allowed * share)))
            projected = controller.projected_bytes(kind, units)
            assert projected <= controller.budget * (1 + EPS)
            controller.admit(kind, units)
        assert controller.residual_bytes() >= 0
