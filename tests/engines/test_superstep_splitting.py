"""Tests for the Giraph superstep-splitting extension (Section 2.2 iii)."""

import pytest

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8
from repro.engines.registry import engine_profile
from repro.graph.datasets import load_dataset
from repro.tasks.bppr import bppr_task


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp", scale=400)


class TestSuperstepSplitting:
    def test_profile_registered(self):
        profile = engine_profile("giraph(split)")
        assert profile.superstep_split_threshold_messages is not None
        assert engine_profile("giraph").superstep_split_threshold_messages is None

    def test_splitting_rescues_full_parallelism(self, graph):
        """A workload that overloads stock Giraph at 1 batch completes
        under splitting — per-sub-step traffic stays below the walls."""
        plain = MultiProcessingJob("giraph", galaxy8(scale=400)).run(
            bppr_task(graph, 8192), num_batches=1, seed=1
        )
        split = MultiProcessingJob("giraph(split)", galaxy8(scale=400)).run(
            bppr_task(graph, 8192), num_batches=1, seed=1
        )
        assert plain.overloaded
        assert not split.overloaded

    def test_total_messages_preserved(self, graph):
        """Splitting changes when messages move, not how many."""
        plain = MultiProcessingJob("giraph", galaxy8(scale=400)).run(
            bppr_task(graph, 256), num_batches=1, seed=1
        )
        split = MultiProcessingJob("giraph(split)", galaxy8(scale=400)).run(
            bppr_task(graph, 256), num_batches=1, seed=1
        )
        assert split.total_messages == pytest.approx(
            plain.total_messages, rel=1e-6
        )

    def test_light_rounds_not_split(self, graph):
        """Below the threshold the engines behave identically."""
        plain = MultiProcessingJob("giraph", galaxy8(scale=400)).run(
            bppr_task(graph, 64), num_batches=1, seed=1
        )
        split = MultiProcessingJob("giraph(split)", galaxy8(scale=400)).run(
            bppr_task(graph, 64), num_batches=1, seed=1
        )
        assert split.seconds == pytest.approx(plain.seconds)

    def test_splitting_substitutes_for_batching(self, graph):
        """With splitting on, extra workload batching only adds startup
        cost — the engine already caps per-step congestion itself."""
        job = MultiProcessingJob("giraph(split)", galaxy8(scale=400))
        one = job.run(bppr_task(graph, 8192), num_batches=1, seed=1)
        four = job.run(bppr_task(graph, 8192), num_batches=4, seed=1)
        assert not one.overloaded
        assert one.seconds < four.seconds

    def test_memory_capped_by_splitting(self, graph):
        plain = MultiProcessingJob("giraph", galaxy8(scale=400)).run(
            bppr_task(graph, 2048), num_batches=1, seed=1
        )
        split = MultiProcessingJob("giraph(split)", galaxy8(scale=400)).run(
            bppr_task(graph, 2048), num_batches=1, seed=1
        )
        assert split.peak_memory_bytes < plain.peak_memory_bytes
