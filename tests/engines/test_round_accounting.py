"""Property-style tests on per-round accounting invariants.

These pin down the engine's translation from kernel summaries to round
loads — the accounting every experiment depends on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import galaxy8
from repro.engines.registry import create_engine
from repro.graph.generators import chung_lu
from repro.tasks.bppr import bppr_task
from repro.tasks.mssp import mssp_task


@pytest.fixture(scope="module")
def graph():
    return chung_lu(400, avg_degree=8.0, seed=77)


def run(engine_name, graph, task, sizes, machines=8, seed=1):
    engine = create_engine(
        engine_name, galaxy8(scale=400).with_machines(machines)
    )
    return engine.run_job(task, sizes, seed=seed)


class TestRoundInvariants:
    def test_rounds_have_positive_time(self, graph):
        metrics = run("pregel+", graph, bppr_task(graph, 256), [256.0])
        for batch in metrics.batches:
            for r in batch.rounds:
                assert r.seconds > 0

    def test_message_totals_consistent(self, graph):
        metrics = run("pregel+", graph, bppr_task(graph, 256), [256.0])
        total = sum(
            r.network_messages + r.local_messages
            for b in metrics.batches
            for r in b.rounds
        )
        assert metrics.total_messages == pytest.approx(total)

    def test_network_messages_bounded_by_total(self, graph):
        metrics = run("pregel+", graph, bppr_task(graph, 256), [256.0])
        assert metrics.network_messages <= metrics.total_messages + 1e-9

    def test_monotone_message_decay_within_bppr_batch(self, graph):
        metrics = run("pregel+", graph, bppr_task(graph, 512), [512.0])
        wire = [
            r.network_messages + r.local_messages
            for r in metrics.batches[0].rounds
        ]
        # Walk mass decays every round (alpha-stops + danglings).
        assert all(a >= b for a, b in zip(wire, wire[1:]))

    def test_peak_memory_includes_graph_floor(self, graph):
        tiny = run("pregel+", graph, bppr_task(graph, 1), [1.0])
        assert tiny.peak_memory_bytes > 0

    def test_bkhs_round_count_via_engine(self, graph):
        from repro.tasks.bkhs import bkhs_task

        metrics = run(
            "pregel+", graph, bkhs_task(graph, 8, k=3, sample_limit=8), [8.0]
        )
        assert metrics.num_rounds == 4  # k + 1

    def test_mssp_single_batch_round_count_matches_kernel(self, graph):
        metrics = run(
            "pregel+", graph, mssp_task(graph, 8, sample_limit=8), [8.0]
        )
        # BFS diameter of a dense power-law graph is small.
        assert 2 <= metrics.num_rounds <= 20

    def test_cutoff_never_exceeded_by_reported_time(self, graph):
        heavy = run("pregel+", graph, bppr_task(graph, 200000), [200000.0])
        assert heavy.overloaded
        assert heavy.seconds == 6000.0


@given(
    workload=st.integers(min_value=8, max_value=512),
    batches=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=15, deadline=None)
def test_workload_conservation_property(workload, batches):
    """Total walks terminated equals n x W regardless of batching."""
    graph = chung_lu(120, 5.0, seed=13)
    if batches > workload:
        return
    from repro.batching.schemes import equal_batches

    engine = create_engine("pregel+", galaxy8(scale=400))
    metrics = engine.run_job(
        bppr_task(graph, workload),
        equal_batches(workload, batches),
        seed=3,
    )
    residual = metrics.extras["residual_memory_bytes"]
    expected_walks = workload * graph.num_vertices
    assert residual == pytest.approx(expected_walks * 12.0, rel=0.01)


@given(batches=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=8, deadline=None)
def test_total_wire_messages_batching_invariant(batches):
    """Batching splits work but conserves the total message volume
    (within the tail-truncation tolerance of the mass threshold)."""
    graph = chung_lu(120, 5.0, seed=13)
    engine = create_engine("pregel+", galaxy8(scale=400))
    one = engine.run_job(bppr_task(graph, 512), [512.0], seed=3)
    split = engine.run_job(
        bppr_task(graph, 512), [512.0 / batches] * batches, seed=3
    )
    assert split.total_messages == pytest.approx(
        one.total_messages, rel=0.02
    )
