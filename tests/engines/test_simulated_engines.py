"""Behavioural tests for the simulated VC-system engines."""

import pytest

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8
from repro.engines.registry import (
    ENGINE_NAMES,
    create_engine,
    engine_profile,
)
from repro.errors import BatchingError, UnknownEngineError
from repro.graph.datasets import load_dataset
from repro.tasks.bppr import bppr_task
from repro.tasks.mssp import mssp_task


@pytest.fixture(scope="module")
def dblp():
    return load_dataset("dblp", scale=400)


@pytest.fixture(scope="module")
def cluster():
    return galaxy8(scale=400)


class TestRegistry:
    def test_all_seven_paper_modes_plus_extensions(self):
        assert set(ENGINE_NAMES) == {
            "pregel+",
            "pregel+(mirror)",
            "giraph",
            "giraph(async)",
            "giraph(split)",
            "graphd",
            "graphlab",
            "graphlab(async)",
            "pregel+(wholegraph)",
        }

    def test_aliases(self):
        assert engine_profile("GraphLab(sync)").name == "graphlab"
        assert engine_profile("pregelplus").name == "pregel+"
        assert engine_profile("Giraph-Async").name == "giraph(async)"

    def test_unknown_engine(self):
        with pytest.raises(UnknownEngineError):
            engine_profile("spark")

    def test_profiles_reflect_paper_table1(self):
        # Table 1 (systems): synchronous + out-of-core columns.
        assert engine_profile("graphd").out_of_core
        assert not engine_profile("pregel+").out_of_core
        assert engine_profile("graphlab(async)").is_async
        assert not engine_profile("graphlab").is_async
        assert engine_profile("giraph").cpu_factor > engine_profile(
            "pregel+"
        ).cpu_factor


class TestRunJob:
    def test_every_engine_completes_a_small_job(self, dblp, cluster):
        for name in ENGINE_NAMES:
            engine = create_engine(name, cluster)
            metrics = engine.run_job(bppr_task(dblp, 64), [64.0], seed=1)
            assert metrics.engine == name
            assert metrics.num_rounds > 0
            assert metrics.seconds > 0

    def test_batch_sizes_must_sum_to_workload(self, dblp, cluster):
        engine = create_engine("pregel+", cluster)
        with pytest.raises(BatchingError):
            engine.run_job(bppr_task(dblp, 100), [10.0, 10.0], seed=1)

    def test_empty_batches_rejected(self, dblp, cluster):
        engine = create_engine("pregel+", cluster)
        with pytest.raises(BatchingError):
            engine.run_job(bppr_task(dblp, 100), [], seed=1)

    def test_deterministic_given_seed(self, dblp, cluster):
        engine = create_engine("pregel+", cluster)
        a = engine.run_job(bppr_task(dblp, 256), [128.0, 128.0], seed=5)
        b = engine.run_job(bppr_task(dblp, 256), [128.0, 128.0], seed=5)
        assert a.seconds == b.seconds
        assert a.total_messages == b.total_messages

    def test_more_batches_more_rounds(self, dblp, cluster):
        engine = create_engine("pregel+", cluster)
        one = engine.run_job(bppr_task(dblp, 512), [512.0], seed=1)
        four = engine.run_job(
            bppr_task(dblp, 512), [128.0] * 4, seed=1
        )
        assert four.num_rounds > one.num_rounds

    def test_more_batches_less_congestion(self, dblp, cluster):
        engine = create_engine("pregel+", cluster)
        one = engine.run_job(bppr_task(dblp, 2048), [2048.0], seed=1)
        four = engine.run_job(bppr_task(dblp, 2048), [512.0] * 4, seed=1)
        assert four.messages_per_round < one.messages_per_round

    def test_residual_accumulates_across_batches(self, dblp, cluster):
        engine = create_engine("pregel+", cluster)
        metrics = engine.run_job(
            bppr_task(dblp, 300), [100.0] * 3, seed=1
        )
        residuals = [b.residual_memory_after_bytes for b in metrics.batches]
        assert residuals[0] < residuals[1] < residuals[2]
        assert metrics.batches[1].residual_memory_bytes == residuals[0]

    def test_overload_on_huge_workload(self, dblp, cluster):
        engine = create_engine("pregel+", cluster)
        metrics = engine.run_job(
            bppr_task(dblp, 50000), [50000.0], seed=1
        )
        assert metrics.overloaded
        assert metrics.time_label() == "Overload"

    def test_graphd_never_memory_overloads(self, dblp, cluster):
        engine = create_engine("graphd", cluster)
        metrics = engine.run_job(
            bppr_task(dblp, 16384), [16384.0], seed=1
        )
        # GraphD caps memory; it may be slow (or time out) but never
        # reports a *memory* overload.
        reasons = {b.overload_reason for b in metrics.batches}
        assert "memory" not in reasons

    def test_graphd_spills_to_disk(self, dblp, cluster):
        engine = create_engine("graphd", cluster)
        metrics = engine.run_job(bppr_task(dblp, 1024), [1024.0], seed=1)
        assert metrics.batches[0].spilled_bytes > 0

    def test_in_memory_engine_never_spills(self, dblp, cluster):
        engine = create_engine("pregel+", cluster)
        metrics = engine.run_job(bppr_task(dblp, 1024), [1024.0], seed=1)
        assert metrics.batches[0].spilled_bytes == 0

    def test_wholegraph_no_network_traffic(self, dblp, cluster):
        engine = create_engine("pregel+(wholegraph)", cluster)
        metrics = engine.run_job(bppr_task(dblp, 128), [128.0], seed=1)
        assert metrics.network_messages == 0.0
        assert metrics.aggregation_seconds > 0.0

    def test_broadcast_interface_amplifies_same_workload(self, dblp, cluster):
        # Section 3: under the broadcast-only interface "the
        # implementation of a random walk step has to send out more
        # messages than necessary" — at an equal workload the mirror
        # engine moves *more* wire messages than point-to-point Pregel+.
        plain = create_engine("pregel+", cluster).run_job(
            bppr_task(dblp, 512), [512.0], seed=1
        )
        mirrored = create_engine("pregel+(mirror)", cluster).run_job(
            bppr_task(dblp, 512), [512.0], seed=1
        )
        assert mirrored.network_messages > plain.network_messages

    def test_mirror_at_paper_workload_cheaper_than_pregel_at_its_own(
        self, dblp, cluster
    ):
        # The paper pairs Pregel+(mirror) at W=160 with Pregel+ at
        # W=10240 (Figure 2): the mirror setting moves far less traffic.
        # (2 batches so the Pregel+ run completes rather than hitting
        # the overload cutoff with a truncated message count.)
        plain = create_engine("pregel+", cluster).run_job(
            bppr_task(dblp, 10240), [5120.0, 5120.0], seed=1
        )
        mirrored = create_engine("pregel+(mirror)", cluster).run_job(
            bppr_task(dblp, 160), [160.0], seed=1
        )
        assert not plain.overloaded
        assert mirrored.network_messages < plain.network_messages

    def test_giraph_uses_more_memory_than_pregelplus(self, dblp, cluster):
        giraph = create_engine("giraph", cluster).run_job(
            bppr_task(dblp, 512), [512.0], seed=1
        )
        pregel = create_engine("pregel+", cluster).run_job(
            bppr_task(dblp, 512), [512.0], seed=1
        )
        assert giraph.peak_memory_bytes > pregel.peak_memory_bytes

    def test_async_graphlab_sends_more_than_sync(self, dblp, cluster):
        sync = create_engine("graphlab", cluster).run_job(
            bppr_task(dblp, 256), [256.0], seed=1
        )
        async_ = create_engine("graphlab(async)", cluster).run_job(
            bppr_task(dblp, 256), [256.0], seed=1
        )
        assert async_.network_messages > sync.network_messages


class TestMultiProcessingJob:
    def test_run_with_num_batches(self, dblp, cluster):
        job = MultiProcessingJob("pregel+", cluster)
        metrics = job.run(bppr_task(dblp, 100), num_batches=4, seed=1)
        assert metrics.num_batches == 4
        assert metrics.batch_sizes == [25.0, 25.0, 25.0, 25.0]

    def test_run_with_explicit_schedule(self, dblp, cluster):
        job = MultiProcessingJob("pregel+", cluster)
        metrics = job.run(
            bppr_task(dblp, 100), batch_sizes=[60, 30, 10], seed=1
        )
        assert metrics.batch_sizes == [60.0, 30.0, 10.0]

    def test_both_or_neither_rejected(self, dblp, cluster):
        job = MultiProcessingJob("pregel+", cluster)
        with pytest.raises(BatchingError):
            job.run(bppr_task(dblp, 100))
        with pytest.raises(BatchingError):
            job.run(
                bppr_task(dblp, 100), num_batches=2, batch_sizes=[50, 50]
            )

    def test_schedule_must_sum(self, dblp, cluster):
        job = MultiProcessingJob("pregel+", cluster)
        with pytest.raises(BatchingError):
            job.run(bppr_task(dblp, 100), batch_sizes=[10, 10], seed=1)

    def test_sweep_and_best(self, dblp, cluster):
        job = MultiProcessingJob("pregel+", cluster)
        runs = job.sweep_batches(
            mssp_task(dblp, 32, sample_limit=8), batch_counts=(1, 2, 4)
        )
        assert [m.num_batches for m in runs] == [1, 2, 4]
        best = job.best_batch_count(
            mssp_task(dblp, 32, sample_limit=8), batch_counts=(1, 2, 4)
        )
        assert best in (1, 2, 4)

    def test_engine_by_name_needs_cluster(self):
        with pytest.raises(BatchingError):
            MultiProcessingJob("pregel+")
