"""Tests for the honest message-passing Pregel engine and its programs."""

import math

import numpy as np
import pytest

from repro.engines.reference import LocalPregelEngine
from repro.errors import EngineError
from repro.graph.generators import chain, chung_lu, grid_2d
from repro.tasks.exact import (
    bfs_distances,
    exact_pagerank,
    exact_ppr_matrix,
    k_hop_set,
    shortest_path_distances,
)
from repro.tasks.vc_programs import (
    KHopProgram,
    MSSPProgram,
    PageRankProgram,
    RandomWalkPPRProgram,
    SSSPProgram,
    ppr_estimates_from_values,
)


class TestSSSP:
    def test_chain(self):
        graph = chain(8, directed=False)
        run = LocalPregelEngine(graph).run(SSSPProgram(source=0))
        assert run.values == [float(i) for i in range(8)]

    def test_matches_reference_on_random_graph(self):
        graph = chung_lu(80, 5.0, seed=41)
        run = LocalPregelEngine(graph).run(SSSPProgram(source=3))
        expected = shortest_path_distances(graph, 3)
        for v in range(80):
            if math.isinf(expected[v]):
                assert math.isinf(run.values[v])
            else:
                assert run.values[v] == expected[v]

    def test_combiner_reduces_messages(self):
        graph = chung_lu(80, 5.0, seed=41)
        run = LocalPregelEngine(graph).run(SSSPProgram(source=3))
        for stats in run.stats:
            assert stats.messages_after_combining <= stats.messages_sent

    def test_terminates_via_vote_to_halt(self):
        graph = grid_2d(4, 4, directed=False)
        run = LocalPregelEngine(graph).run(SSSPProgram(source=0))
        # eccentricity of a corner in a 4x4 grid is 6; +extra rounds for
        # the final no-improvement wave.
        assert run.supersteps <= 10


class TestMSSPProgram:
    def test_multi_source_distances(self):
        graph = chung_lu(60, 5.0, seed=42)
        sources = [0, 7, 23]
        run = LocalPregelEngine(graph).run(MSSPProgram(sources))
        for source in sources:
            expected = bfs_distances(graph, source)
            for v in range(60):
                got = run.values[v].get(source, math.inf)
                assert got == expected[v] or (
                    math.isinf(got) and math.isinf(expected[v])
                )


class TestKHop:
    def test_matches_bruteforce(self):
        graph = chung_lu(60, 5.0, seed=43)
        sources = [1, 5]
        k = 2
        run = LocalPregelEngine(graph).run(KHopProgram(sources, k))
        for source in sources:
            expected = k_hop_set(graph, source, k)
            for v in range(60):
                assert (source in run.values[v]) == bool(expected[v])

    def test_round_budget(self):
        graph = chung_lu(60, 5.0, seed=43)
        run = LocalPregelEngine(graph).run(KHopProgram([0], 2))
        assert run.supersteps <= 2 + 2


class TestPageRankProgram:
    def test_matches_exact(self):
        graph = chung_lu(50, 5.0, seed=44)
        run = LocalPregelEngine(graph).run(
            PageRankProgram(iterations=60)
        )
        expected = exact_pagerank(graph)
        dangling = (np.diff(graph.indptr) == 0).any()
        # The VC program drops dangling mass (standard Pregel PageRank);
        # compare loosely when danglings exist, tightly otherwise.
        tolerance = 0.02 if dangling else 1e-6
        np.testing.assert_allclose(
            np.asarray(run.values) / sum(run.values),
            expected,
            atol=tolerance,
        )


class TestRandomWalkProgram:
    def test_estimates_close_to_exact(self):
        graph = chung_lu(30, 4.0, seed=45)
        program = RandomWalkPPRProgram(walks_per_node=300, seed=9)
        run = LocalPregelEngine(graph).run(program)
        estimates = ppr_estimates_from_values(run.values, graph, 300)
        exact = exact_ppr_matrix(graph)
        # Row-wise total variation below a statistical threshold.
        tv = 0.5 * np.abs(estimates - exact).sum(axis=1)
        assert tv.mean() < 0.15

    def test_walk_conservation(self):
        graph = chung_lu(30, 4.0, seed=45)
        program = RandomWalkPPRProgram(walks_per_node=50, seed=9)
        run = LocalPregelEngine(graph).run(program)
        total_stops = sum(
            count for value in run.values for count in value.values()
        )
        assert total_stops == 50 * 30


class TestEngineMechanics:
    def test_send_out_of_range_rejected(self):
        from repro.engines.reference import VertexContext

        graph = chain(3)
        ctx = VertexContext(vertex_id=0, superstep=0, graph=graph)
        with pytest.raises(EngineError):
            ctx.send(99, "boom")

    def test_nonconverging_program_raises(self):
        graph = chain(3, directed=False)

        class Chatter(SSSPProgram):
            def compute(self, ctx, messages):
                ctx.send_to_neighbors("ping")  # never halts

        with pytest.raises(EngineError):
            LocalPregelEngine(graph, max_supersteps=10).run(Chatter(0))

    def test_initial_active_restriction(self):
        graph = chain(5, directed=True)
        run = LocalPregelEngine(graph).run(
            SSSPProgram(source=2), initial_active=[2]
        )
        assert run.values[2] == 0.0
        assert run.values[4] == 2.0
        assert math.isinf(run.values[0])

    def test_aggregates_recorded(self):
        graph = chain(4, directed=False)

        class Counting(SSSPProgram):
            def compute(self, ctx, messages):
                ctx.aggregate("active", 1)
                super().compute(ctx, messages)

        run = LocalPregelEngine(graph).run(Counting(0))
        assert run.aggregates_history[0]["active"] == 4
