"""Tests for the per-component time breakdown on job metrics."""

import pytest

from repro import MultiProcessingJob, bppr_task, galaxy8, load_dataset


@pytest.fixture(scope="module")
def graph():
    return load_dataset("dblp", scale=400)


class TestTimeBreakdown:
    def test_components_sum_to_total(self, graph):
        job = MultiProcessingJob("pregel+", galaxy8(scale=400))
        metrics = job.run(bppr_task(graph, 1024), num_batches=2, seed=1)
        parts = metrics.time_breakdown()
        assert sum(parts.values()) == pytest.approx(
            metrics.seconds, rel=1e-6
        )

    def test_network_dominates_heavy_bppr(self, graph):
        job = MultiProcessingJob("pregel+", galaxy8(scale=400))
        metrics = job.run(bppr_task(graph, 4096), num_batches=2, seed=1)
        parts = metrics.time_breakdown()
        assert parts["network"] > parts["compute"]
        assert parts["network"] > parts["barrier"]

    def test_disk_share_only_for_out_of_core(self, graph):
        in_memory = MultiProcessingJob("pregel+", galaxy8(scale=400)).run(
            bppr_task(graph, 2048), num_batches=2, seed=1
        )
        out_of_core = MultiProcessingJob("graphd", galaxy8(scale=400)).run(
            bppr_task(graph, 2048), num_batches=2, seed=1
        )
        assert in_memory.time_breakdown()["disk"] == 0.0
        assert out_of_core.time_breakdown()["disk"] >= 0.0
        assert out_of_core.batches[0].spilled_bytes > 0

    def test_barrier_share_grows_with_batches(self, graph):
        job = MultiProcessingJob("pregel+", galaxy8(scale=400))
        few = job.run(bppr_task(graph, 1024), num_batches=1, seed=1)
        many = job.run(bppr_task(graph, 1024), num_batches=16, seed=1)
        few_share = few.time_breakdown()["barrier"] / few.seconds
        many_share = many.time_breakdown()["barrier"] / many.seconds
        assert many_share > few_share

    def test_thrash_share_appears_under_pressure(self, graph):
        job = MultiProcessingJob("pregel+", galaxy8(scale=400))
        light = job.run(bppr_task(graph, 1024), num_batches=2, seed=1)
        heavy = job.run(bppr_task(graph, 12288), num_batches=2, seed=1)
        assert light.time_breakdown()["thrash"] == pytest.approx(0.0)
        assert heavy.time_breakdown()["thrash"] > 0.0
