"""Boundary behaviour of the thrash-penalty curve (satellite of PR 2)."""

import math

import pytest

from repro.cluster.machine import MachineSpec
from repro.errors import ConfigurationError
from repro.sim.overload import OverloadPolicy

MB = 1 << 20


@pytest.fixture
def machine():
    return MachineSpec(
        memory_bytes=100 * MB,
        os_reserve_bytes=10 * MB,
        cores=4,
        compute_ops_per_second=1e9,
        swap_allowance_fraction=0.5,
    )


class TestThrashBoundaries:
    def test_peak_exactly_at_usable_is_free(self, machine):
        policy = OverloadPolicy()
        usable = machine.usable_memory_bytes
        assert policy.thrash_multiplier(usable, machine) == 1.0
        # One byte over leaves the free regime.
        assert policy.thrash_multiplier(usable + 1, machine) > 1.0

    def test_peak_at_overload_limit_hits_full_steepness(self, machine):
        policy = OverloadPolicy(steepness=6.5)
        limit = machine.overload_limit_bytes
        assert policy.thrash_multiplier(limit, machine) == pytest.approx(
            math.exp(6.5)
        )

    def test_overshoot_beyond_limit_saturates(self, machine):
        # Past the hard limit the run is overloaded anyway; the
        # multiplier must not blow up further.
        policy = OverloadPolicy()
        limit = machine.overload_limit_bytes
        at_limit = policy.thrash_multiplier(limit, machine)
        beyond = policy.thrash_multiplier(10 * limit, machine)
        assert beyond == pytest.approx(at_limit)

    def test_zero_steepness_disables_penalty(self, machine):
        policy = OverloadPolicy(steepness=0.0)
        limit = machine.overload_limit_bytes
        assert policy.thrash_multiplier(limit, machine) == 1.0
        assert policy.thrash_multiplier(limit / 2, machine) == 1.0

    def test_negative_steepness_rejected(self):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(steepness=-1.0)
