"""Tests for the cost model, overload policy and memory accounting."""

import pytest

from repro.cluster.disk import DiskSpec
from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkSpec
from repro.sim.cost import CostModel, RoundLoad
from repro.sim.memory import MemoryModel
from repro.sim.overload import (
    MemoryState,
    OverloadPolicy,
    classify_memory,
)
from repro.units import GB, MB


@pytest.fixture
def machine():
    return MachineSpec(
        memory_bytes=100 * MB,
        os_reserve_bytes=10 * MB,
        cores=4,
        compute_ops_per_second=1e6,
        swap_allowance_fraction=0.5,
    )


@pytest.fixture
def cost_model(machine):
    return CostModel(
        machine=machine,
        network_spec=NetworkSpec(
            bandwidth_bytes_per_second=10 * MB,
            congestion_threshold_bytes=50 * MB,
        ),
        num_machines=4,
    )


def load_with(**kwargs):
    defaults = dict(
        network_messages=1000.0,
        local_messages=100.0,
        bottleneck_bytes=1 * MB,
        compute_ops=1e6,
        peak_memory_bytes=10 * MB,
        cluster_bytes=4 * MB,
    )
    defaults.update(kwargs)
    return RoundLoad(**defaults)


class TestOverloadPolicy:
    def test_under_usable_no_penalty(self, machine):
        policy = OverloadPolicy()
        assert policy.thrash_multiplier(50 * MB, machine) == 1.0
        assert policy.thrash_multiplier(90 * MB, machine) == 1.0

    def test_penalty_grows_with_overshoot(self, machine):
        policy = OverloadPolicy()
        low = policy.thrash_multiplier(95 * MB, machine)
        high = policy.thrash_multiplier(130 * MB, machine)
        assert 1.0 < low < high

    def test_classification(self, machine):
        assert classify_memory(80 * MB, machine) is MemoryState.OK
        assert classify_memory(120 * MB, machine) is MemoryState.THRASHING
        assert classify_memory(200 * MB, machine) is MemoryState.OVERLOADED


class TestCostModel:
    def test_compute_time(self, cost_model):
        # 1e6 ops / (4 cores * 1e6 ops/s) = 0.25 s
        assert cost_model.compute_seconds(1e6) == pytest.approx(0.25)

    def test_cpu_factor_slows_compute(self, machine):
        fast = CostModel(
            machine=machine,
            network_spec=NetworkSpec(
                bandwidth_bytes_per_second=10 * MB,
                congestion_threshold_bytes=1 * GB,
            ),
            cpu_factor=1.0,
        )
        slow = CostModel(
            machine=machine,
            network_spec=fast.network_spec,
            cpu_factor=2.4,
        )
        assert slow.compute_seconds(1e6) == pytest.approx(
            2.4 * fast.compute_seconds(1e6)
        )

    def test_round_cost_composition(self, cost_model):
        cost = cost_model.round_cost(load_with())
        assert cost.seconds == pytest.approx(
            (cost.compute_seconds + cost.network_seconds + cost.overhead_seconds)
            * cost.thrash_multiplier
            + cost.barrier_seconds,
            rel=1e-9,
        )

    def test_barrier_scales_with_machines(self, machine):
        spec = NetworkSpec(
            bandwidth_bytes_per_second=10 * MB,
            congestion_threshold_bytes=1 * GB,
        )
        small = CostModel(machine=machine, network_spec=spec, num_machines=2)
        big = CostModel(machine=machine, network_spec=spec, num_machines=32)
        assert big.barrier_seconds() > small.barrier_seconds()

    def test_overload_flag(self, cost_model):
        cost = cost_model.round_cost(
            load_with(peak_memory_bytes=300 * MB)
        )
        assert cost.overloaded
        assert cost.memory_state is MemoryState.OVERLOADED

    def test_memory_capped_never_overloads(self, machine):
        model = CostModel(
            machine=machine,
            network_spec=NetworkSpec(
                bandwidth_bytes_per_second=10 * MB,
                congestion_threshold_bytes=1 * GB,
            ),
            disk_spec=DiskSpec(bandwidth_bytes_per_second=50 * MB),
            memory_capped=True,
        )
        cost = model.round_cost(load_with(peak_memory_bytes=999 * MB))
        assert not cost.overloaded
        assert cost.thrash_multiplier == 1.0

    def test_spill_adds_disk_time(self, machine):
        model = CostModel(
            machine=machine,
            network_spec=NetworkSpec(
                bandwidth_bytes_per_second=10 * MB,
                congestion_threshold_bytes=1 * GB,
            ),
            disk_spec=DiskSpec(bandwidth_bytes_per_second=1 * MB),
            memory_capped=True,
        )
        quiet = model.round_cost(load_with(spilled_bytes=0.0))
        noisy = model.round_cost(load_with(spilled_bytes=100 * MB))
        assert noisy.disk_seconds > 0.0
        assert noisy.seconds > quiet.seconds

    def test_overuse_totals_shape(self, cost_model):
        cost_model.round_cost(load_with())
        totals = cost_model.overuse_totals()
        assert set(totals) == {
            "network_overuse_seconds",
            "io_overuse_seconds",
        }

    def test_reset_clears_history(self, cost_model):
        cost_model.round_cost(load_with(cluster_bytes=900 * MB))
        assert cost_model.overuse_totals()["network_overuse_seconds"] > 0
        cost_model.reset()
        assert (
            cost_model.overuse_totals()["network_overuse_seconds"] == 0.0
        )


class TestMemoryModel:
    def test_breakdown_total(self):
        model = MemoryModel()
        breakdown = model.breakdown(
            vertices=100,
            arcs=500,
            messages_in=1000,
            messages_out=1000,
            task_state_bytes=4096,
            residual_bytes=8192,
        )
        assert breakdown.total == pytest.approx(
            breakdown.graph_bytes
            + breakdown.buffer_bytes
            + breakdown.task_state_bytes
            + breakdown.residual_bytes
        )

    def test_object_overhead_multiplies(self):
        lean = MemoryModel(object_overhead=1.0)
        jvm = MemoryModel(object_overhead=2.0)
        assert jvm.graph_bytes(100, 100) == 2 * lean.graph_bytes(100, 100)
        assert jvm.buffer_bytes(10, 10) == 2 * lean.buffer_bytes(10, 10)

    def test_message_bytes_override(self):
        model = MemoryModel(message_bytes=16.0, buffer_overhead=1.0, object_overhead=1.0)
        assert model.buffer_bytes(10, 0) == 160.0
        assert model.buffer_bytes(10, 0, message_bytes=8.0) == 80.0

    def test_invalid_constants_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MemoryModel(vertex_state_bytes=0)
