"""Property-based tests on cost-model monotonicity.

The experiments' conclusions depend on the cost model being *monotone*
in its inputs: more bytes never cost less, more memory pressure never
helps, deeper saturation never shortens a round. Hypothesis sweeps the
input space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.disk import DiskModel, DiskSpec
from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkModel, NetworkSpec
from repro.sim.cost import CostModel, RoundLoad
from repro.sim.overload import OverloadPolicy
from repro.units import MB

MACHINE = MachineSpec(
    memory_bytes=100 * MB,
    os_reserve_bytes=10 * MB,
    cores=4,
    compute_ops_per_second=1e6,
)
NETWORK = NetworkSpec(
    bandwidth_bytes_per_second=10 * MB,
    congestion_threshold_bytes=5 * MB,
)


def fresh_model(**kwargs):
    return CostModel(machine=MACHINE, network_spec=NETWORK, **kwargs)


def load(bytes_=1 * MB, memory=10 * MB, ops=1e5, cluster=None):
    return RoundLoad(
        network_messages=bytes_ / 8,
        local_messages=0.0,
        bottleneck_bytes=bytes_,
        compute_ops=ops,
        peak_memory_bytes=memory,
        cluster_bytes=cluster if cluster is not None else bytes_,
    )


@given(
    st.floats(min_value=1e3, max_value=5e8),
    st.floats(min_value=1.01, max_value=4.0),
)
@settings(max_examples=60, deadline=None)
def test_time_monotone_in_bytes(bytes_, factor):
    small = fresh_model().round_cost(load(bytes_=bytes_))
    big = fresh_model().round_cost(load(bytes_=bytes_ * factor))
    assert big.seconds >= small.seconds


@given(
    st.floats(min_value=1e6, max_value=2e8),
    st.floats(min_value=1.01, max_value=3.0),
)
@settings(max_examples=60, deadline=None)
def test_time_monotone_in_memory_pressure(memory, factor):
    low = fresh_model().round_cost(load(memory=memory))
    high = fresh_model().round_cost(load(memory=memory * factor))
    assert high.seconds >= low.seconds - 1e-12


@given(st.floats(min_value=1e3, max_value=1e9))
@settings(max_examples=60, deadline=None)
def test_thrash_multiplier_at_least_one(memory):
    policy = OverloadPolicy()
    assert policy.thrash_multiplier(memory, MACHINE) >= 1.0


@given(
    st.floats(min_value=0.0, max_value=5e8),
    st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=60, deadline=None)
def test_disk_round_time_monotone_in_spill(spill, other):
    a = DiskModel(DiskSpec(bandwidth_bytes_per_second=50 * MB))
    usage_small = a.round_time(spill, other, 8.0)
    usage_big = a.round_time(spill * 2 + 1.0, other, 8.0)
    assert usage_big.round_seconds >= usage_small.round_seconds - 1e-12


@given(
    st.floats(min_value=1e3, max_value=1e9),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_network_threshold_scaling_never_hurts(cluster_bytes, machines):
    """More machines -> higher cluster knee -> never more penalty."""
    one = NetworkModel(NETWORK, num_machines=1)
    many = NetworkModel(NETWORK, num_machines=machines)
    t_one = one.round_time(1 * MB, cluster_bytes=cluster_bytes)
    t_many = many.round_time(1 * MB, cluster_bytes=cluster_bytes)
    assert t_many.total_seconds <= t_one.total_seconds + 1e-12


@given(st.floats(min_value=0.0, max_value=1e9))
@settings(max_examples=40, deadline=None)
def test_round_cost_components_nonnegative(bytes_):
    cost = fresh_model().round_cost(load(bytes_=max(bytes_, 1.0)))
    assert cost.compute_seconds >= 0
    assert cost.network_seconds >= 0
    assert cost.barrier_seconds >= 0
    assert cost.seconds >= cost.barrier_seconds


def test_memory_capped_model_ignores_memory():
    capped = fresh_model(
        disk_spec=DiskSpec(bandwidth_bytes_per_second=50 * MB),
        memory_capped=True,
    )
    low = capped.round_cost(load(memory=1 * MB))
    capped2 = fresh_model(
        disk_spec=DiskSpec(bandwidth_bytes_per_second=50 * MB),
        memory_capped=True,
    )
    high = capped2.round_cost(load(memory=900 * MB))
    assert low.seconds == pytest.approx(high.seconds)
