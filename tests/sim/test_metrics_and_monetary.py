"""Tests for metric roll-ups and the monetary model."""

import pytest

from repro.cluster.cluster import docker32, galaxy8
from repro.sim.metrics import BatchMetrics, JobMetrics, RoundMetrics
from repro.sim.monetary import MonetaryModel, credit_cost, sweep_cost
from repro.units import OVERLOAD_CUTOFF_SECONDS


def make_round(index=0, seconds=1.0, messages=100.0, memory=1e6):
    return RoundMetrics(
        round_index=index,
        network_messages=messages,
        local_messages=messages / 10,
        bottleneck_bytes=messages * 8,
        compute_ops=messages,
        peak_memory_bytes=memory,
        seconds=seconds,
    )


def make_job(batch_specs, engine="pregel+", machines=8):
    job = JobMetrics(
        engine=engine,
        task="bppr",
        dataset="dblp",
        cluster="galaxy-8",
        num_machines=machines,
        total_workload=sum(w for w, _ in batch_specs),
        batch_sizes=[w for w, _ in batch_specs],
    )
    for i, (workload, rounds) in enumerate(batch_specs):
        batch = BatchMetrics(batch_index=i, workload=workload)
        for r in range(rounds):
            batch.rounds.append(make_round(r))
        job.batches.append(batch)
    return job


class TestRollups:
    def test_batch_seconds_includes_startup(self):
        batch = BatchMetrics(batch_index=0, workload=10)
        batch.rounds.append(make_round(seconds=2.0))
        batch.startup_seconds = 3.0
        assert batch.seconds == 5.0

    def test_overloaded_batch_reports_cutoff(self):
        batch = BatchMetrics(batch_index=0, workload=10, overloaded=True)
        batch.rounds.append(make_round(seconds=2.0))
        assert batch.seconds == OVERLOAD_CUTOFF_SECONDS

    def test_job_aggregates(self):
        job = make_job([(10, 3), (10, 2)])
        assert job.num_batches == 2
        assert job.num_rounds == 5
        assert job.seconds == pytest.approx(5.0)
        assert job.total_messages == pytest.approx(5 * 110.0)
        assert job.messages_per_round == pytest.approx(110.0)

    def test_job_overload_propagates(self):
        job = make_job([(10, 2)])
        job.batches[0].overloaded = True
        assert job.overloaded
        assert job.seconds == OVERLOAD_CUTOFF_SECONDS
        assert job.time_label() == "Overload"

    def test_peak_memory_is_max(self):
        job = make_job([(10, 1)])
        job.batches[0].rounds[0].peak_memory_bytes = 123.0
        assert job.peak_memory_bytes == 123.0

    def test_summary_mentions_engine(self):
        job = make_job([(10, 1)])
        assert "pregel+" in job.summary()


class TestMonetary:
    def test_rate_decomposition(self):
        model = MonetaryModel(2.0, 1.0, 0.5)
        assert model.rate_per_machine_hour == 3.5

    def test_job_cost_scales_with_time_and_machines(self):
        model = MonetaryModel(2.0, 1.0, 1.0)
        assert model.job_cost(3600, 10) == pytest.approx(40.0)

    def test_credit_cost_uses_cluster_rate(self):
        cluster = docker32()
        job = make_job([(10, 1)], machines=32)
        job.batches[0].rounds[0].seconds = 3600.0
        cost = credit_cost(job, cluster)
        assert cost.credits == pytest.approx(
            cluster.credit_rate_per_machine_hour * 32
        )
        assert not cost.lower_bound

    def test_overloaded_marks_lower_bound(self):
        cluster = docker32()
        job = make_job([(10, 1)], machines=32)
        job.batches[0].overloaded = True
        cost = credit_cost(job, cluster)
        assert cost.lower_bound
        assert cost.label().startswith(">$")

    def test_sweep_cost_sums(self):
        cluster = docker32()
        jobs = [make_job([(10, 1)], machines=32) for _ in range(3)]
        for j in jobs:
            j.batches[0].rounds[0].seconds = 1800.0
        total = sweep_cost(jobs, cluster)
        single = credit_cost(jobs[0], cluster)
        assert total.credits == pytest.approx(3 * single.credits)

    def test_local_cluster_uses_default_split(self):
        cluster = galaxy8()
        job = make_job([(10, 1)])
        job.batches[0].rounds[0].seconds = 3600.0
        cost = credit_cost(job, cluster)
        assert cost.credits == pytest.approx(
            MonetaryModel().rate_per_machine_hour * 8
        )
