"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import galaxy8
from repro.graph.build import from_edge_list
from repro.graph.generators import chain, chung_lu, erdos_renyi, star
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import partition_graph
from repro.messages.routing import PointToPointRouter


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph():
    """A 6-vertex directed graph with known structure.

    0 -> 1, 2; 1 -> 2; 2 -> 3; 3 -> 4; 4 -> 5; 5 -> 0 (a cycle with a
    chord), plus vertex weights left implicit.
    """
    return from_edge_list(
        [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        num_vertices=6,
        name="tiny",
    )


@pytest.fixture
def weighted_graph():
    """Small weighted digraph with distinct shortest paths."""
    return from_edge_list(
        [
            (0, 1, 1.0),
            (0, 2, 4.0),
            (1, 2, 2.0),
            (1, 3, 6.0),
            (2, 3, 1.0),
            (3, 4, 2.0),
        ],
        num_vertices=5,
        name="weighted",
    )


@pytest.fixture
def chain_graph():
    return chain(10, directed=False)


@pytest.fixture
def star_graph():
    return star(12, directed=False)


@pytest.fixture
def random_graph():
    return erdos_renyi(200, avg_degree=6.0, seed=7, name="er-200")


@pytest.fixture
def social_graph():
    """Power-law graph large enough to exercise partitions/mirrors."""
    return chung_lu(500, avg_degree=8.0, seed=11, name="cl-500")


@pytest.fixture
def small_cluster():
    return galaxy8(scale=400).with_machines(4)


@pytest.fixture
def router(tiny_graph):
    partition = partition_graph(tiny_graph, 2, "hash")
    plan = build_mirror_plan(tiny_graph, partition)
    return PointToPointRouter(tiny_graph, plan, message_bytes=8.0)
