"""repro — multi-task processing in vertex-centric graph systems.

A faithful, simulation-backed reproduction of *"Multi-Task Processing in
Vertex-Centric Graph Systems: Evaluations and Insights"* (EDBT 2023):
the round-congestion tradeoff, seven VC-system modes, the BPPR / MSSP /
BKHS benchmark tasks, every figure and table of the evaluation, and the
cost-based batch-tuning framework of Section 5.

Quickstart::

    from repro import bppr_task, galaxy8, load_dataset, MultiProcessingJob

    graph = load_dataset("dblp")
    job = MultiProcessingJob("pregel+", galaxy8())
    for k in (1, 2, 4, 8):
        metrics = job.run(bppr_task(graph, workload=10240), num_batches=k)
        print(k, metrics.time_label())
"""

from repro.batching import (
    MultiProcessingJob,
    equal_batches,
    explicit_batches,
    full_parallelism,
    run_job,
    two_batches_delta,
)
from repro.cluster import ClusterSpec, custom_cluster, docker32, galaxy8, galaxy27
from repro.engines import (
    ENGINE_NAMES,
    LocalPregelEngine,
    SimulatedEngine,
    VertexProgram,
    create_engine,
)
from repro.errors import ReproError
from repro.graph import Graph, from_edge_list, from_edges, load_dataset
from repro.sim.metrics import BatchMetrics, JobMetrics, RoundMetrics
from repro.sim.monetary import credit_cost
from repro.tasks import (
    TaskSpec,
    bkhs_task,
    bppr_task,
    make_task,
    mssp_task,
    pagerank_task,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # graph
    "Graph",
    "from_edges",
    "from_edge_list",
    "load_dataset",
    # clusters
    "ClusterSpec",
    "galaxy8",
    "galaxy27",
    "docker32",
    "custom_cluster",
    # engines
    "SimulatedEngine",
    "create_engine",
    "ENGINE_NAMES",
    "LocalPregelEngine",
    "VertexProgram",
    # tasks
    "TaskSpec",
    "make_task",
    "bppr_task",
    "mssp_task",
    "bkhs_task",
    "pagerank_task",
    # batching
    "MultiProcessingJob",
    "run_job",
    "equal_batches",
    "full_parallelism",
    "two_batches_delta",
    "explicit_batches",
    # metrics
    "JobMetrics",
    "BatchMetrics",
    "RoundMetrics",
    "credit_cost",
]
