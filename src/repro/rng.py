"""Deterministic random-number plumbing.

Every stochastic component in the library (graph generators, random-walk
kernels, LMA initialisation) draws from a :class:`numpy.random.Generator`
obtained through this module, so experiments are reproducible end to end
from a single integer seed.

The helpers here implement *seed spawning*: a parent seed is combined with
a stream label (e.g. ``"bppr-walks"``) to derive a child generator that is
stable across runs and independent across labels.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

DEFAULT_SEED = 20230328  # EDBT 2023 opening day; arbitrary but fixed.


def derive_seed(seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``seed`` and ``label``.

    Uses BLAKE2b over the decimal seed and the label, so different labels
    give statistically independent streams while remaining reproducible.
    """
    digest = hashlib.blake2b(
        f"{seed}:{label}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") & ((1 << 63) - 1)


def make_rng(seed: SeedLike = None, label: Optional[str] = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged,
    ``label`` ignored), or ``None`` (the library default seed). When a
    ``label`` is given, the seed is first passed through
    :func:`derive_seed` to obtain an independent stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    if label is not None:
        seed = derive_seed(int(seed), label)
    return np.random.default_rng(int(seed))


def spawn(rng_or_seed: SeedLike, label: str) -> np.random.Generator:
    """Spawn a labelled child generator.

    If given a generator, a child seed is drawn from it (making the spawn
    order significant, as with ``numpy``'s own spawning); if given an
    integer or ``None``, the child is derived deterministically by label.
    """
    if isinstance(rng_or_seed, np.random.Generator):
        child_seed = int(rng_or_seed.integers(0, 2**63 - 1))
        return np.random.default_rng(derive_seed(child_seed, label))
    return make_rng(rng_or_seed, label=label)
