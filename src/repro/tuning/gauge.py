"""Trial-and-error workload gauging (Section 4.10's first guideline).

"The first step is to gauge a suitable workload that will not overload
the system. This can be monitored via a trial-and-error process using a
binary search for the workload. In each trial, the overload situation
can be detected by checking the memory consumption or disk utilization
in the master machine."

:func:`gauge_max_workload` runs exactly that: binary search over the
workload, with each trial executed as a 1-batch job on the target
engine; a trial counts as overloading when the job overloads, when the
memory peak exceeds the usable fraction, or when an out-of-core
engine's disk saturates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.engines.base import SimulatedEngine
from repro.errors import TuningError
from repro.rng import SeedLike
from repro.tuning.trainer import TaskFactory


@dataclass(frozen=True)
class GaugeTrial:
    """One binary-search probe."""

    workload: float
    overloaded: bool
    seconds: float
    peak_memory_bytes: float
    max_disk_utilization: float


@dataclass
class GaugeResult:
    """Outcome of the binary search."""

    max_safe_workload: float
    trials: List[GaugeTrial] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        return len(self.trials)


def _trial_overloads(
    engine: SimulatedEngine, metrics, memory_fraction: float
) -> bool:
    if metrics.overloaded:
        return True
    machine = engine.cluster.scaled_machine
    if metrics.peak_memory_bytes > memory_fraction * machine.memory_bytes:
        return True
    if engine.profile.out_of_core and metrics.max_disk_utilization >= 1.0:
        return True
    return False


def gauge_max_workload(
    engine: SimulatedEngine,
    task_factory: TaskFactory,
    upper_bound: float,
    lower_bound: float = 1.0,
    memory_fraction: float = 0.875,
    tolerance_fraction: float = 0.05,
    max_trials: int = 20,
    seed: SeedLike = None,
) -> GaugeResult:
    """Binary-search the largest 1-batch workload that stays safe.

    Parameters
    ----------
    upper_bound / lower_bound:
        search interval; ``lower_bound`` must itself be safe (checked).
    memory_fraction:
        memory threshold relative to physical memory (the paper's
        overloading parameter ``p``).
    tolerance_fraction:
        stop when the bracket is within this fraction of the upper
        bound.

    Returns the largest workload observed safe. Raises
    :class:`TuningError` when even ``lower_bound`` overloads.
    """
    if upper_bound <= lower_bound:
        raise TuningError("upper_bound must exceed lower_bound")

    trials: List[GaugeTrial] = []

    def probe(workload: float) -> bool:
        task = task_factory(workload)
        metrics = engine.run_job(task, [float(workload)], seed=seed)
        overloaded = _trial_overloads(engine, metrics, memory_fraction)
        trials.append(
            GaugeTrial(
                workload=workload,
                overloaded=overloaded,
                seconds=metrics.seconds,
                peak_memory_bytes=metrics.peak_memory_bytes,
                max_disk_utilization=metrics.max_disk_utilization,
            )
        )
        return overloaded

    low, high = float(lower_bound), float(upper_bound)
    if probe(low):
        raise TuningError(
            f"even the lower bound workload {low:g} overloads the system"
        )
    if not probe(high):
        return GaugeResult(max_safe_workload=high, trials=trials)

    tolerance = tolerance_fraction * upper_bound
    for _ in range(max_trials):
        if high - low <= tolerance:
            break
        mid = round((low + high) / 2.0)
        if mid <= low or mid >= high:
            break
        if probe(mid):
            high = mid
        else:
            low = mid
    return GaugeResult(max_safe_workload=low, trials=trials)
