"""End-to-end auto-tuner: train → fit → plan → execute (Section 5).

:class:`AutoTuner` bundles the pipeline for one (engine, cluster, task
family) and produces a :class:`TuningReport` comparing the Optimized
schedule against Full-Parallelism — the comparison Figure 12 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.cluster import ClusterSpec
from repro.engines.base import SimulatedEngine
from repro.engines.registry import create_engine
from repro.faults.recovery import OverloadRecovery
from repro.rng import SeedLike
from repro.sim.metrics import JobMetrics
from repro.tuning.calibrate import Calibrator
from repro.tuning.memory_model import MemoryCostModel
from repro.tuning.planner import DEFAULT_OVERLOAD_FRACTION, plan_batches
from repro.tuning.trainer import TaskFactory


@dataclass
class TuningReport:
    """Everything one tuned run produced."""

    workload: float
    schedule: List[float]
    optimized: JobMetrics
    full_parallelism: JobMetrics
    model: MemoryCostModel
    training_seconds: float

    @property
    def speedup(self) -> float:
        """Full-Parallelism time over Optimized time (>1 = tuning wins)."""
        if self.optimized.seconds == 0:
            return float("inf")
        return self.full_parallelism.seconds / self.optimized.seconds

    @property
    def retry_history(self) -> List[dict]:
        """Overload-recovery attempts the optimized run needed (the
        closed loop: a mispredicted schedule is aborted and re-split
        rather than reported at the cutoff)."""
        return self.optimized.retry_history

    def summary(self) -> str:
        """One-line Optimized-vs-Full-Parallelism comparison."""
        sched = ", ".join(f"{w:.0f}" for w in self.schedule)
        retries = (
            f", {len(self.retry_history)} overload retries"
            if self.retry_history
            else ""
        )
        return (
            f"W={self.workload:g}: Optimized [{sched}] -> "
            f"{self.optimized.time_label()} vs Full-Parallelism "
            f"{self.full_parallelism.time_label()} "
            f"(speedup {self.speedup:.2f}x{retries})"
        )


@dataclass
class AutoTuner:
    """Train once, plan and run many workloads (the training is
    "affordable because it is done only once")."""

    engine: SimulatedEngine
    task_factory: TaskFactory
    overload_fraction: float = DEFAULT_OVERLOAD_FRACTION
    seed: SeedLike = None
    recovery: Optional[OverloadRecovery] = None
    _model: Optional[MemoryCostModel] = field(default=None, repr=False)
    _calibrator: Optional[Calibrator] = field(default=None, repr=False)
    _training_seconds: float = field(default=0.0, repr=False)

    @classmethod
    def for_engine(
        cls,
        engine_name: str,
        cluster: ClusterSpec,
        task_factory: TaskFactory,
        overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
        seed: SeedLike = None,
        recovery: Optional[OverloadRecovery] = None,
    ) -> "AutoTuner":
        return cls(
            engine=create_engine(engine_name, cluster),
            task_factory=task_factory,
            overload_fraction=overload_fraction,
            seed=seed,
            recovery=recovery,
        )

    def train(self, reference_workload: float) -> MemoryCostModel:
        """Run the probe ladder and fit the memory models (idempotent).

        The probe runs are the calibrator's first tells
        (:class:`~repro.tuning.calibrate.Calibrator`), so a caller that
        keeps executing batches can keep telling observations back; the
        initial fit is bit-identical to the legacy one-shot trainer.
        """
        if self._model is None:
            self._calibrator = Calibrator.train(
                self.engine,
                self.task_factory,
                reference_workload,
                seed=self.seed,
            )
            self._model = self._calibrator.model
        return self._model

    @property
    def model(self) -> Optional[MemoryCostModel]:
        return self._model

    @property
    def calibrator(self) -> Optional[Calibrator]:
        """The ask-tell calibrator behind :meth:`train` (None until the
        first training call)."""
        return self._calibrator

    def plan(self, workload: float) -> List[float]:
        """Compute the Optimized schedule for ``workload``."""
        model = self.train(workload)
        return plan_batches(
            model,
            workload,
            self.engine.cluster.scaled_machine,
            overload_fraction=self.overload_fraction,
        )

    def run(self, workload: float) -> TuningReport:
        """Plan and execute ``workload``; also run the Full-Parallelism
        baseline for the Figure-12 comparison.

        With a ``recovery`` policy set, the optimized schedule runs
        through :meth:`MultiProcessingJob.run_with_recovery`: if the
        planner's memory model underestimated and a batch still
        overloads, the batch is aborted and the remainder re-split
        instead of stamping the run at the cutoff. The attempts land in
        ``TuningReport.retry_history``.
        """
        schedule = self.plan(workload)
        if self.recovery is not None:
            from repro.batching.executor import MultiProcessingJob

            optimized = MultiProcessingJob(self.engine).run_with_recovery(
                self.task_factory,
                workload,
                batch_sizes=schedule,
                seed=self.seed,
                recovery=self.recovery,
            )
        else:
            task = self.task_factory(workload)
            optimized = self.engine.run_job(task, schedule, seed=self.seed)
        baseline_task = self.task_factory(workload)
        baseline = self.engine.run_job(
            baseline_task, [float(workload)], seed=self.seed
        )
        model = self.train(workload)
        return TuningReport(
            workload=workload,
            schedule=schedule,
            optimized=optimized,
            full_parallelism=baseline,
            model=model,
            training_seconds=self._training_seconds,
        )
