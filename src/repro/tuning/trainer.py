"""The light-weight training phase of Section 5.

"We conduct training on the task with workload 2^r (1 ≤ r ≤ h) where
W ≫ 2^h (the condition ensures the training cost is minor). Through the
training we collect h sets of runtime statistics, including the maximum
memory {y_r} and the maximum residual memory {y'_r}."

The trainer runs each probe workload as a 1-batch job on the target
engine/cluster and records per-machine peaks from the job metrics, then
fits the two power-law models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.engines.base import SimulatedEngine
from repro.errors import TuningError
from repro.rng import SeedLike
from repro.tasks.base import TaskSpec
from repro.tuning.memory_model import MemoryCostModel, PowerLawModel

#: A task factory: workload -> TaskSpec (so the trainer can build probe
#: tasks of arbitrary light workloads).
TaskFactory = Callable[[float], TaskSpec]


@dataclass(frozen=True)
class TrainingSample:
    """One probe run's statistics."""

    workload: float
    peak_memory_bytes: float
    residual_memory_bytes: float
    seconds: float
    overloaded: bool


def probe_workloads(
    total_workload: float, max_exponent: Optional[int] = None
) -> List[int]:
    """The 2^r probe ladder, kept well below the real workload.

    Probes stop at ``2^h ≤ W / 4`` so the training cost stays minor
    while the top probes reach the linear memory regime the planner
    extrapolates from; at least three probes are produced (the fit
    needs three points).
    """
    if total_workload <= 8:
        raise TuningError("workload too small to train on (need > 8)")
    ladder: List[int] = []
    r = 1
    while 2**r <= max(total_workload / 4.0, 8):
        ladder.append(2**r)
        r += 1
        if max_exponent is not None and r > max_exponent:
            break
    if len(ladder) < 3:
        ladder = [2, 4, 8]
    return ladder


def collect_training_samples(
    engine: SimulatedEngine,
    task_factory: TaskFactory,
    workloads: Sequence[float],
    seed: SeedLike = None,
) -> List[TrainingSample]:
    """Run each probe workload as a 1-batch job and record its stats."""
    samples: List[TrainingSample] = []
    for workload in workloads:
        task = task_factory(float(workload))
        metrics = engine.run_job(task, [float(workload)], seed=seed)
        samples.append(
            TrainingSample(
                workload=float(workload),
                peak_memory_bytes=metrics.peak_memory_bytes,
                residual_memory_bytes=metrics.extras.get(
                    "residual_memory_bytes", 0.0
                )
                / engine.cluster.num_machines,
                seconds=metrics.seconds,
                overloaded=metrics.overloaded,
            )
        )
    return samples


def fit_memory_models(
    samples: Sequence[TrainingSample], seed: SeedLike = None
) -> MemoryCostModel:
    """Fit (M*, Mr) from collected samples — the shared fit step behind
    both the one-shot trainer and the ask-tell calibrator's first tells
    (:mod:`repro.tuning.calibrate`)."""
    usable = [s for s in samples if not s.overloaded]
    if len(usable) < 3:
        raise TuningError(
            "training probes overloaded the cluster; reduce the probe ladder"
        )
    workloads = [s.workload for s in usable]
    peak = PowerLawModel.fit(
        workloads, [s.peak_memory_bytes for s in usable], seed=seed
    )
    peak = _envelope(peak, workloads, [s.peak_memory_bytes for s in usable])
    residual = PowerLawModel.fit(
        workloads, [s.residual_memory_bytes for s in usable], seed=seed
    )
    return MemoryCostModel(peak=peak, residual=residual)


def train_memory_models(
    engine: SimulatedEngine,
    task_factory: TaskFactory,
    total_workload: float,
    seed: SeedLike = None,
) -> MemoryCostModel:
    """End-to-end training: probe ladder → samples → fitted models."""
    ladder = probe_workloads(total_workload)
    samples = collect_training_samples(engine, task_factory, ladder, seed=seed)
    return fit_memory_models(samples, seed=seed)


def _envelope(
    model: PowerLawModel, workloads, values
) -> PowerLawModel:
    """Inflate ``a`` so the model upper-bounds every training point.

    The planner uses the peak model to *avoid overload*, so a model that
    sits under a noisy training sample is dangerous — an envelope fit
    errs on the safe (conservative) side.
    """
    worst = 1.0
    for w, y in zip(workloads, values):
        predicted = model(w)
        if predicted > 0 and y > predicted:
            worst = max(worst, y / predicted)
    if worst == 1.0:
        return model
    return PowerLawModel(
        a=model.a * worst, b=model.b, c=model.c, rmse=model.rmse
    )
