"""The cost-based tuning framework of Section 5.

Given a workload ``W``, the framework learns an *optimized batch
execution strategy* ``S* = {W_1, ..., W_t}`` (Σ W_i = W) that keeps every
machine under ``p`` percent of its physical memory:

1. **Train** (:mod:`repro.tuning.trainer`): run light workloads
   ``2^r (r = 1..h)`` and record the maximum memory ``y_r`` and maximum
   residual memory ``y'_r`` per machine.
2. **Fit** (:mod:`repro.tuning.lma` + :mod:`repro.tuning.memory_model`):
   estimate ``M*(W) = a1 W^b1 + c1`` and ``Mr(W) = a2 W^b2 + c2`` with
   Levenberg-Marquardt (Equation 2/4).
3. **Plan** (:mod:`repro.tuning.planner`): compute the batch schedule by
   Equations 5-6 — each batch gets the largest workload whose projected
   peak, on top of the accumulated residual, stays under ``p·M``.
4. **Execute** (:mod:`repro.tuning.autotuner`): run the schedule and
   compare against Full-Parallelism (Figure 12).
"""

from repro.tuning.autotuner import AutoTuner, TuningReport
from repro.tuning.calibrate import CalibrationStats, Calibrator
from repro.tuning.lma import FitResult, fit_power_law, levenberg_marquardt
from repro.tuning.memory_model import MemoryCostModel, PowerLawModel
from repro.tuning.planner import plan_batches
from repro.tuning.trainer import (
    TrainingSample,
    fit_memory_models,
    train_memory_models,
)

__all__ = [
    "levenberg_marquardt",
    "fit_power_law",
    "FitResult",
    "PowerLawModel",
    "MemoryCostModel",
    "TrainingSample",
    "fit_memory_models",
    "train_memory_models",
    "plan_batches",
    "AutoTuner",
    "TuningReport",
    "Calibrator",
    "CalibrationStats",
]
