"""Exponential memory models of Equation 2.

``M*(W) = a1·W^b1 + c1`` — maximum memory any machine uses to process a
batch of workload ``W``; ``Mr(W) = a2·W^b2 + c2`` — maximum residual
memory left behind after processing total workload ``W``. "Exponential
functions are used because of their expressiveness": ``b > 1`` means
memory grows faster than the workload, ``b < 1`` slower.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TuningError
from repro.tuning.lma import FitResult, fit_power_law


@dataclass(frozen=True)
class PowerLawModel:
    """A fitted ``f(W) = a·W^b + c``."""

    a: float
    b: float
    c: float
    rmse: float = 0.0

    def __call__(self, workload) -> float:
        return self.a * np.power(workload, self.b) + self.c

    def invert(self, value: float) -> float:
        """Solve ``f(W) = value`` for ``W`` (Equation 6's inner step).

        Returns 0 when even a zero workload exceeds ``value``.
        """
        if self.a <= 0:
            raise TuningError("cannot invert a model with a <= 0")
        if self.b <= 0:
            raise TuningError("cannot invert a model with b <= 0")
        remaining = value - self.c
        if remaining <= 0:
            return 0.0
        return float((remaining / self.a) ** (1.0 / self.b))

    @classmethod
    def from_fit(cls, result: FitResult) -> "PowerLawModel":
        a, b, c = (float(v) for v in result.params)
        return cls(a=a, b=b, c=c, rmse=result.rmse)

    @classmethod
    def fit(cls, workloads, values, seed=None) -> "PowerLawModel":
        """Fit the model to observed (workload, value) pairs via LMA."""
        result = fit_power_law(
            np.asarray(workloads, dtype=np.float64),
            np.asarray(values, dtype=np.float64),
            seed=seed,
        )
        return cls.from_fit(result)


@dataclass(frozen=True)
class MemoryCostModel:
    """The pair (M*, Mr) the planner consumes (Equation 2)."""

    peak: PowerLawModel
    residual: PowerLawModel

    def projected_peak(self, batch_workload: float, done_workload: float) -> float:
        """Left side of Equation 1 for one batch: residual of everything
        processed so far plus the peak of the in-flight batch."""
        return self.residual(done_workload) + self.peak(batch_workload)
