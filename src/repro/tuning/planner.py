"""The batch-schedule planner (Equations 1, 5, 6).

Objective: find ``S = {W_1, ..., W_t}`` with ``Σ W_i = W`` such that for
every batch ``j``::

    Mr(Σ_{i≤j} W_i) + M*(W_{j+1}) ≤ p · M          (Equation 1)

Computation is iterative (Equation 5/6): batch ``i+1`` receives the
largest workload whose projected peak fits beside the residual of
everything already processed::

    W_{i+1} = ((p·M − a2·(Σ_{j≤i} W_j)^b2 − c2 − c1) / a1)^(1/b1)

Residual memory grows with processed workload, so the schedule
decreases monotonically — the paper's example for W=5120 on 4 machines
is ``[2747, 1388, 644, 266, 75]``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.machine import MachineSpec
from repro.errors import TuningError
from repro.tuning.memory_model import MemoryCostModel

#: Default overloading parameter p: fraction of physical memory a
#: machine may use before it counts as overloaded. Section 4.3 puts the
#: usable capacity at 14/16 ≈ 0.875 of physical memory; planning right
#: at that boundary leaves no slack for model error, so the default
#: keeps a small safety margin below it.
DEFAULT_OVERLOAD_FRACTION = 0.8

#: Safety floor: a planned batch smaller than this fraction of the
#: remaining workload ends the iteration by folding the tail into a
#: final batch (prevents infinitely-shrinking tails).
MIN_BATCH_FRACTION = 0.005


def plan_batches(
    model: MemoryCostModel,
    total_workload: float,
    machine: MachineSpec,
    overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
    max_batches: int = 64,
    integral: bool = True,
) -> List[float]:
    """Compute the Optimized schedule for ``total_workload``.

    Parameters
    ----------
    model:
        the fitted (M*, Mr) pair, in the same (scaled) byte units as
        ``machine.memory_bytes``.
    total_workload:
        the job's workload ``W``.
    machine:
        target machine spec; ``p·M`` is ``overload_fraction *
        machine.memory_bytes``.
    max_batches:
        hard cap on schedule length.
    integral:
        round batch workloads to integers (walk/source counts).

    Returns a list of positive batch workloads summing to ``W``. Raises
    :class:`TuningError` when even an empty cluster cannot fit the
    smallest batch (budget below the models' constant terms).
    """
    if total_workload <= 0:
        raise TuningError("total workload must be positive")
    if not 0 < overload_fraction <= 1:
        raise TuningError("overload_fraction must be in (0, 1]")
    budget = overload_fraction * machine.memory_bytes

    schedule: List[float] = []
    done = 0.0
    remaining = float(total_workload)
    for _ in range(max_batches):
        # Equation 5: memory left for the next batch's peak.
        headroom = (
            budget - model.residual(done)
            if done > 0
            else budget - model.residual.c
        )
        allowed = model.peak.invert(max(headroom, 0.0))
        if integral:
            allowed = float(int(allowed))
        if allowed < (1.0 if integral else MIN_BATCH_FRACTION * total_workload):
            if not schedule:
                raise TuningError(
                    "memory budget below the model's constant terms; "
                    "no feasible first batch"
                )
            # Residual memory of the processed workload leaves no
            # headroom for the rest: the *total* workload is infeasible
            # under Equation 1 no matter how it is batched.
            raise TuningError(
                f"workload infeasible: after {done:g} units the projected "
                f"residual memory leaves no headroom for the remaining "
                f"{remaining:g}; reduce the workload, raise the overload "
                "fraction, or add machines"
            )
        batch = min(remaining, allowed)
        schedule.append(batch)
        done += batch
        remaining -= batch
        if remaining <= (0.5 if integral else 1e-9):
            if remaining > 0:
                schedule[-1] += remaining
            return schedule
    raise TuningError(
        f"schedule exceeds {max_batches} batches with {remaining:g} units "
        "left; the workload is effectively infeasible under the memory "
        "budget"
    )


def validate_schedule(
    schedule: List[float],
    model: MemoryCostModel,
    machine: MachineSpec,
    overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
    slack: float = 1.02,
) -> Optional[int]:
    """Check Equation 1 for every batch; return the index of the first
    violating batch or ``None`` when the schedule is feasible.

    ``slack`` tolerates the integral rounding of batch workloads.
    """
    budget = overload_fraction * machine.memory_bytes * slack
    done = 0.0
    for index, batch in enumerate(schedule):
        projected = (
            model.residual(done) if done > 0 else model.residual.c
        ) + model.peak(batch)
        if projected > budget:
            return index
        done += batch
    return None
