"""The batch-schedule planner (Equations 1, 5, 6).

Objective: find ``S = {W_1, ..., W_t}`` with ``Σ W_i = W`` such that for
every batch ``j``::

    Mr(Σ_{i≤j} W_i) + M*(W_{j+1}) ≤ p · M          (Equation 1)

Computation is iterative (Equation 5/6): batch ``i+1`` receives the
largest workload whose projected peak fits beside the residual of
everything already processed::

    W_{i+1} = ((p·M − a2·(Σ_{j≤i} W_j)^b2 − c2 − c1) / a1)^(1/b1)

Residual memory grows with processed workload, so the schedule
decreases monotonically — the paper's example for W=5120 on 4 machines
is ``[2747, 1388, 644, 266, 75]``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.machine import MachineSpec
from repro.errors import TuningError
from repro.tuning.memory_model import MemoryCostModel

#: Default overloading parameter p: fraction of physical memory a
#: machine may use before it counts as overloaded. Section 4.3 puts the
#: usable capacity at 14/16 ≈ 0.875 of physical memory; planning right
#: at that boundary leaves no slack for model error, so the default
#: keeps a small safety margin below it.
DEFAULT_OVERLOAD_FRACTION = 0.8

#: Safety floor: a planned batch smaller than this fraction of the
#: remaining workload ends the iteration by folding the tail into a
#: final batch (prevents infinitely-shrinking tails).
MIN_BATCH_FRACTION = 0.005


class IncrementalPlanner:
    """Incremental admit/release planning over a fitted memory model.

    The offline :func:`plan_batches` computes a whole schedule in one
    pass; the online scheduler instead needs Equation 5 *one step at a
    time*: "given what has already been admitted (and whose residual
    memory is still resident), how large may the next batch be?". The
    planner tracks the cumulative admitted workload ``done`` and
    answers that question with :meth:`admissible_workload`;
    :meth:`admit` charges a batch against the budget and :meth:`release`
    credits it back when residual memory is flushed (backpressure).

    :func:`plan_batches` is reimplemented on top of this class, so the
    offline schedule is exactly the fixed point of repeatedly admitting
    the largest admissible batch — the degenerate, all-pre-queued case
    of online scheduling.
    """

    def __init__(
        self,
        model: MemoryCostModel,
        machine: MachineSpec,
        overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
        integral: bool = True,
    ) -> None:
        if not 0 < overload_fraction <= 1:
            raise TuningError("overload_fraction must be in (0, 1]")
        self.model = model
        self.machine = machine
        self.overload_fraction = float(overload_fraction)
        self.integral = integral
        #: ``p·M``: the planning budget in (scaled) bytes.
        self.budget = self.overload_fraction * machine.memory_bytes
        #: Cumulative admitted workload whose residual is still resident.
        self.done = 0.0

    def residual_bytes(self) -> float:
        """Projected residual memory ``Mr(done)`` of the admitted work.

        With nothing admitted this is the model's constant term — the
        fitted floor of the residual curve, matching Equation 5's
        first-batch case.
        """
        if self.done > 0:
            return float(self.model.residual(self.done))
        return float(self.model.residual.c)

    def headroom(self) -> float:
        """Memory left for the next batch's peak (Equation 5 numerator)."""
        return self.budget - self.residual_bytes()

    def admissible_workload(self) -> float:
        """Largest workload whose projected peak fits in the headroom.

        Inverts ``M*`` at the current headroom; with ``integral=True``
        the result is truncated to a whole unit count (walks/sources).
        """
        allowed = self.model.peak.invert(max(self.headroom(), 0.0))
        if self.integral:
            allowed = float(int(allowed))
        return allowed

    def admits(self, workload: float) -> bool:
        """Whether ``workload`` fits beside the current residual."""
        return 0 < workload <= self.admissible_workload()

    def admit(self, workload: float) -> float:
        """Charge ``workload`` against the budget; returns new ``done``.

        Raises :class:`TuningError` if the batch does not fit — callers
        are expected to size batches with :meth:`admissible_workload`
        first, so an oversized admit is a logic error, never a silent
        budget overrun.
        """
        if workload <= 0:
            raise TuningError("admitted workload must be positive")
        if workload > self.admissible_workload():
            raise TuningError(
                f"batch of {workload:g} units exceeds the admissible "
                f"{self.admissible_workload():g} under the "
                f"{self.overload_fraction:g} memory budget"
            )
        self.done += float(workload)
        return self.done

    def release(self, workload: Optional[float] = None) -> float:
        """Credit flushed residual back to the budget; returns ``done``.

        ``release()`` with no argument models a full residual flush
        (results shipped to the caller): the planner forgets all
        admitted work. A partial ``workload`` subtracts just that much,
        clamped at zero.
        """
        if workload is None:
            self.done = 0.0
        else:
            if workload < 0:
                raise TuningError("released workload must be non-negative")
            self.done = max(self.done - float(workload), 0.0)
        return self.done


def plan_batches(
    model: MemoryCostModel,
    total_workload: float,
    machine: MachineSpec,
    overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
    max_batches: int = 64,
    integral: bool = True,
) -> List[float]:
    """Compute the Optimized schedule for ``total_workload``.

    Parameters
    ----------
    model:
        the fitted (M*, Mr) pair, in the same (scaled) byte units as
        ``machine.memory_bytes``.
    total_workload:
        the job's workload ``W``.
    machine:
        target machine spec; ``p·M`` is ``overload_fraction *
        machine.memory_bytes``.
    max_batches:
        hard cap on schedule length.
    integral:
        round batch workloads to integers (walk/source counts).

    Returns a list of positive batch workloads summing to ``W``. Raises
    :class:`TuningError` when even an empty cluster cannot fit the
    smallest batch (budget below the models' constant terms).
    """
    if total_workload <= 0:
        raise TuningError("total workload must be positive")
    planner = IncrementalPlanner(
        model, machine, overload_fraction, integral=integral
    )

    schedule: List[float] = []
    remaining = float(total_workload)
    for _ in range(max_batches):
        # Equation 5: the largest batch whose peak fits beside the
        # residual of everything already admitted.
        allowed = planner.admissible_workload()
        if allowed < (1.0 if integral else MIN_BATCH_FRACTION * total_workload):
            if not schedule:
                raise TuningError(
                    "memory budget below the model's constant terms; "
                    "no feasible first batch"
                )
            # Residual memory of the processed workload leaves no
            # headroom for the rest: the *total* workload is infeasible
            # under Equation 1 no matter how it is batched.
            raise TuningError(
                f"workload infeasible: after {planner.done:g} units the "
                f"projected residual memory leaves no headroom for the "
                f"remaining {remaining:g}; reduce the workload, raise the "
                "overload fraction, or add machines"
            )
        batch = min(remaining, allowed)
        schedule.append(batch)
        planner.admit(batch)
        remaining -= batch
        if remaining <= (0.5 if integral else 1e-9):
            if remaining > 0:
                schedule[-1] += remaining
            return schedule
    raise TuningError(
        f"schedule exceeds {max_batches} batches with {remaining:g} units "
        "left; the workload is effectively infeasible under the memory "
        "budget"
    )


def validate_schedule(
    schedule: List[float],
    model: MemoryCostModel,
    machine: MachineSpec,
    overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
    slack: float = 1.02,
) -> Optional[int]:
    """Check Equation 1 for every batch; return the index of the first
    violating batch or ``None`` when the schedule is feasible.

    ``slack`` tolerates the integral rounding of batch workloads.
    """
    budget = overload_fraction * machine.memory_bytes * slack
    done = 0.0
    for index, batch in enumerate(schedule):
        projected = (
            model.residual(done) if done > 0 else model.residual.c
        ) + model.peak(batch)
        if projected > budget:
            return index
        done += batch
    return None
