"""Online ask-tell calibration of the memory/cost models (DESIGN.md §15).

The Section-5 trainer fits ``M*``/``Mr`` once at startup from a synthetic
probe ladder and never touches them again, yet a long-lived service
executes thousands of real batches whose observed peaks and seconds are
strictly better training points. This module restructures that tuning
flow around an *ask-tell* loop:

- the planner **asks** for a prediction (:meth:`Calibrator.ask`,
  :meth:`Calibrator.predict_seconds`);
- the engine **tells** an observed ``(workload, peak, residual,
  seconds)`` back after every executed batch
  (:meth:`Calibrator.tell`);
- the LMA fit updates incrementally with residual-trend drift
  detection — a windowed mean of standardized residuals against the
  model of the last refit — and every refit re-applies the
  overload-safe envelope so ``predict(w) >= max observed peak at w``
  stays invariant.

Startup probe training is just the calibrator's first tells
(:meth:`Calibrator.train` collects the probe ladder and seeds the
sample set the refits extend), and the fitted coefficients persist in
the artifact cache keyed on ``(engine, kind, graph fingerprint)`` so a
service restart skips probe training entirely
(:meth:`Calibrator.load_or_train`).

Determinism contract: tells are order-insensitive within a refit window
(the refit sorts its sample set), the cold initial fit is bit-identical
to :func:`repro.tuning.trainer.train_memory_models`, and a warm restart
resumes from the persisted coefficients *and* probe samples so it
replays the cold run's refit trajectory exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engines.base import SimulatedEngine
from repro.errors import TuningError
from repro.rng import SeedLike
from repro.tuning.memory_model import MemoryCostModel, PowerLawModel
from repro.tuning.trainer import (
    TaskFactory,
    TrainingSample,
    collect_training_samples,
    fit_memory_models,
    probe_workloads,
)

__all__ = [
    "CalibrationStats",
    "Calibrator",
    "calibration_cache_key",
    "CALIBRATION_VERSION",
    "DRIFT_WINDOW",
    "DRIFT_Z_THRESHOLD",
]

#: Bump to invalidate persisted calibration artifacts on format change.
CALIBRATION_VERSION = 1

#: Number of consecutive tells whose standardized residuals are averaged
#: before the drift detector may fire.
DRIFT_WINDOW = 8

#: Drift fires when the window-mean standardized residual leaves
#: ``[-threshold, +threshold]``. Set well above per-tell measurement
#: noise so jitter never triggers a refit.
DRIFT_Z_THRESHOLD = 1.5

#: Standardized residuals use ``max(rmse, floor * |prediction|)`` as the
#: scale, so a near-perfect fit (rmse ~ 0) does not turn benign noise
#: into huge z-scores.
RELATIVE_SCALE_FLOOR = 0.05


@dataclass
class CalibrationStats:
    """Counters for one calibrator's trajectory, surfaced under the
    ``"calibration"`` section of ``BENCH_perf.json``."""

    #: probe executions this calibrator ran (0 on a warm restart).
    training_runs: int = 0
    #: probe seconds a warm restart skipped by loading coefficients.
    probe_seconds_saved: float = 0.0
    #: whether the calibrator was restored from the artifact cache.
    warm_start: bool = False
    tells: int = 0
    refits: int = 0
    drift_events: int = 0
    #: immediate envelope inflations on under-predicted tells.
    envelope_bumps: int = 0
    #: peak-model fit RMSE at the initial fit and after the last refit.
    rmse_before: float = 0.0
    rmse_after: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for reports and ``BENCH_perf.json``."""
        return {
            "training_runs": self.training_runs,
            "probe_seconds_saved": self.probe_seconds_saved,
            "warm_start": self.warm_start,
            "tells": self.tells,
            "refits": self.refits,
            "drift_events": self.drift_events,
            "envelope_bumps": self.envelope_bumps,
            "rmse_before": self.rmse_before,
            "rmse_after": self.rmse_after,
        }


def calibration_cache_key(
    engine_name: str,
    kind: str,
    fingerprint: str,
    reference_workload: float,
    seed: SeedLike,
) -> Tuple:
    """Artifact-cache key for persisted coefficients: one calibration per
    (engine, task kind, graph content, probe ladder, training seed)."""
    return (
        "calibration",
        CALIBRATION_VERSION,
        engine_name,
        kind,
        fingerprint,
        float(reference_workload),
        repr(seed),
    )


def _fit_seconds_model(
    samples: Sequence[TrainingSample], seed: SeedLike
) -> Optional[PowerLawModel]:
    """Power-law seconds(W) fit from the same samples the memory fits
    use; ``None`` when the points are degenerate (the cost-aware
    policies then fall back to their even/admit-all defaults)."""
    usable = [s for s in samples if not s.overloaded]
    if len(usable) < 3:
        return None
    try:
        return PowerLawModel.fit(
            [s.workload for s in usable],
            [s.seconds for s in usable],
            seed=seed,
        )
    except TuningError:
        return None


def _envelope_exact(
    model: PowerLawModel, points: Sequence[Tuple[float, float]]
) -> PowerLawModel:
    """Raise ``a`` to the smallest value with ``model(w) >= y`` for every
    point — the overload-safe envelope the refits maintain.

    Unlike the trainer's ratio-form envelope this is exact for any sign
    of ``c``, and taking the max of the required ``a`` values makes it
    order-insensitive.
    """
    a = model.a
    for w, y in points:
        if w <= 0:
            continue
        needed = (y - model.c) / float(np.power(w, model.b))
        if needed > a:
            a = needed
    if a == model.a:
        return model
    return PowerLawModel(a=a, b=model.b, c=model.c, rmse=model.rmse)


class Calibrator:
    """Ask-tell calibration loop for one (engine, task kind).

    Construction paths:

    - :meth:`train` — cold start: run the probe ladder (the calibrator's
      first tells) and fit; bit-identical to
      :func:`~repro.tuning.trainer.train_memory_models`.
    - :meth:`load_or_train` — warm start: restore coefficients and probe
      samples from the artifact cache, skipping probe execution.
    """

    def __init__(
        self,
        model: MemoryCostModel,
        seconds_model: Optional[PowerLawModel],
        samples: Sequence[TrainingSample],
        *,
        seed: SeedLike = None,
        window: int = DRIFT_WINDOW,
        threshold: float = DRIFT_Z_THRESHOLD,
        stats: Optional[CalibrationStats] = None,
    ) -> None:
        self._model = model
        self._seconds = seconds_model
        self._samples: List[TrainingSample] = list(samples)
        #: (done workload, residual bytes) pairs the residual refit uses;
        #: probes are 1-batch jobs so done == workload for them.
        self._residual_points: List[Tuple[float, float]] = [
            (s.workload, s.residual_memory_bytes)
            for s in self._samples
            if not s.overloaded
        ]
        self.seed = seed
        self.window = int(window)
        self.threshold = float(threshold)
        self.stats = stats or CalibrationStats()
        if stats is None:
            self.stats.rmse_before = model.peak.rmse
            self.stats.rmse_after = model.peak.rmse
        #: drift is measured against the model of the last refit, not the
        #: envelope-bumped live model — a regime shift keeps producing
        #: large z-scores even after the first bump covers it.
        self._reference_peak = model.peak
        self._zscores: List[float] = []
        #: bumped on every model change so consumers can re-price cheaply.
        self.version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls, samples: Sequence[TrainingSample], *, seed: SeedLike = None
    ) -> "Calibrator":
        """Fit from already-collected probe samples (the first tells)."""
        model = fit_memory_models(samples, seed=seed)
        seconds = _fit_seconds_model(samples, seed)
        cal = cls(model, seconds, samples, seed=seed)
        cal.stats.training_runs = len(samples)
        return cal

    @classmethod
    def train(
        cls,
        engine: SimulatedEngine,
        task_factory: TaskFactory,
        total_workload: float,
        *,
        seed: SeedLike = None,
    ) -> "Calibrator":
        """Cold start: run the probe ladder and fit.

        The probe runs are exactly the trainer's, so the resulting
        memory model is bit-identical to
        :func:`~repro.tuning.trainer.train_memory_models`.
        """
        ladder = probe_workloads(total_workload)
        samples = collect_training_samples(
            engine, task_factory, ladder, seed=seed
        )
        return cls.from_samples(samples, seed=seed)

    @classmethod
    def load_or_train(
        cls,
        engine: SimulatedEngine,
        task_factory: TaskFactory,
        total_workload: float,
        *,
        kind: str,
        graph_fingerprint: str,
        seed: SeedLike = None,
        cache=None,
    ) -> "Calibrator":
        """Restore persisted coefficients, or train and persist them.

        With a cache, the cold path trains once and stores the fitted
        coefficients *and* probe samples; a later service restart (same
        engine, kind, graph content, seed) restores both — zero probe
        runs, and refits replay on the identical sample set so the warm
        run reproduces the cold run's scheduling trajectory.
        """
        if cache is None:
            return cls.train(
                engine, task_factory, total_workload, seed=seed
            )
        from repro.perf.cache import ArraySerializer

        key = calibration_cache_key(
            engine.name, kind, graph_fingerprint, total_workload, seed
        )
        built: Dict[str, Any] = {}

        def build() -> Dict[str, np.ndarray]:
            cal = cls.train(
                engine, task_factory, total_workload, seed=seed
            )
            built["calibrator"] = cal
            return cal.pack()

        serializer = ArraySerializer(
            pack=lambda arrays: arrays, unpack=lambda arrays: dict(arrays)
        )
        arrays = cache.get_or_build(key, build, serializer=serializer)
        if "calibrator" in built:
            return built["calibrator"]
        return cls.unpack(arrays, seed=seed)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def pack(self) -> Dict[str, np.ndarray]:
        """Arrays for the artifact cache (12 coefficients + samples)."""
        def coeffs(model: Optional[PowerLawModel]) -> np.ndarray:
            if model is None:
                return np.full(4, np.nan, dtype=np.float64)
            return np.array(
                [model.a, model.b, model.c, model.rmse], dtype=np.float64
            )

        samples = np.array(
            [
                (
                    s.workload,
                    s.peak_memory_bytes,
                    s.residual_memory_bytes,
                    s.seconds,
                    1.0 if s.overloaded else 0.0,
                )
                for s in self._samples
            ],
            dtype=np.float64,
        ).reshape(len(self._samples), 5)
        return {
            "peak": coeffs(self._model.peak),
            "residual": coeffs(self._model.residual),
            "seconds": coeffs(self._seconds),
            "samples": samples,
            "rmse_before": np.float64(self.stats.rmse_before),
        }

    @classmethod
    def unpack(
        cls, arrays: Dict[str, np.ndarray], *, seed: SeedLike = None
    ) -> "Calibrator":
        """Rebuild a warm calibrator from :meth:`pack` arrays."""
        def model_from(name: str) -> Optional[PowerLawModel]:
            values = np.asarray(arrays[name], dtype=np.float64).ravel()
            if np.isnan(values).any():
                return None
            return PowerLawModel(
                a=float(values[0]),
                b=float(values[1]),
                c=float(values[2]),
                rmse=float(values[3]),
            )

        peak = model_from("peak")
        residual = model_from("residual")
        if peak is None or residual is None:
            raise TuningError("persisted calibration is missing models")
        raw = np.asarray(arrays["samples"], dtype=np.float64)
        samples = [
            TrainingSample(
                workload=float(row[0]),
                peak_memory_bytes=float(row[1]),
                residual_memory_bytes=float(row[2]),
                seconds=float(row[3]),
                overloaded=bool(row[4]),
            )
            for row in raw.reshape(-1, 5)
        ]
        stats = CalibrationStats(
            training_runs=0,
            probe_seconds_saved=float(sum(s.seconds for s in samples)),
            warm_start=True,
            rmse_before=float(np.asarray(arrays["rmse_before"]).ravel()[0]),
            rmse_after=peak.rmse,
        )
        return cls(
            MemoryCostModel(peak=peak, residual=residual),
            model_from("seconds"),
            samples,
            seed=seed,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Ask / tell
    # ------------------------------------------------------------------
    @property
    def model(self) -> MemoryCostModel:
        """The (M*, Mr) pair the planner consumes right now."""
        return self._model

    @property
    def seconds_model(self) -> Optional[PowerLawModel]:
        """Fitted seconds(W), or None when the fit was degenerate."""
        return self._seconds

    def ask(self, workload: float, done_workload: float = 0.0) -> float:
        """Predicted peak bytes for a batch of ``workload`` on top of the
        residual of ``done_workload`` (Equation 1's left side)."""
        return float(self._model.projected_peak(workload, done_workload))

    def predict_seconds(self, workload: float) -> Optional[float]:
        """Predicted execution seconds for ``workload`` (None when no
        seconds model could be fitted)."""
        if self._seconds is None:
            return None
        return float(max(self._seconds(workload), 0.0))

    def tell(
        self,
        workload: float,
        peak_memory_bytes: float,
        residual_memory_bytes: float,
        seconds: float,
        *,
        done_workload: Optional[float] = None,
        overloaded: bool = False,
    ) -> None:
        """Feed one executed batch's observed statistics back.

        Order-insensitive within a refit window: the sample set is a
        multiset, envelope bumps take the max required ``a``, and the
        refit sorts before fitting — telling the same observations in a
        different order yields the same refitted model.
        """
        workload = float(workload)
        self.stats.tells += 1
        self._samples.append(
            TrainingSample(
                workload=workload,
                peak_memory_bytes=float(peak_memory_bytes),
                residual_memory_bytes=float(residual_memory_bytes),
                seconds=float(seconds),
                overloaded=bool(overloaded),
            )
        )
        if overloaded:
            # An aborted batch's stats are censored (the run was cut
            # off); keep the sample out of the fits and the detector.
            return
        done = workload if done_workload is None else float(done_workload)
        self._residual_points.append((done, float(residual_memory_bytes)))
        predicted = float(self._model.peak(workload))
        if peak_memory_bytes > predicted:
            bumped = _envelope_exact(
                self._model.peak, [(workload, float(peak_memory_bytes))]
            )
            if bumped is not self._model.peak:
                self._model = MemoryCostModel(
                    peak=bumped, residual=self._model.residual
                )
                self.stats.envelope_bumps += 1
                self.version += 1
        reference = float(self._reference_peak(workload))
        scale = max(
            self._reference_peak.rmse,
            RELATIVE_SCALE_FLOOR * abs(reference),
            1e-9,
        )
        self._zscores.append((float(peak_memory_bytes) - reference) / scale)
        if len(self._zscores) >= self.window:
            recent = self._zscores[-self.window :]
            if abs(sum(recent) / len(recent)) > self.threshold:
                self.stats.drift_events += 1
                self.refit()

    def refit(self) -> MemoryCostModel:
        """Refit all models from every sample seen so far.

        The sample multiset is sorted first, so the fit depends only on
        *which* observations were told, not their order; the exact
        envelope is re-applied over every non-overloaded sample to keep
        the overload-safety invariant.
        """
        ordered = sorted(
            self._samples,
            key=lambda s: (
                s.workload,
                s.peak_memory_bytes,
                s.residual_memory_bytes,
                s.seconds,
                s.overloaded,
            ),
        )
        usable = [s for s in ordered if not s.overloaded]
        if len(usable) >= 3:
            peak = PowerLawModel.fit(
                [s.workload for s in usable],
                [s.peak_memory_bytes for s in usable],
                seed=self.seed,
            )
            peak = _envelope_exact(
                peak,
                [(s.workload, s.peak_memory_bytes) for s in usable],
            )
            residual_points = sorted(self._residual_points)
            try:
                residual = PowerLawModel.fit(
                    [w for w, _ in residual_points],
                    [r for _, r in residual_points],
                    seed=self.seed,
                )
            except TuningError:
                residual = self._model.residual
            self._model = MemoryCostModel(peak=peak, residual=residual)
            seconds = _fit_seconds_model(usable, self.seed)
            if seconds is not None:
                self._seconds = seconds
            self._reference_peak = peak
            self.stats.refits += 1
            self.stats.rmse_after = peak.rmse
            self.version += 1
        self._zscores.clear()
        return self._model
