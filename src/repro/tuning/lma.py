"""Levenberg-Marquardt least squares for ``f(x) = a·x^b + c``.

Section 5 fits the exponential memory models with "the standard
Levenberg-Marquardt algorithm (LMA)", linearising the model around the
current parameters (Equation 4) and taking damped Gauss-Newton steps.
This module implements LMA from scratch on numpy: a generic driver
(:func:`levenberg_marquardt`) over user-supplied residual/Jacobian
callables, plus the power-law front-end (:func:`fit_power_law`) with the
paper's random restarts ("(a, b, c) will be initialized randomly and
updated ... until they converge or maximum trials are reached").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import FitError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class FitResult:
    """Outcome of a Levenberg-Marquardt fit."""

    params: np.ndarray
    cost: float
    iterations: int
    converged: bool

    @property
    def rmse(self) -> float:
        return float(np.sqrt(self.cost))


def levenberg_marquardt(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    jacobian_fn: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
    initial_damping: float = 1e-3,
    lower_bounds: Optional[np.ndarray] = None,
    upper_bounds: Optional[np.ndarray] = None,
) -> FitResult:
    """Minimise ``Σ residual(x)^2`` with damped Gauss-Newton steps.

    Classic LMA damping schedule: a step that reduces the cost is
    accepted and the damping λ divided by 3; a step that increases it is
    rejected and λ multiplied by 2. Optional box bounds are enforced by
    clipping candidate steps (adequate for the well-separated parameters
    of the memory models).
    """
    x = np.asarray(x0, dtype=np.float64).copy()
    damping = float(initial_damping)
    residuals = residual_fn(x)
    cost = float(residuals @ residuals)
    converged = False

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        jacobian = jacobian_fn(x)
        gradient = jacobian.T @ residuals
        if np.linalg.norm(gradient, ord=np.inf) < tolerance:
            converged = True
            break
        hessian_approx = jacobian.T @ jacobian
        accepted = False
        for _attempt in range(50):
            damped = hessian_approx + damping * np.diag(
                np.maximum(np.diag(hessian_approx), 1e-12)
            )
            try:
                step = np.linalg.solve(damped, -gradient)
            except np.linalg.LinAlgError:
                damping *= 10.0
                continue
            candidate = x + step
            if lower_bounds is not None:
                candidate = np.maximum(candidate, lower_bounds)
            if upper_bounds is not None:
                candidate = np.minimum(candidate, upper_bounds)
            candidate_residuals = residual_fn(candidate)
            candidate_cost = float(candidate_residuals @ candidate_residuals)
            if np.isfinite(candidate_cost) and candidate_cost < cost:
                improvement = cost - candidate_cost
                x = candidate
                residuals = candidate_residuals
                cost = candidate_cost
                damping = max(damping / 3.0, 1e-12)
                accepted = True
                if improvement < tolerance * (1.0 + cost):
                    converged = True
                break
            damping *= 2.0
        if not accepted or converged:
            if not accepted:
                converged = True  # damping exhausted: local optimum
            break

    return FitResult(
        params=x, cost=cost, iterations=iterations, converged=converged
    )


def _power_law_residuals(
    x: np.ndarray, y: np.ndarray
) -> Tuple[Callable[[np.ndarray], np.ndarray], Callable[[np.ndarray], np.ndarray]]:
    """Residual and Jacobian closures for ``f = a·x^b + c``."""

    def residual_fn(params: np.ndarray) -> np.ndarray:
        a, b, c = params
        return a * np.power(x, b) + c - y

    def jacobian_fn(params: np.ndarray) -> np.ndarray:
        a, b, _c = params
        xb = np.power(x, b)
        # d/da, d/db, d/dc (Equation 4's linearisation terms).
        return np.stack(
            [xb, a * xb * np.log(np.maximum(x, 1e-300)), np.ones_like(x)],
            axis=1,
        )

    return residual_fn, jacobian_fn


def fit_power_law(
    x: np.ndarray,
    y: np.ndarray,
    max_trials: int = 8,
    seed: SeedLike = None,
    max_iterations: int = 200,
) -> FitResult:
    """Fit ``y ≈ a·x^b + c`` with randomly-restarted LMA.

    The exponent is bounded to ``[0, 4]`` (memory grows with workload but
    not absurdly) and ``a`` to non-negative values, matching the models'
    physical meaning. The best of ``max_trials`` restarts wins; a
    log-log regression provides one deterministic, well-informed start.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise FitError("x and y must be 1-D arrays of equal length")
    if x.size < 3:
        raise FitError("need at least 3 points to fit a·x^b + c")
    if np.any(x <= 0):
        raise FitError("x values must be positive")

    residual_fn, jacobian_fn = _power_law_residuals(x, y)
    lower = np.array([0.0, 0.0, -np.inf])
    upper = np.array([np.inf, 4.0, np.inf])
    rng = make_rng(seed, label="lma-restarts")

    starts = [_informed_start(x, y)]
    y_scale = max(float(np.abs(y).max()), 1.0)
    for _ in range(max_trials - 1):
        starts.append(
            np.array(
                [
                    y_scale / max(x.max(), 1.0) * rng.random(),
                    rng.uniform(0.2, 2.0),
                    float(y.min()) * rng.random(),
                ]
            )
        )

    best: Optional[FitResult] = None
    for start in starts:
        result = levenberg_marquardt(
            residual_fn,
            jacobian_fn,
            start,
            max_iterations=max_iterations,
            lower_bounds=lower,
            upper_bounds=upper,
        )
        if best is None or result.cost < best.cost:
            best = result
    assert best is not None
    if not np.all(np.isfinite(best.params)):
        raise FitError("LMA diverged to non-finite parameters")
    return best


def _informed_start(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Log-log regression start: assume c ≈ min(y) and fit a, b."""
    c0 = float(y.min()) * 0.9
    shifted = np.maximum(y - c0, 1e-9)
    slope, intercept = np.polyfit(np.log(x), np.log(shifted), 1)
    b0 = float(np.clip(slope, 0.0, 4.0))
    a0 = float(np.exp(intercept))
    return np.array([a0, b0, c0])
