"""Command-line interface: ``python -m repro`` / ``vcrepro``.

Subcommands
-----------
``list``
    List datasets, engines, clusters and experiments.
``run``
    Run one multi-processing job and print its metrics.
``sweep``
    Sweep batch counts for one setting (a mini Figure 3 panel).
``experiment``
    Regenerate one paper table/figure (or ``all``).
``tune``
    Train the Section 5 auto-tuner and run a workload.
``report``
    Run every experiment and write EXPERIMENTS.md.
``serve``
    Run the online scheduling service on a seeded arrival stream.

Shared flags (``--scale``, ``--seed``, ``--jobs``, ``--cache-dir``,
``--max-retries``, ``--numa``, ``--max-ram``, ``--kernel-workers``,
the setting flags, and the fault knobs)
are declared once on common *parent parsers* and inherited by every
subcommand that needs them, so a new subcommand can never drift out of
sync with the rest of the CLI.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import PRESETS, cluster_by_name
from repro.engines.registry import ENGINE_NAMES
from repro.errors import ConfigurationError, ReproError
from repro.experiments.base import ExperimentConfig
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.graph.datasets import DEFAULT_SCALE, PAPER_DATASETS, load_dataset
from repro.perf import timings
from repro.perf.cache import configure_cache, get_cache
from repro.rng import DEFAULT_SEED
from repro.tasks.base import make_task
from repro.tuning.autotuner import AutoTuner


def _job_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0")
    return value


#: ``--max-ram`` suffix multipliers (case-insensitive, powers of two).
_RAM_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def _ram_budget(text: str) -> int:
    """Parse a ``--max-ram`` value: plain bytes or K/M/G/T suffixed."""
    raw = text.strip().lower().rstrip("b")
    multiplier = 1
    if raw and raw[-1] in _RAM_SUFFIXES:
        multiplier = _RAM_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid memory budget {text!r}; use bytes or a K/M/G/T "
            "suffix (e.g. 512M, 2G)"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError("memory budget must be positive")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    """Declare the runtime knobs shared by every executing subcommand."""
    parser.add_argument(
        "--scale",
        type=int,
        default=DEFAULT_SCALE,
        help="simulation scale: dataset nodes and cluster capacities are "
        f"divided by this factor (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="master RNG seed"
    )
    parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        help="worker processes for independent runs (0 = one per CPU, "
        "default 1 = serial); results are identical either way",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk artifact cache (graphs and "
        "engine runs persist as .npz across invocations); defaults to "
        "the REPRO_CACHE_DIR environment variable",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="isolated retries for an item whose pool worker died "
        "(default 2; 0 disables crash isolation)",
    )
    parser.add_argument(
        "--numa",
        choices=["auto", "off", "replicate", "interleave"],
        default="auto",
        help="NUMA policy for --jobs pools: auto pins workers to nodes "
        "round-robin and replicates shared graphs per node above a size "
        "threshold (interleaving below it); replicate/interleave force "
        "the segment policy; off restores unpinned behaviour. "
        "Single-node machines are an automatic no-op; results are "
        "byte-identical in every mode",
    )
    parser.add_argument(
        "--max-ram",
        type=_ram_budget,
        default=None,
        metavar="BYTES",
        help="resident-memory budget (e.g. 512M, 2G; default: the "
        "REPRO_MAX_RAM environment variable, else unlimited). Datasets "
        "whose in-RAM build would exceed it are built out-of-core into "
        "a memory-mapped CSR directory and processed with the "
        "block-streaming kernels; results are byte-identical",
    )
    parser.add_argument(
        "--kernel-workers",
        type=_job_count,
        default=0,
        metavar="N",
        help="intra-task worker threads for the sharded MSSP/BKHS/BPPR "
        "kernels (row-sharded expand/reduce with a deterministic "
        "winner-key merge); 0 or 1 = serial (default). Orthogonal to "
        "--jobs, which parallelises across independent runs; results "
        "are byte-identical at any worker count",
    )


def _add_setting(parser: argparse.ArgumentParser) -> None:
    """Declare the dataset/task/engine/cluster setting flags."""
    parser.add_argument("--dataset", default="dblp", help="paper dataset name")
    parser.add_argument(
        "--task",
        default="bppr",
        choices=["bppr", "bppr-query", "mssp", "bkhs", "pagerank"],
    )
    parser.add_argument("--workload", type=float, default=1024.0)
    parser.add_argument("--engine", default="pregel+", help="VC-system mode")
    parser.add_argument(
        "--cluster", default="galaxy-8", help="galaxy-8 | galaxy-27 | docker-32"
    )
    parser.add_argument(
        "--machines",
        type=int,
        default=None,
        help="override the preset's machine count",
    )


def _add_faults(parser: argparse.ArgumentParser) -> None:
    """Declare the fault-injection knobs shared by ``run`` and ``serve``."""
    parser.add_argument(
        "--faults",
        type=float,
        default=0.0,
        metavar="RATE",
        help="inject a seeded fault plan: per-round crash probability "
        "(stragglers/message loss at half the rate, disk-full at a "
        "quarter)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="K",
        help="write a checkpoint every K rounds (Pregel model); crash "
        "replay is then bounded by K rounds (0 = no checkpoints)",
    )


def _apply_runtime_knobs(args) -> None:
    """Apply ``--cache-dir``/``--max-retries``/``--numa``/``--max-ram``."""
    if getattr(args, "cache_dir", None):
        configure_cache(directory=args.cache_dir)
    if getattr(args, "max_retries", None) is not None:
        from repro.perf.parallel import configure_retries

        configure_retries(max_retries=args.max_retries)
    if getattr(args, "numa", None) is not None:
        from repro.perf import numa

        numa.configure_numa(mode=args.numa)
    if getattr(args, "kernel_workers", None):
        from repro.perf.kernel_pool import configure_kernel_workers

        configure_kernel_workers(args.kernel_workers)
    max_ram = getattr(args, "max_ram", None)
    if max_ram is None:
        env = os.environ.get("REPRO_MAX_RAM", "").strip()
        if env:
            try:
                max_ram = _ram_budget(env)
            except argparse.ArgumentTypeError as exc:
                raise ReproError(f"REPRO_MAX_RAM: {exc}") from None
    if max_ram is not None:
        from repro.graph.csr import configure_streaming

        configure_streaming(max_ram_bytes=max_ram)


# Backwards-compatible alias (pre-NUMA name).
_apply_cache_dir = _apply_runtime_knobs


def _build_setting(args):
    _apply_runtime_knobs(args)
    cluster = cluster_by_name(args.cluster, scale=args.scale)
    if args.machines:
        cluster = cluster.with_machines(args.machines)
    graph = load_dataset(args.dataset, scale=args.scale)
    task = make_task(args.task, graph, args.workload)
    return cluster, graph, task


def cmd_list(args) -> int:
    """``vcrepro list``: show datasets, engines, clusters, experiments."""
    print("datasets: ", ", ".join(sorted(PAPER_DATASETS)))
    print("engines:  ", ", ".join(ENGINE_NAMES))
    print("clusters: ", ", ".join(sorted(PRESETS)))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def cmd_run(args) -> int:
    """``vcrepro run``: execute one job and print (or JSON-dump) metrics."""
    from repro.faults.plan import mixed_fault_plan

    cluster, _graph, task = _build_setting(args)
    job = MultiProcessingJob(args.engine, cluster)
    plan = None
    if args.faults:
        plan = mixed_fault_plan(args.seed, cluster.num_machines, args.faults)
    metrics = job.run(
        task,
        num_batches=args.batches,
        seed=args.seed,
        fault_plan=plan,
        checkpoint_every=args.checkpoint_every or None,
        on_overload=args.on_overload,
    )
    if args.json:
        import json

        print(json.dumps(metrics.to_dict(include_rounds=args.rounds),
                         indent=2))
        return 0
    print(metrics.summary())
    for batch in metrics.batches:
        print(
            f"  batch {batch.batch_index}: W={batch.workload:g} "
            f"rounds={batch.num_rounds} time={batch.seconds:.1f}s "
            f"overloaded={batch.overloaded}"
        )
    if plan or args.checkpoint_every:
        print(
            f"  recovery: {metrics.fault_events} fault events, "
            f"{metrics.crashes} crashes, "
            f"{metrics.rounds_replayed} rounds replayed "
            f"({metrics.replay_seconds:.1f}s), "
            f"{metrics.checkpoints_written} checkpoints "
            f"({metrics.checkpoint_seconds:.1f}s)"
        )
    return 0


def cmd_sweep(args) -> int:
    """``vcrepro sweep``: batch-count sweep with regime classification."""
    from repro.analysis.tradeoff import TradeoffCurve

    cluster, _graph, task = _build_setting(args)
    job = MultiProcessingJob(args.engine, cluster)
    runs = job.sweep_batches(task, seed=args.seed)
    print(
        f"{args.engine} / {args.task} W={args.workload:g} on "
        f"{cluster.name} ({cluster.num_machines} machines):"
    )
    curve = TradeoffCurve.from_runs(runs, cluster.scaled_machine)
    for point, metrics in zip(curve.points, runs):
        print(
            f"  {point.batches:>3} batches: {metrics.time_label():>10} "
            f" msgs/round={point.messages_per_round:>12,.0f}"
            f"  [{point.regime}]"
        )
    best = curve.optimum
    if best is not None:
        print(f"optimum: {best.batches} batches")
    print(f"advice: {curve.advice()}")
    return 0


def cmd_experiment(args) -> int:
    """``vcrepro experiment``: regenerate paper figures/tables."""
    _apply_runtime_knobs(args)
    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        quick=args.quick,
        jobs=args.jobs,
        preempt=getattr(args, "preempt", False),
        multi_tenant=getattr(args, "multi_tenant", False),
        calibrate=getattr(args, "calibrate", False),
    )
    ids = list(EXPERIMENTS) if args.id == "all" else [args.id]
    failures = 0
    for eid in ids:
        start = time.time()
        result = run_experiment(eid, config)
        print(result.to_text())
        print(f"[{time.time() - start:.1f}s]\n")
        failures += sum(1 for holds in result.claims.values() if not holds)
        if result.extras.get("resilience"):
            _merge_bench_section("resilience", result.extras["resilience"])
            print("recorded resilience section in BENCH_perf.json\n")
        if result.extras.get("tenants"):
            _merge_bench_section("tenants", result.extras["tenants"])
            print("recorded tenants section in BENCH_perf.json\n")
        if result.extras.get("calibration"):
            _merge_bench_section(
                "calibration", result.extras["calibration"]
            )
            print("recorded calibration section in BENCH_perf.json\n")
    return 1 if failures else 0


def _merge_bench_section(section: str, payload) -> None:
    """Merge one top-level section into ``BENCH_perf.json`` in-place,
    preserving whatever other sections (timings, sched) already exist."""
    import json

    bench_path = Path("BENCH_perf.json")
    existing = {}
    if bench_path.exists():
        try:
            with open(bench_path, encoding="utf-8") as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = {}
    existing[section] = payload
    with open(bench_path, "w", encoding="utf-8") as fh:
        json.dump(existing, fh, indent=2, sort_keys=True)
        fh.write("\n")


def cmd_tune(args) -> int:
    """``vcrepro tune``: train the Section 5 auto-tuner and run a job."""
    cluster, graph, _task = _build_setting(args)
    tuner = AutoTuner.for_engine(
        args.engine,
        cluster,
        lambda w: make_task(args.task, graph, w),
        seed=args.seed,
    )
    report = tuner.run(args.workload)
    model = report.model
    print(
        f"memory models: M*(W) = {model.peak.a:.3g}*W^{model.peak.b:.3f} "
        f"+ {model.peak.c:.3g}; "
        f"Mr(W) = {model.residual.a:.3g}*W^{model.residual.b:.3f} "
        f"+ {model.residual.c:.3g}"
    )
    print(report.summary())
    return 0


def cmd_report(args) -> int:
    """``vcrepro report``: write EXPERIMENTS.md from a full run.

    Also prints the phase-timing table accumulated during the run and
    dumps it (plus cache hit/miss counters and total wall-clock) as
    ``BENCH_perf.json`` next to the report, so successive runs leave a
    performance trajectory to regress against.
    """
    from repro.experiments.report import write_experiments_markdown

    _apply_runtime_knobs(args)
    config = ExperimentConfig(
        scale=args.scale, seed=args.seed, quick=args.quick, jobs=args.jobs
    )
    from repro.perf import memory, numa
    from repro.perf.shm import shm_stats

    timings.reset()
    memory.reset_memory_state()
    start = time.time()
    path = write_experiments_markdown(args.output, config)
    wall = time.time() - start
    print(f"wrote {path}")
    print()
    print(timings.render_table(subphases=args.phases))
    shm = shm_stats()
    if shm["exported_graphs"]:
        print(
            f"shared graphs: {shm['exported_graphs']} exported "
            f"({shm['exported_bytes'] / 1e6:.1f} MB), "
            f"{shm['attaches']} worker attaches "
            f"(+{shm['attach_reuses']} reuses)"
        )
        if shm.get("replica_segments"):
            print(
                f"  node-local replicas: {shm['replica_segments']} segments "
                f"({shm['replica_bytes'] / 1e6:.1f} MB), "
                f"{shm['node_local_attaches']} node-local attaches"
            )
    numa_info = numa.numa_stats()
    if numa_info["workers"]:
        per_node = ", ".join(
            f"node {node}: {count}"
            for node, count in sorted(numa_info["per_node_workers"].items())
        )
        print(
            f"numa ({numa_info['mode']}, {numa_info['nodes']} "
            f"node(s) via {numa_info['source']}): "
            f"{numa_info['workers_pinned']} workers pinned"
            + (f" [{per_node}]" if per_node else "")
            + (
                f", {numa_info['workers_unpinned']} unpinned"
                if numa_info["workers_unpinned"]
                else ""
            )
        )
    mem_info = memory.memory_stats()
    peak = mem_info["peak_rss_bytes"]
    if peak:
        worker_peak = mem_info["worker_peak_rss_bytes"]
        print(
            f"memory: peak RSS {peak / 1e6:.1f} MB"
            + (
                f" (worker peak {worker_peak / 1e6:.1f} MB)"
                if worker_peak
                else ""
            )
        )
    from repro.perf.kernel_pool import kernel_pool_stats
    from repro.perf.parallel import supervision_stats

    pool_info = kernel_pool_stats()
    if pool_info["sharded_dispatches"]:
        print(
            f"kernel pool: {pool_info['workers']} workers, "
            f"{pool_info['sharded_dispatches']} sharded rounds "
            f"({pool_info['shards_executed']} shards, "
            f"{pool_info['serial_fallbacks']} serial fallbacks)"
        )
    bench_path = str(Path(args.output).parent / "BENCH_perf.json")
    timings.write_json(
        bench_path,
        extra={
            "wall_seconds": wall,
            "scale": config.scale,
            "quick": config.quick,
            "jobs": config.jobs,
            "cache": get_cache().stats.to_dict(),
            "shm": shm,
            "numa": numa_info,
            "memory": mem_info,
            "supervision": supervision_stats(),
            "kernel_pool": pool_info,
        },
    )
    print(f"wrote {bench_path} (wall {wall:.1f}s)")
    return 0


def _parse_kv_flags(pairs, cast, flag: str):
    """Parse repeatable ``NAME=VALUE`` flags into a dict (None if none)."""
    if not pairs:
        return None
    out = {}
    for spec in pairs:
        name, sep, value = spec.partition("=")
        name = name.strip()
        if not sep or not name or not value.strip():
            raise ConfigurationError(
                f"{flag} expects NAME=VALUE, got {spec!r}"
            )
        try:
            out[name] = cast(value.strip())
        except ValueError as exc:
            raise ConfigurationError(f"{flag} {spec!r}: {exc}") from exc
    return out


def _parse_tenants(raw):
    """``--tenants`` value: a count (``3`` → tenant-0..2) or a comma
    list of names; None when the flag is absent."""
    if not raw:
        return None
    raw = raw.strip()
    if raw.isdigit():
        count = int(raw)
        if count < 1:
            raise ConfigurationError("--tenants count must be >= 1")
        return tuple(f"tenant-{i}" for i in range(count))
    names = tuple(t.strip() for t in raw.split(",") if t.strip())
    if not names:
        raise ConfigurationError("--tenants needs at least one name")
    return names


def cmd_serve(args) -> int:
    """``vcrepro serve``: online scheduling on a seeded arrival stream.

    Builds a :class:`~repro.sched.service.SchedulerService` (training
    the per-kind memory models first), generates the seeded Poisson
    stream, runs the queue until it drains, prints the latency/
    throughput table, and records the full metrics under ``"sched"`` in
    ``BENCH_perf.json`` (merging with an existing file so ``report``
    benchmarks and serve runs share one trajectory).
    """
    import json

    from repro.engines.registry import create_engine
    from repro.faults.plan import mixed_fault_plan
    from repro.sched.arrivals import generate_arrivals
    from repro.sched.policy import ServicePolicy
    from repro.sched.service import SchedulerService

    _apply_runtime_knobs(args)
    cluster = cluster_by_name(args.cluster, scale=args.scale)
    if args.machines:
        cluster = cluster.with_machines(args.machines)
    graph = load_dataset(args.dataset, scale=args.scale)
    engine = create_engine(args.engine, cluster)
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    plan = None
    if args.faults:
        plan = mixed_fault_plan(args.seed, cluster.num_machines, args.faults)
    deadlines = {}
    for spec in args.deadline or []:
        cls, sep, seconds = spec.partition("=")
        if sep:
            deadlines[int(cls)] = float(seconds)
        else:
            deadlines[0] = float(spec)
    tenants = _parse_tenants(args.tenants)
    routes = None
    if args.route:
        if len(args.route) == 1 and args.route[0].strip() == "table4":
            from repro.sched.policy import TABLE4_ROUTES

            routes = dict(TABLE4_ROUTES)
        else:
            routes = _parse_kv_flags(args.route, str, "--route")
    policy = ServicePolicy(
        priority_classes=args.priority_classes,
        aging_seconds=args.aging if args.aging > 0 else None,
        preempt=args.preempt,
        preempt_rule=args.preempt_rule,
        max_queue=args.max_queue,
        shed_watermark=args.shed_watermark,
        drop_expired=args.drop_expired,
        intra_workers=args.kernel_workers,
        routes=routes,
        tenant_quotas=_parse_kv_flags(
            args.tenant_quota, float, "--tenant-quota"
        ),
        tenant_priorities=_parse_kv_flags(
            args.tenant_priority, int, "--tenant-priority"
        ),
        result_cache=args.result_cache,
        result_ttl_seconds=args.result_ttl,
        result_cache_bytes=args.result_cache_bytes,
        calibrate=args.calibrate,
        cost_shares=args.cost_shares,
        cache_min_seconds=args.cache_min_seconds,
        tenant_cache_quotas=_parse_kv_flags(
            args.tenant_cache_quota, float, "--tenant-cache-quota"
        ),
    )
    service = SchedulerService(
        engine,
        graph,
        kinds=kinds,
        seed=args.seed,
        overload_fraction=args.overload_fraction,
        reference_workload=args.workload,
        task_params={
            "mssp": {"sample_limit": args.sample_limit},
            "bkhs": {"sample_limit": args.sample_limit},
        },
        fault_plan=plan,
        checkpoint_every=args.checkpoint_every or None,
        policy=policy,
    )
    requests = generate_arrivals(
        args.arrivals,
        args.duration,
        seed=args.seed,
        kinds=kinds,
        priority_classes=args.priority_classes,
        deadlines=deadlines or None,
        tenants=tenants,
    )
    metrics = service.run(
        requests, arrival_rate=args.arrivals, duration_rounds=args.duration
    )
    if args.json:
        print(json.dumps(metrics.to_dict(include_latencies=True), indent=2))
    else:
        print(metrics.summary())
        print(metrics.latency_table())
    bench_path = Path(args.bench_output)
    payload = {}
    if bench_path.exists():
        try:
            with open(bench_path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {}
    payload["sched"] = metrics.to_dict()
    payload["resilience"] = metrics.resilience_summary()
    if tenants is not None:
        payload["tenants"] = metrics.tenant_summary()
    if metrics.calibration is not None:
        payload["calibration"] = metrics.calibration
    with open(bench_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if not args.json:
        sections = "sched + resilience"
        if tenants is not None:
            sections += " + tenants"
        if metrics.calibration is not None:
            sections += " + calibration"
        print(f"wrote {bench_path} ({sections} sections)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands.

    Shared flag groups live on parent parsers (``add_help=False``) so
    each subcommand inherits them via ``parents=[...]`` instead of
    re-declaring them — a new subcommand gets the full runtime-knob
    surface for free.
    """
    parser = argparse.ArgumentParser(
        prog="vcrepro",
        description=(
            "Multi-task processing in vertex-centric graph systems: "
            "reproduction toolkit (EDBT 2023)"
        ),
    )
    common = argparse.ArgumentParser(add_help=False)
    _add_common(common)
    setting = argparse.ArgumentParser(add_help=False)
    _add_setting(setting)
    faults = argparse.ArgumentParser(add_help=False)
    _add_faults(faults)

    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list datasets/engines/experiments")
    p_list.set_defaults(fn=cmd_list)

    p_run = sub.add_parser(
        "run",
        help="run one multi-processing job",
        parents=[common, setting, faults],
    )
    p_run.add_argument("--batches", type=int, default=1)
    p_run.add_argument(
        "--on-overload",
        choices=["report", "raise"],
        default="report",
        help="report: mark overloaded runs at the 6000 s cutoff (paper "
        "behaviour); raise: fail fast with machine/peak context",
    )
    p_run.add_argument(
        "--json", action="store_true", help="emit metrics as JSON"
    )
    p_run.add_argument(
        "--rounds",
        action="store_true",
        help="include the per-round trace in --json output",
    )
    p_run.set_defaults(fn=cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="sweep batch counts", parents=[common, setting]
    )
    p_sweep.set_defaults(fn=cmd_sweep)

    p_exp = sub.add_parser(
        "experiment",
        help="regenerate a paper figure/table",
        parents=[common],
    )
    p_exp.add_argument("id", choices=list(EXPERIMENTS) + ["all"])
    p_exp.add_argument("--quick", action="store_true", help="smaller sweeps")
    p_exp.add_argument(
        "--preempt",
        action="store_true",
        help="throughput experiment only: add the FIFO-versus-preemptive "
        "serving comparison (small urgent requests behind a large batch "
        "job) and record its resilience counters in BENCH_perf.json",
    )
    p_exp.add_argument(
        "--multi-tenant",
        action="store_true",
        help="throughput experiment only: add the single-versus-multi-"
        "tenant serving comparison (tenant quotas, Table-4 engine "
        "routing, content-keyed result cache with request coalescing) "
        "and record its tenants section in BENCH_perf.json",
    )
    p_exp.add_argument(
        "--calibrate",
        action="store_true",
        help="throughput experiment only: add the static-versus-"
        "calibrated serving comparison (online ask-tell cost-model "
        "refits on a deadline-bearing stream) and record its "
        "calibration section in BENCH_perf.json",
    )
    p_exp.set_defaults(fn=cmd_experiment)

    p_tune = sub.add_parser(
        "tune",
        help="run the Section 5 auto-tuner",
        parents=[common, setting],
    )
    p_tune.set_defaults(fn=cmd_tune)

    p_rep = sub.add_parser(
        "report", help="write EXPERIMENTS.md", parents=[common]
    )
    p_rep.add_argument("--output", default="EXPERIMENTS.md")
    p_rep.add_argument("--quick", action="store_true")
    p_rep.add_argument(
        "--phases",
        action="store_true",
        help="break the timing table down into kernel sub-phases "
        "(expand/dedup/reduce/frontier); BENCH_perf.json always "
        "contains the full breakdown",
    )
    p_rep.set_defaults(fn=cmd_report)

    p_srv = sub.add_parser(
        "serve",
        help="run the online scheduling service (repro.sched)",
        parents=[common, setting, faults],
    )
    p_srv.add_argument(
        "--arrivals",
        type=float,
        required=True,
        metavar="RATE",
        help="mean requests per simulated second (Poisson)",
    )
    p_srv.add_argument(
        "--duration",
        type=int,
        default=60,
        metavar="ROUNDS",
        help="arrival-stream length in ticks (default 60); the service "
        "then drains the queue before shutting down",
    )
    p_srv.add_argument(
        "--kinds",
        default="bppr,mssp",
        help="comma-separated task kinds on the stream (default "
        "bppr,mssp); --workload sets the training reference workload",
    )
    p_srv.add_argument(
        "--overload-fraction",
        type=float,
        default=0.8,
        metavar="P",
        help="fraction of machine memory admission control may use "
        "(the paper's overloading parameter p, default 0.8)",
    )
    p_srv.add_argument(
        "--sample-limit",
        type=int,
        default=48,
        help="source sampling cap for MSSP/BKHS requests (default 48)",
    )
    p_srv.add_argument(
        "--priority-classes",
        type=int,
        default=1,
        metavar="N",
        help="priority lanes on the stream (class 0 = most urgent, "
        "drawn per request from the seeded stream); default 1 = "
        "legacy FIFO, byte-identical to previous releases",
    )
    p_srv.add_argument(
        "--deadline",
        action="append",
        default=None,
        metavar="[CLASS=]SECONDS",
        help="latency deadline attached to arrivals of a priority "
        "class (bare SECONDS = class 0); repeatable. Misses are "
        "counted in the resilience section",
    )
    p_srv.add_argument(
        "--preempt",
        action="store_true",
        help="suspend the running batch at a superstep barrier when a "
        "strictly more urgent cross-kind request is waiting (its "
        "deadline within the margin; requires --priority-classes > 1)",
    )
    p_srv.add_argument(
        "--preempt-rule",
        choices=["deadline", "eager"],
        default="deadline",
        help="deadline: preempt only to save a blowing deadline "
        "(default); eager: preempt for any more urgent waiter",
    )
    p_srv.add_argument(
        "--max-queue",
        type=int,
        default=4096,
        metavar="N",
        help="pending-queue bound; the least urgent untouched request "
        "is shed deterministically with a Retry-After hint when an "
        "arrival would exceed it (default 4096)",
    )
    p_srv.add_argument(
        "--aging",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="queueing seconds that promote a waiting request one "
        "priority class (anti-starvation; 0 disables, default 120)",
    )
    p_srv.add_argument(
        "--shed-watermark",
        type=float,
        default=None,
        metavar="FRACTION",
        help="shed lowest-class arrivals once admitted+pinned residual "
        "memory exceeds this fraction of the admission budget "
        "(default: off)",
    )
    p_srv.add_argument(
        "--drop-expired",
        action="store_true",
        help="drop queued requests already past their deadline instead "
        "of running them late (counted under drops_expired)",
    )
    p_srv.add_argument(
        "--tenants",
        default=None,
        metavar="NAMES|N",
        help="multi-tenant arrival stream: a comma-separated list of "
        "tenant names, or a count N (tenant-0..tenant-N-1); requests "
        "draw their tenant from the seeded stream. Default: single "
        "implicit tenant, byte-identical to previous releases",
    )
    p_srv.add_argument(
        "--tenant-quota",
        action="append",
        default=None,
        metavar="TENANT=FRACTION",
        help="per-tenant memory quota as a fraction (0,1] of the shared "
        "admission budget; repeatable. Unlisted tenants are "
        "unconstrained",
    )
    p_srv.add_argument(
        "--tenant-priority",
        action="append",
        default=None,
        metavar="TENANT=CLASS",
        help="map a tenant's requests to a fixed priority class "
        "(0 = most urgent); repeatable, overrides the request's own "
        "class before clamping to --priority-classes",
    )
    p_srv.add_argument(
        "--route",
        action="append",
        default=None,
        metavar="KIND=ENGINE",
        help="route a task kind to a specific engine (repeatable), or "
        "the single value 'table4' for the paper's Table-4 split "
        "(async-capable kinds on graphlab(async), heavy BPPR on "
        "pregel+). Unrouted kinds use --engine",
    )
    p_srv.add_argument(
        "--result-cache",
        action="store_true",
        help="serve repeat queries from a content-keyed result cache "
        "(graph fingerprint + kind + engine + params) and coalesce "
        "duplicate in-flight requests onto one execution",
    )
    p_srv.add_argument(
        "--result-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire cached results after this many simulated seconds "
        "(default: no expiry)",
    )
    p_srv.add_argument(
        "--result-cache-bytes",
        type=float,
        default=None,
        metavar="BYTES",
        help="LRU bytes budget for the result cache (default: unbounded)",
    )
    p_srv.add_argument(
        "--calibrate",
        action="store_true",
        help="online ask-tell calibration: every executed batch tells "
        "its observed (workload, peak, residual, seconds) back to the "
        "cost models, which refit when standardized residuals drift; "
        "fitted coefficients persist in the artifact cache so a warm "
        "restart skips probe training entirely",
    )
    p_srv.add_argument(
        "--cost-shares",
        action="store_true",
        help="size kernel-worker shares from predicted batch seconds "
        "and deadline slack instead of an even split (requires "
        "--kernel-workers > 0); falls back to the even split when no "
        "deadline or seconds model applies",
    )
    p_srv.add_argument(
        "--cache-min-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cost-aware cache admission: only store results whose "
        "predicted recompute seconds meet this threshold (requires "
        "--result-cache); cheaper payloads are recomputed on repeat",
    )
    p_srv.add_argument(
        "--tenant-cache-quota",
        action="append",
        default=None,
        metavar="TENANT=FRACTION",
        help="per-tenant result-cache byte quota as a fraction (0,1] "
        "of --result-cache-bytes; a tenant over its cap evicts its own "
        "LRU entries first. Repeatable; unlisted tenants share the "
        "global budget",
    )
    p_srv.add_argument(
        "--json",
        action="store_true",
        help="emit the full service metrics (with per-task latencies) "
        "as JSON",
    )
    p_srv.add_argument(
        "--bench-output",
        default="BENCH_perf.json",
        help="perf-trajectory file to record the sched section in",
    )
    p_srv.set_defaults(fn=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
