"""Byte/time unit constants and human-readable formatting helpers.

The simulator works in plain floats (bytes and seconds). These helpers keep
magic numbers out of the cost model and make experiment tables readable,
matching the units used in the paper's tables (GB, minutes, seconds).
"""

from __future__ import annotations

KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB
TB = 1024.0 * GB

MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

#: The paper marks a run "overload" when it does not finish within 6000 s.
OVERLOAD_CUTOFF_SECONDS = 6000.0


def format_bytes(num_bytes: float) -> str:
    """Format a byte count the way the paper's tables do (e.g. ``15.1GB``)."""
    if num_bytes < 0:
        return "-" + format_bytes(-num_bytes)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if num_bytes >= unit:
            return f"{num_bytes / unit:.1f}{name}"
    return f"{num_bytes:.0f}B"


def format_seconds(seconds: float) -> str:
    """Format a duration compactly (``3.4min``, ``173.3s``, ``94ms``)."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds >= HOUR:
        return f"{seconds / HOUR:.1f}h"
    # The paper prints short runs in seconds (e.g. 173.3 s) and switches
    # to minutes only for multi-minute runs.
    if seconds >= 5 * MINUTE:
        return f"{seconds / MINUTE:.1f}min"
    if seconds >= 1.0:
        return f"{seconds:.1f}s"
    return f"{seconds * 1000:.0f}ms"


def format_count(count: float) -> str:
    """Format a message count the way Figure 6 does (``633.2M``)."""
    if count < 0:
        return "-" + format_count(-count)
    for unit, name in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if count >= unit:
            return f"{count / unit:.1f}{name}"
    return f"{count:.0f}"
