"""Workload-splitting schemes (Section 4's batching mechanisms).

All schemes return a list of positive batch workloads summing to ``W``.
Integer workloads stay integral (the paper's workloads are walk counts
and source counts); remainders are spread over the leading batches.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import BatchingError


def _validate_workload(workload: float) -> None:
    if workload <= 0:
        raise BatchingError("workload must be positive")


def equal_batches(workload: float, num_batches: int) -> List[float]:
    """The paper's *k-batch* mechanism: ``k`` equal batches.

    With an integer workload the split stays integral: the first
    ``W mod k`` batches get one extra unit. ``num_batches`` may not
    exceed the workload (a batch must hold at least one unit task).
    """
    _validate_workload(workload)
    if num_batches <= 0:
        raise BatchingError("num_batches must be positive")
    if num_batches > workload:
        raise BatchingError(
            f"cannot split workload {workload:g} into {num_batches} "
            "non-empty batches"
        )
    if float(workload).is_integer():
        base, remainder = divmod(int(workload), num_batches)
        return [
            float(base + (1 if i < remainder else 0))
            for i in range(num_batches)
        ]
    share = workload / num_batches
    return [share] * num_batches


def full_parallelism(workload: float) -> List[float]:
    """The 1-batch mechanism: all unit tasks processed concurrently."""
    _validate_workload(workload)
    return [float(workload)]


def two_batches_delta(workload: float, delta: float) -> List[float]:
    """Figure 9's unequal split: ``W1 - W2 = delta`` with ``W1 + W2 = W``.

    ``delta`` may be negative (second batch heavier); both batches must
    stay positive.
    """
    _validate_workload(workload)
    first = (workload + delta) / 2.0
    second = workload - first
    if first <= 0 or second <= 0:
        raise BatchingError(
            f"delta {delta:g} leaves a non-positive batch for W={workload:g}"
        )
    return [first, second]


def explicit_batches(sizes: Sequence[float]) -> List[float]:
    """Validate an explicit schedule (e.g. from the tuning planner)."""
    if not sizes:
        raise BatchingError("schedule must contain at least one batch")
    result = [float(s) for s in sizes]
    if any(s <= 0 for s in result):
        raise BatchingError("every batch workload must be positive")
    return result


def geometric_batches(
    workload: float, num_batches: int, ratio: float = 0.5
) -> List[float]:
    """Geometrically decreasing schedule: each batch carries ``ratio``
    times the previous one's workload, normalised to sum to ``W``.

    A hand-tunable approximation of the planner's decreasing schedules
    (Section 5's Optimized output shrinks batch-over-batch because
    residual memory accumulates); useful as a baseline against the
    trained planner.
    """
    _validate_workload(workload)
    if num_batches <= 0:
        raise BatchingError("num_batches must be positive")
    if not 0.0 < ratio <= 1.0:
        raise BatchingError("ratio must lie in (0, 1]")
    raw = [ratio**i for i in range(num_batches)]
    total = sum(raw)
    sizes = [workload * r / total for r in raw]
    if sizes[-1] < 1e-12:
        raise BatchingError(
            "ratio too aggressive: trailing batches vanish numerically"
        )
    return sizes


def doubling_batch_counts(workload: float, limit: int = 16) -> List[int]:
    """The paper's doubling batch axis {1, 2, 4, 8, 16}, truncated so no
    batch would be empty for the given workload."""
    _validate_workload(workload)
    counts: List[int] = []
    k = 1
    while k <= limit and k <= workload:
        counts.append(k)
        k *= 2
    return counts
