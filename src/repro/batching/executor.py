"""The multi-processing job executor.

Convenience layer gluing task, engine, cluster and batching scheme
together — the entry point most examples and experiments use:

    job = MultiProcessingJob(engine="pregel+", cluster=galaxy8())
    metrics = job.run(bppr_task(graph, 10240), num_batches=4)

Batches run sequentially through the engine; results roll up into
:class:`~repro.sim.metrics.JobMetrics`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.batching.schemes import (
    doubling_batch_counts,
    equal_batches,
    explicit_batches,
)
from repro.cluster.cluster import ClusterSpec
from repro.engines.base import SimulatedEngine
from repro.engines.registry import create_engine
from repro.errors import BatchingError
from repro.rng import SeedLike
from repro.sim.metrics import JobMetrics
from repro.tasks.base import TaskSpec


class MultiProcessingJob:
    """A (engine, cluster) pair ready to run batched jobs."""

    def __init__(
        self,
        engine: Union[str, SimulatedEngine],
        cluster: Optional[ClusterSpec] = None,
    ) -> None:
        if isinstance(engine, SimulatedEngine):
            self.engine = engine
        else:
            if cluster is None:
                raise BatchingError(
                    "cluster is required when engine is given by name"
                )
            self.engine = create_engine(engine, cluster)

    @property
    def cluster(self) -> ClusterSpec:
        return self.engine.cluster

    def run(
        self,
        task: TaskSpec,
        num_batches: Optional[int] = None,
        batch_sizes: Optional[Sequence[float]] = None,
        seed: SeedLike = None,
    ) -> JobMetrics:
        """Run ``task`` with either ``num_batches`` equal batches or an
        explicit ``batch_sizes`` schedule (exactly one must be given)."""
        if (num_batches is None) == (batch_sizes is None):
            raise BatchingError(
                "specify exactly one of num_batches or batch_sizes"
            )
        if num_batches is not None:
            sizes = equal_batches(task.workload, num_batches)
        else:
            sizes = explicit_batches(batch_sizes)
            total = sum(sizes)
            if abs(total - task.workload) > 1e-6 * max(task.workload, 1.0):
                raise BatchingError(
                    f"schedule sums to {total:g}, task workload is "
                    f"{task.workload:g}"
                )
        return self.engine.run_job(task, sizes, seed=seed)

    def sweep_batches(
        self,
        task: TaskSpec,
        batch_counts: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> List[JobMetrics]:
        """Run the task at each batch count (default: the paper's
        doubling axis {1, 2, 4, 8, 16}) and return one metrics object
        per setting."""
        counts = (
            list(batch_counts)
            if batch_counts is not None
            else doubling_batch_counts(task.workload)
        )
        return [
            self.run(task, num_batches=count, seed=seed) for count in counts
        ]

    def best_batch_count(
        self,
        task: TaskSpec,
        batch_counts: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> int:
        """Batch count with the lowest simulated time on the sweep axis."""
        runs = self.sweep_batches(task, batch_counts=batch_counts, seed=seed)
        best = min(runs, key=lambda m: (m.overloaded, m.seconds))
        return best.num_batches


def run_job(
    engine: Union[str, SimulatedEngine],
    cluster: Optional[ClusterSpec],
    task: TaskSpec,
    num_batches: Optional[int] = None,
    batch_sizes: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
) -> JobMetrics:
    """One-shot convenience wrapper around :class:`MultiProcessingJob`."""
    return MultiProcessingJob(engine, cluster).run(
        task, num_batches=num_batches, batch_sizes=batch_sizes, seed=seed
    )
