"""The multi-processing job executor.

Convenience layer gluing task, engine, cluster and batching scheme
together — the entry point most examples and experiments use:

    job = MultiProcessingJob(engine="pregel+", cluster=galaxy8())
    metrics = job.run(bppr_task(graph, 10240), num_batches=4)

Batches run sequentially through the engine; results roll up into
:class:`~repro.sim.metrics.JobMetrics`.

:meth:`MultiProcessingJob.run_with_recovery` adds the closed loop: an
OVERLOADED batch is aborted (paying the elapsed time plus an abort
overhead instead of the 6000 s cutoff stamp), the remaining workload is
re-split into smaller front-loaded batches per the
:class:`~repro.faults.recovery.OverloadRecovery` policy, and every
attempt is recorded in ``JobMetrics.retry_history``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.batching.schemes import (
    doubling_batch_counts,
    equal_batches,
    explicit_batches,
)
from repro.cluster.cluster import ClusterSpec
from repro.engines.base import SimulatedEngine
from repro.engines.registry import create_engine
from repro.errors import BatchingError, RecoveryError
from repro.faults.plan import FaultPlan
from repro.faults.recovery import OverloadRecovery
from repro.rng import SeedLike
from repro.sim.metrics import BatchMetrics, JobMetrics
from repro.tasks.base import TaskSpec


class MultiProcessingJob:
    """A (engine, cluster) pair ready to run batched jobs."""

    def __init__(
        self,
        engine: Union[str, SimulatedEngine],
        cluster: Optional[ClusterSpec] = None,
    ) -> None:
        if isinstance(engine, SimulatedEngine):
            self.engine = engine
        else:
            if cluster is None:
                raise BatchingError(
                    "cluster is required when engine is given by name"
                )
            self.engine = create_engine(engine, cluster)

    @property
    def cluster(self) -> ClusterSpec:
        return self.engine.cluster

    def run(
        self,
        task: TaskSpec,
        num_batches: Optional[int] = None,
        batch_sizes: Optional[Sequence[float]] = None,
        seed: SeedLike = None,
        fault_plan: Optional[FaultPlan] = None,
        checkpoint_every: Optional[int] = None,
        on_overload: str = "report",
    ) -> JobMetrics:
        """Run ``task`` with either ``num_batches`` equal batches or an
        explicit ``batch_sizes`` schedule (exactly one must be given).

        ``fault_plan``/``checkpoint_every``/``on_overload`` pass through
        to :meth:`SimulatedEngine.run_job` (fault injection, Pregel
        checkpointing, strict overload handling).
        """
        if (num_batches is None) == (batch_sizes is None):
            raise BatchingError(
                "specify exactly one of num_batches or batch_sizes"
            )
        if num_batches is not None:
            sizes = equal_batches(task.workload, num_batches)
        else:
            sizes = explicit_batches(batch_sizes)
            total = sum(sizes)
            if abs(total - task.workload) > 1e-6 * max(task.workload, 1.0):
                raise BatchingError(
                    f"schedule sums to {total:g}, task workload is "
                    f"{task.workload:g}"
                )
        return self.engine.run_job(
            task,
            sizes,
            seed=seed,
            fault_plan=fault_plan,
            checkpoint_every=checkpoint_every,
            on_overload=on_overload,
        )

    def run_with_recovery(
        self,
        task_factory: Callable[[float], TaskSpec],
        workload: float,
        num_batches: Optional[int] = None,
        batch_sizes: Optional[Sequence[float]] = None,
        seed: SeedLike = None,
        recovery: Optional[OverloadRecovery] = None,
        fault_plan: Optional[FaultPlan] = None,
        checkpoint_every: Optional[int] = None,
    ) -> JobMetrics:
        """Run ``workload`` with graceful overload degradation.

        The initial schedule comes from ``num_batches`` equal batches or
        an explicit ``batch_sizes`` list (default: one batch, i.e.
        Full-Parallelism). Whenever a batch OVERLOADS, it is aborted —
        its metrics keep the real elapsed time plus the policy's abort
        overhead instead of the 6000 s cutoff — and the remaining
        workload (the aborted batch's units included) is re-split into
        smaller front-loaded batches and retried, carrying the residual
        memory of the batches that did complete. Each attempt is
        recorded in the returned ``JobMetrics.retry_history``.

        Raises :class:`~repro.errors.RecoveryError` (with the history
        attached) once ``recovery.max_retries`` re-splits have been
        exhausted.

        ``task_factory`` must build a task for any positive workload —
        retries run the engine on the *remaining* units only, so
        completed batches are never re-executed.
        """
        recovery = recovery or OverloadRecovery()
        if workload <= 0:
            raise BatchingError("workload must be positive")
        if num_batches is not None and batch_sizes is not None:
            raise BatchingError(
                "specify at most one of num_batches or batch_sizes"
            )
        if batch_sizes is not None:
            sizes = explicit_batches(batch_sizes)
            total = sum(sizes)
            if abs(total - workload) > 1e-6 * max(workload, 1.0):
                raise BatchingError(
                    f"schedule sums to {total:g}, workload is {workload:g}"
                )
        else:
            sizes = equal_batches(workload, num_batches or 1)

        done_batches: List[BatchMetrics] = []
        history: List[dict] = []
        residual = 0.0
        final_job: Optional[JobMetrics] = None
        # Seeded jitter stream for the retry backoff (shared idiom with
        # the process-pool watchdog): same seed, same sleep schedule.
        backoff_rng = None
        backoff_total = 0.0
        if recovery.backoff is not None:
            from repro.rng import make_rng

            backoff_rng = make_rng(seed, label="faults/retry-backoff")
        while True:
            task = task_factory(sum(sizes))
            job = self.engine.run_job(
                task,
                sizes,
                seed=seed,
                fault_plan=fault_plan,
                checkpoint_every=checkpoint_every,
                initial_residual_bytes=residual,
            )
            if not job.overloaded:
                final_job = job
                break
            failed_index = next(
                i for i, b in enumerate(job.batches) if b.overloaded
            )
            completed = job.batches[:failed_index]
            failed = job.batches[failed_index]
            failed.aborted = True
            failed.abort_seconds = recovery.abort_overhead_seconds
            # The aborted batch's partial results are discarded; it
            # leaves no residual behind.
            failed.residual_memory_after_bytes = failed.residual_memory_bytes
            done_batches.extend(completed)
            done_batches.append(failed)
            residual = failed.residual_memory_bytes
            remaining = failed.workload + sum(sizes[failed_index + 1 :])
            attempt = {
                "attempt": len(history) + 1,
                "schedule": [float(s) for s in sizes],
                "failed_batch_workload": float(failed.workload),
                "reason": failed.overload_reason,
                "seconds_lost": float(failed.seconds),
                "remaining_workload": float(remaining),
            }
            history.append(attempt)
            if len(history) > recovery.max_retries:
                raise RecoveryError(
                    f"overload recovery exhausted {recovery.max_retries} "
                    f"retries with {remaining:g} units unprocessed "
                    f"(last failure: {failed.overload_reason})",
                    history=history,
                )
            sizes = recovery.resplit(remaining, failed.workload)
            attempt["resplit"] = [float(s) for s in sizes]
            if recovery.backoff is not None:
                # Simulated wait before the re-attempt; recorded on the
                # attempt, never folded into the engine's batch timings.
                delay = recovery.backoff.delay_seconds(
                    len(history), backoff_rng
                )
                attempt["backoff_seconds"] = float(delay)
                backoff_total += float(delay)

        # Stitch the attempts into one job record: aborted batches stay
        # in the trace (their time counts), re-indexed sequentially.
        final_job.batches = done_batches + final_job.batches
        for index, batch in enumerate(final_job.batches):
            batch.batch_index = index
        final_job.batch_sizes = [b.workload for b in final_job.batches]
        final_job.total_workload = float(workload)
        final_job.retry_history = history
        final_job.extras["overload_retries"] = float(len(history))
        if recovery.backoff is not None:
            final_job.extras["retry_backoff_seconds"] = backoff_total
        return final_job

    def sweep_batches(
        self,
        task: TaskSpec,
        batch_counts: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> List[JobMetrics]:
        """Run the task at each batch count (default: the paper's
        doubling axis {1, 2, 4, 8, 16}) and return one metrics object
        per setting."""
        counts = (
            list(batch_counts)
            if batch_counts is not None
            else doubling_batch_counts(task.workload)
        )
        return [
            self.run(task, num_batches=count, seed=seed) for count in counts
        ]

    def best_batch_count(
        self,
        task: TaskSpec,
        batch_counts: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> int:
        """Batch count with the lowest simulated time on the sweep axis."""
        runs = self.sweep_batches(task, batch_counts=batch_counts, seed=seed)
        best = min(runs, key=lambda m: (m.overloaded, m.seconds))
        return best.num_batches


def run_job(
    engine: Union[str, SimulatedEngine],
    cluster: Optional[ClusterSpec],
    task: TaskSpec,
    num_batches: Optional[int] = None,
    batch_sizes: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
) -> JobMetrics:
    """One-shot convenience wrapper around :class:`MultiProcessingJob`."""
    return MultiProcessingJob(engine, cluster).run(
        task, num_batches=num_batches, batch_sizes=batch_sizes, seed=seed
    )
