"""Batching: workload-splitting schemes and the multi-processing executor.

The round-congestion tradeoff is exercised by splitting a workload ``W``
into batches processed sequentially (Figure 1). Schemes:

* :func:`equal_batches` — the paper's *k-batch* mechanism (1-batch =
  Full-Parallelism).
* :func:`two_batches_delta` — the unequal two-batch splits of Figure 9.
* :func:`explicit_batches` — arbitrary schedules, e.g. the tuning
  framework's decreasing ``[2747, 1388, 644, 266, 75]``.
"""

from repro.batching.executor import MultiProcessingJob, run_job
from repro.batching.schemes import (
    equal_batches,
    explicit_batches,
    full_parallelism,
    geometric_batches,
    two_batches_delta,
)

__all__ = [
    "equal_batches",
    "full_parallelism",
    "two_batches_delta",
    "geometric_batches",
    "explicit_batches",
    "MultiProcessingJob",
    "run_job",
]
