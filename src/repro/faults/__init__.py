"""Fault injection and recovery policies (the robustness subsystem).

The paper's Section 4.3 narrative is about what happens when
multi-processing pushes a vertex-centric system *past* its limits; the
real systems it evaluates answer with Pregel-style checkpointing and
restart. This package models that answer:

* :mod:`repro.faults.plan` — a seeded, fully deterministic
  :class:`FaultPlan` (machine crashes, stragglers, message loss,
  disk-full events) that :class:`~repro.engines.base.SimulatedEngine`
  consumes round by round;
* :mod:`repro.faults.recovery` — the :class:`OverloadRecovery` policy
  the batching executor and auto-tuner use to abort an overloaded
  batch, re-split the remaining workload into smaller front-loaded
  batches, and record the retry history.
"""

from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    mixed_fault_plan,
)
from repro.faults.recovery import OverloadRecovery, front_loaded_split

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "OverloadRecovery",
    "front_loaded_split",
    "mixed_fault_plan",
]
