"""Seeded fault plans consumed by the simulated engine.

A :class:`FaultPlan` is a fixed list of :class:`FaultEvent` records,
each pinned to a *global round index* (rounds counted consecutively
across all batches of a job). The engine looks events up per round and
prices their consequences — crash rollback/replay, straggler slowdown,
message retransmission, disk stalls — so experiments can measure
multi-processing *under failures*.

Determinism contract: :meth:`FaultPlan.generate` is a pure function of
``(seed, rates, horizon, num_machines)``. The same seed always yields
the same event list, and :attr:`FaultPlan.fingerprint` content-addresses
the plan so faulty runs participate in the artifact cache without ever
mixing results across different plans.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.rng import make_rng


class FaultKind(enum.Enum):
    """The failure classes of Section 4.3's overload narrative.

    ``CRASH``
        a machine fails mid-round; the job rolls back to the last
        checkpoint (Pregel's checkpoint-and-restart model) and replays.
    ``STRAGGLER``
        one machine runs slow for a round; the synchronous barrier makes
        the whole round wait (magnitude = slowdown factor).
    ``MESSAGE_LOSS``
        a fraction of the round's network traffic is lost (magnitude =
        lost fraction; 1.0 models a transient network partition) and
        must be retransmitted.
    ``DISK_FULL``
        the spill/checkpoint volume cannot be written; out-of-core
        engines stall while space is reclaimed, checkpoint writes pay
        the cost twice.
    """

    CRASH = "crash"
    STRAGGLER = "straggler"
    MESSAGE_LOSS = "message-loss"
    DISK_FULL = "disk-full"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, pinned to a global round index."""

    round_index: int
    kind: FaultKind
    #: machine the fault hits (crash/straggler); cosmetic for the
    #: cluster-wide kinds but always recorded for the fault log.
    machine: int = 0
    #: kind-specific intensity: slowdown factor (straggler), lost
    #: fraction (message loss), stall multiplier (disk full). Ignored
    #: for crashes.
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise FaultError("fault round_index must be non-negative")
        if self.machine < 0:
            raise FaultError("fault machine must be non-negative")
        if self.magnitude < 0:
            raise FaultError("fault magnitude must be non-negative")

    def describe(self) -> str:
        """One-line human-readable form, e.g. ``crash@r5 m2 x1``."""
        return (
            f"{self.kind.value}@r{self.round_index} m{self.machine} "
            f"x{self.magnitude:g}"
        )


#: Straggler slowdown factors are drawn uniformly from this range —
#: "a few times slower", not catastrophically so (a dying machine is a
#: crash, not a straggler).
STRAGGLER_SLOWDOWN_RANGE = (2.0, 6.0)

#: Disk-full stall multipliers (fraction of the round's disk time lost
#: to reclaiming space before the write can be retried).
DISK_FULL_STALL_RANGE = (0.5, 2.0)


def _check_rate(name: str, rate: float) -> float:
    rate = float(rate)
    if not 0.0 <= rate <= 1.0:
        raise FaultError(f"{name} must be in [0, 1], got {rate:g}")
    return rate


def mixed_fault_plan(
    seed: Optional[int],
    num_machines: int,
    rate: float,
    horizon_rounds: int = 512,
) -> "FaultPlan":
    """The standard fault mix used by the CLI and the faults experiment:
    crashes at ``rate`` per round, stragglers and message loss at half
    that, disk-full events at a quarter."""
    rate = _check_rate("rate", rate)
    return FaultPlan.generate(
        seed,
        num_machines,
        horizon_rounds=horizon_rounds,
        crash_rate=rate,
        straggler_rate=rate / 2,
        message_loss_rate=rate / 2,
        disk_full_rate=rate / 4,
    )


class FaultPlan:
    """An immutable schedule of fault events for one job."""

    def __init__(
        self,
        events: Sequence[FaultEvent] = (),
        seed: Optional[int] = None,
    ) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.round_index, e.kind.value, e.machine))
        )
        self.seed = seed
        by_round: Dict[int, List[FaultEvent]] = {}
        for event in self.events:
            by_round.setdefault(event.round_index, []).append(event)
        self._by_round: Dict[int, Tuple[FaultEvent, ...]] = {
            r: tuple(evs) for r, evs in by_round.items()
        }

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: Optional[int],
        num_machines: int,
        horizon_rounds: int = 512,
        crash_rate: float = 0.0,
        straggler_rate: float = 0.0,
        message_loss_rate: float = 0.0,
        disk_full_rate: float = 0.0,
    ) -> "FaultPlan":
        """Draw a deterministic plan from per-round event probabilities.

        Each rate is the independent per-round probability of that fault
        kind occurring within ``horizon_rounds`` rounds. The draw order
        is fixed, so the same seed always produces the same plan.
        """
        if num_machines < 1:
            raise FaultError("num_machines must be at least 1")
        if horizon_rounds < 1:
            raise FaultError("horizon_rounds must be at least 1")
        crash_rate = _check_rate("crash_rate", crash_rate)
        straggler_rate = _check_rate("straggler_rate", straggler_rate)
        message_loss_rate = _check_rate("message_loss_rate", message_loss_rate)
        disk_full_rate = _check_rate("disk_full_rate", disk_full_rate)

        rng = make_rng(seed, label="fault-plan")
        events: List[FaultEvent] = []
        for round_index in range(horizon_rounds):
            # One fixed-size block of draws per round keeps the stream
            # aligned regardless of which events fire.
            draws = rng.random(4)
            picks = rng.integers(0, num_machines, size=4)
            intensities = rng.random(2)
            if draws[0] < crash_rate:
                events.append(
                    FaultEvent(round_index, FaultKind.CRASH, int(picks[0]))
                )
            if draws[1] < straggler_rate:
                low, high = STRAGGLER_SLOWDOWN_RANGE
                events.append(
                    FaultEvent(
                        round_index,
                        FaultKind.STRAGGLER,
                        int(picks[1]),
                        magnitude=low + (high - low) * float(intensities[0]),
                    )
                )
            if draws[2] < message_loss_rate:
                events.append(
                    FaultEvent(
                        round_index,
                        FaultKind.MESSAGE_LOSS,
                        int(picks[2]),
                        # Lost fraction; occasionally a full partition.
                        magnitude=min(1.0, 0.05 + float(intensities[1])),
                    )
                )
            if draws[3] < disk_full_rate:
                low, high = DISK_FULL_STALL_RANGE
                events.append(
                    FaultEvent(
                        round_index,
                        FaultKind.DISK_FULL,
                        int(picks[3]),
                        magnitude=low
                        + (high - low) * float(intensities[1]),
                    )
                )
        return cls(events, seed=None if seed is None else int(seed))

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (no faults)."""
        return cls(())

    # ------------------------------------------------------------------
    def events_at(self, round_index: int) -> Tuple[FaultEvent, ...]:
        """Events scheduled for one global round (possibly empty)."""
        return self._by_round.get(int(round_index), ())

    def count(self, kind: Optional[FaultKind] = None) -> int:
        """Number of events, optionally restricted to one kind."""
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind is kind)

    @property
    def fingerprint(self) -> str:
        """Stable content address (cache-key component)."""
        digest = hashlib.blake2b(digest_size=16)
        for event in self.events:
            digest.update(
                f"{event.round_index}:{event.kind.value}:"
                f"{event.machine}:{event.magnitude!r};".encode("utf-8")
            )
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed!r}, events={len(self.events)}, "
            f"fingerprint={self.fingerprint[:8]})"
        )
