"""Graceful overload degradation: abort, re-split, retry.

Instead of only stamping the paper's 6000 s cutoff on an OVERLOADED
batch, :class:`OverloadRecovery` describes how the batching executor
reacts: the failing batch is aborted as soon as overload is detected
(paying only the time actually elapsed plus an abort overhead), the
remaining workload is re-split into smaller *front-loaded* batches
(earlier batches larger, per Section 4.5: residual memory grows with
processed workload, so the headroom shrinks batch by batch), and the
attempt is recorded in the job's retry history — turning the tuner into
a closed loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.perf.backoff import BackoffPolicy

#: Hard cap on how many batches a re-split may produce per attempt.
MAX_RESPLIT_BATCHES = 64


def front_loaded_split(
    workload: float, num_batches: int, decay: float = 0.7
) -> List[float]:
    """Split ``workload`` into ``num_batches`` geometrically decreasing
    batches (weights ``decay**i``).

    Integer workloads stay integral via largest-remainder rounding, and
    every batch holds at least one unit. ``decay=1.0`` degenerates to
    equal batches.
    """
    if workload <= 0:
        raise ConfigurationError("workload must be positive")
    if num_batches < 1:
        raise ConfigurationError("num_batches must be at least 1")
    if not 0.0 < decay <= 1.0:
        raise ConfigurationError("decay must be in (0, 1]")
    integral = float(workload).is_integer()
    if integral and num_batches > workload:
        num_batches = int(workload)
    weights = [decay**i for i in range(num_batches)]
    total_weight = sum(weights)
    shares = [workload * w / total_weight for w in weights]
    if not integral:
        return shares
    # Largest-remainder rounding with a floor of one unit per batch.
    floors = [max(1, int(s)) for s in shares]
    remainder = int(workload) - sum(floors)
    if remainder < 0:
        # Floors overshot (tiny tail batches rounded up to 1): take the
        # excess back from the front, which holds the largest batches.
        for i in range(num_batches):
            give = min(floors[i] - 1, -remainder)
            floors[i] -= give
            remainder += give
            if remainder == 0:
                break
    else:
        order = sorted(
            range(num_batches),
            key=lambda i: shares[i] - int(shares[i]),
            reverse=True,
        )
        for step in range(remainder):
            floors[order[step % num_batches]] += 1
    return [float(f) for f in floors]


@dataclass(frozen=True)
class OverloadRecovery:
    """Policy for retrying an overloaded multi-processing job.

    Attributes
    ----------
    max_retries:
        how many re-split attempts are allowed before the executor gives
        up with a :class:`~repro.errors.RecoveryError`.
    split_factor:
        the failing batch's workload is divided by this factor to set
        the target batch size of the re-split (2 = halve, matching the
        paper's doubling batch axis).
    decay:
        front-loading decay of the re-split schedule (see
        :func:`front_loaded_split`).
    abort_overhead_seconds:
        fixed cost of detecting the overload and tearing the batch down
        (buffer teardown, result discard) charged to the aborted batch.
    backoff:
        optional :class:`~repro.perf.backoff.BackoffPolicy` — each
        re-split attempt then waits an exponentially growing,
        optionally jittered *simulated* delay before retrying (drawn
        from the run's ``faults/retry-backoff`` stream, so it is
        reproducible). The delay is recorded per attempt in the retry
        history and totalled in ``extras["retry_backoff_seconds"]``;
        it never contaminates the engine's own batch timings.
    """

    max_retries: int = 3
    split_factor: int = 2
    decay: float = 0.7
    abort_overhead_seconds: float = 1.0
    backoff: Optional[BackoffPolicy] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.split_factor < 2:
            raise ConfigurationError("split_factor must be at least 2")
        if not 0.0 < self.decay <= 1.0:
            raise ConfigurationError("decay must be in (0, 1]")
        if self.abort_overhead_seconds < 0:
            raise ConfigurationError(
                "abort_overhead_seconds must be non-negative"
            )

    def resplit(
        self, remaining_workload: float, failed_batch_workload: float
    ) -> List[float]:
        """Schedule for the workload left after an aborted batch.

        The target batch size is the failed batch's workload divided by
        ``split_factor``; the remaining workload (which includes the
        failed batch's units) is cut into that many front-loaded pieces.
        """
        if remaining_workload <= 0:
            raise ConfigurationError("remaining workload must be positive")
        if failed_batch_workload <= 0:
            raise ConfigurationError("failed batch workload must be positive")
        target = max(failed_batch_workload / self.split_factor, 1.0)
        count = int(math.ceil(remaining_workload / target))
        count = max(self.split_factor, count)
        count = min(count, MAX_RESPLIT_BATCHES)
        if float(remaining_workload).is_integer():
            count = min(count, int(remaining_workload))
        return front_loaded_split(remaining_workload, count, decay=self.decay)
