"""Seeded, jittered exponential backoff shared by every retry loop.

Retries appear in two distant corners of the codebase — the process
pool re-running items whose worker died (:mod:`repro.perf.parallel`)
and the batching executor re-splitting overloaded jobs
(:meth:`repro.batching.executor.MultiProcessingJob.run_with_recovery`).
Both want the same thing: exponentially growing delays, capped, with
optional jitter to de-synchronise concurrent retriers. Centralising
the arithmetic here keeps the two loops byte-for-byte comparable and
makes the jitter *deterministic*: the multiplier is drawn from a
caller-provided :class:`numpy.random.Generator` (derived from the
run's seed via :func:`repro.rng.make_rng` with a stream label), so a
re-run with the same seed sleeps the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["BackoffPolicy", "DEFAULT_BACKOFF"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff schedule: ``base * factor**(retry-1)``.

    Attributes
    ----------
    base_seconds:
        delay before the first retry (retry 1).
    factor:
        growth per retry; ``2.0`` doubles each time.
    max_seconds:
        cap applied before jitter — no single delay exceeds this.
    jitter:
        symmetric jitter fraction in ``[0, 1]``: the capped delay is
        scaled by ``1 + jitter * u`` with ``u`` uniform in ``[-1, 1)``
        drawn from the caller's generator. ``0`` (or no generator)
        keeps the schedule exact.
    """

    base_seconds: float = 0.05
    factor: float = 2.0
    max_seconds: float = 5.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_seconds < 0:
            raise ConfigurationError("base_seconds must be non-negative")
        if self.factor < 1.0:
            raise ConfigurationError("factor must be >= 1")
        if self.max_seconds < 0:
            raise ConfigurationError("max_seconds must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def delay_seconds(self, retry: int, rng=None) -> float:
        """Delay before retry number ``retry`` (1-based).

        ``retry=1`` is the first re-attempt. The exponential delay is
        capped at ``max_seconds``; when ``rng`` is given and ``jitter``
        is positive, one uniform draw scales it symmetrically. Passing
        the same seeded generator therefore reproduces the exact
        sleep schedule.
        """
        if retry < 1:
            raise ConfigurationError("retry must be >= 1")
        delay = min(
            self.max_seconds, self.base_seconds * self.factor ** (retry - 1)
        )
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(0.0, delay)


#: The schedule legacy callers got implicitly: 0.05 s doubling, uncapped
#: in practice (the crash-retry budget is far below the cap).
DEFAULT_BACKOFF = BackoffPolicy()
