"""Persistent, NUMA-pinned worker pool for *intra-task* kernel sharding.

The ``--jobs N`` pools (:mod:`repro.perf.parallel`) parallelise across
independent experiments; every MSSP/BKHS/BPPR round still ran its
expand/reduce/frontier work on one core. This module adds the missing
axis: a long-lived pool of *threads* that executes the hot kernels in
:mod:`repro.graph.csr` as row-sharded data-parallel tasks — each worker
processes a contiguous frontier/row shard into its own scratch arena,
and a deterministic sort-based merge (the same winner-key semantics the
block-streaming kernels proved out) combines shard results
byte-identically to the serial path at any shard count.

Threads, not processes, on purpose: the shard bodies are numpy argsort /
``reduceat`` / fancy-gather calls that release the GIL, so pinned
threads give genuine parallelism at ~50µs dispatch cost — against the
multi-millisecond fork/pickle cost that makes the process pools
unusable at per-round granularity. The workers read the same graph
arrays the serial path reads (in-RAM, shm segment, or mapped file —
all shareable within one process) and are pinned round-robin over the
NUMA topology exactly like the process-pool workers
(:func:`repro.perf.numa.plan_placement`), so on multi-socket hosts a
shard's reads stay node-local whenever the graph segment is replicated.

Determinism contract (mirrors :mod:`repro.perf.numa`'s): the worker
count changes *where* shards run, never what the merged round computes —
``tests/perf/test_determinism.py`` asserts ``pack_job`` byte-identity
across shard counts 1/2/7, pool on/off, and every ``--numa`` mode.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.perf import numa

__all__ = [
    "DEFAULT_MIN_SHARD_CANDIDATES",
    "configure_kernel_workers",
    "kernel_workers",
    "min_shard_candidates",
    "choose_shards",
    "shard_bounds",
    "run_sharded",
    "kernel_pool_stats",
    "reset_kernel_pool",
]

#: Measured crossover for going parallel at all: below this many
#: candidates (arcs in flight) per shard, the dispatch + merge overhead
#: exceeds the shard's compute and the round stays serial — the same
#: one-constant-next-to-its-benchmark pattern as
#: :data:`repro.graph.csr.DENSE_CANDIDATES_PER_CELL`. Measured with
#: ``benchmarks/kernel_bench.py --workers 2``: per-shard argsort over
#: fewer than ~32 Ki int64 keys completes faster than two pool
#: dispatches plus the winner-key merge.
DEFAULT_MIN_SHARD_CANDIDATES = 1 << 15

_CONFIG: Dict[str, int] = {
    "workers": 0,
    "min_shard_candidates": DEFAULT_MIN_SHARD_CANDIDATES,
}

#: Dispatch counters for ``BENCH_perf.json`` (lock-protected; written
#: once per sharded round, not per shard).
_STATS: Dict[str, int] = {
    "sharded_dispatches": 0,
    "shards_executed": 0,
    "serial_fallbacks": 0,
    "workers_pinned": 0,
}
_STATS_LOCK = threading.Lock()

_POOL: Optional["KernelPool"] = None
_POOL_LOCK = threading.Lock()


def configure_kernel_workers(
    workers: Optional[int] = None,
    min_shard_candidates: Optional[int] = None,
) -> int:
    """Set the process-wide intra-task worker count; returns it.

    ``workers`` of 0 or 1 disables sharding entirely (the serial hot
    paths run untouched — the default, byte-identical to every prior
    tree). Counts above the machine's CPU count are allowed: shard
    results are shard-count-invariant, and the determinism suite
    deliberately over-subscribes. ``min_shard_candidates`` overrides
    the serial/parallel crossover (tests force tiny values so small
    graphs still exercise the sharded paths).
    """
    if workers is not None:
        workers = int(workers)
        if workers < 0:
            raise ConfigurationError("--kernel-workers must be >= 0")
        if workers != _CONFIG["workers"]:
            _shutdown_pool()
        _CONFIG["workers"] = workers
    if min_shard_candidates is not None:
        min_shard_candidates = int(min_shard_candidates)
        if min_shard_candidates < 1:
            raise ConfigurationError("min_shard_candidates must be >= 1")
        _CONFIG["min_shard_candidates"] = min_shard_candidates
    return _CONFIG["workers"]


def kernel_workers() -> int:
    """The configured intra-task worker count (0/1 = serial)."""
    return _CONFIG["workers"]


def min_shard_candidates() -> int:
    """The active serial/parallel crossover (candidates per shard)."""
    return _CONFIG["min_shard_candidates"]


def choose_shards(num_candidates: int) -> int:
    """Cost-aware shard count for a round with ``num_candidates``
    in-flight arcs: never more shards than configured workers, and
    never so many that a shard falls under the measured crossover.
    Returns 1 (stay serial) when the pool is off or the round is small.
    """
    workers = _CONFIG["workers"]
    if workers <= 1 or num_candidates <= 0:
        return 1
    by_size = num_candidates // _CONFIG["min_shard_candidates"]
    shards = min(workers, by_size)
    if shards <= 1:
        with _STATS_LOCK:
            _STATS["serial_fallbacks"] += 1
        return 1
    return shards


def shard_bounds(
    weights: np.ndarray, shards: int
) -> List[Tuple[int, int]]:
    """Split ``[0, len(weights))`` into ``shards`` contiguous ranges of
    roughly equal total weight (per-entry out-degrees, usually). Ranges
    partition the index space in order; some may be empty when the
    weight mass is skewed onto few entries.
    """
    size = int(weights.size)
    if shards <= 1 or size == 0:
        return [(0, size)]
    bounds = np.cumsum(weights, dtype=np.int64)
    total = int(bounds[-1])
    if total <= 0:
        # Weightless entries: fall back to an even index split.
        cuts = [size * k // shards for k in range(shards + 1)]
    else:
        # Cut *after* the entry whose cumulative weight first reaches
        # each target, so a single heavy entry lands alone in its shard
        # instead of dragging the whole tail with it.
        targets = [total * k // shards for k in range(1, shards)]
        cuts = (
            [0]
            + [
                int(np.searchsorted(bounds, t, side="left")) + 1
                for t in targets
            ]
            + [size]
        )
    ranges = []
    lo = 0
    for hi in cuts[1:]:
        hi = max(lo, min(int(hi), size))
        ranges.append((lo, hi))
        lo = hi
    ranges[-1] = (ranges[-1][0], size)
    return ranges


class KernelPool:
    """The persistent pinned thread pool (one per process, lazy)."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._slots = itertools.count()
        self._placements = numa.plan_for(workers)
        self._executor = ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-kernel",
            initializer=self._pin_worker,
        )

    def _pin_worker(self) -> None:
        """Worker-thread initializer: claim a slot and pin to its node.

        ``sched_setaffinity(0, ...)`` applies to the *calling thread*
        on Linux, so each pool thread lands on its round-robin node
        without moving the parent. Single-node machines (or ``--numa
        off``) skip pinning entirely — the clean no-op path.
        """
        if self._placements is None:
            return
        slot = next(self._slots)
        placement = self._placements[slot % len(self._placements)]
        setter = getattr(os, "sched_setaffinity", None)
        if setter is None:  # pragma: no cover - non-Linux
            return
        try:
            setter(0, set(placement.cpus))
        except OSError:  # pragma: no cover - restricted runtimes
            return
        with _STATS_LOCK:
            _STATS["workers_pinned"] += 1

    def submit(self, thunk: Callable[[], object]):
        """Submit one independent task and return its future.

        Escape hatch for producer/consumer callers (the out-of-core
        build spills sorted runs while the parent keeps generating);
        the caller bounds its own in-flight count. Round-sharded
        kernels use :meth:`run` instead.
        """
        return self._executor.submit(thunk)

    def run(self, thunks: Sequence[Callable[[], object]]) -> List[object]:
        """Execute ``thunks`` across the pool; results in input order.

        The first exception (if any) propagates to the caller after all
        shards have settled — a failed shard must not leave siblings
        writing into shared state behind the caller's back.
        """
        futures = [self._executor.submit(thunk) for thunk in thunks]
        results: List[object] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        with _STATS_LOCK:
            _STATS["sharded_dispatches"] += 1
            _STATS["shards_executed"] += len(thunks)
        return results

    def shutdown(self) -> None:
        """Drain in-flight shards and stop the worker threads."""
        self._executor.shutdown(wait=True)


def get_pool() -> Optional[KernelPool]:
    """The live pool, started lazily; ``None`` while sharding is off."""
    workers = _CONFIG["workers"]
    if workers <= 1:
        return None
    global _POOL
    with _POOL_LOCK:
        if _POOL is None or _POOL.workers != workers:
            if _POOL is not None:
                _POOL.shutdown()
            _POOL = KernelPool(workers)
        return _POOL


def run_sharded(
    thunks: Sequence[Callable[[], object]]
) -> List[object]:
    """Run shard thunks on the pool (or inline when the pool is off —
    callers that reached this point normally checked
    :func:`choose_shards` first)."""
    pool = get_pool()
    if pool is None:
        return [thunk() for thunk in thunks]
    return pool.run(thunks)


def _shutdown_pool() -> None:
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown()
            _POOL = None


def kernel_pool_stats() -> Dict[str, object]:
    """Counters for ``vcrepro report`` / ``BENCH_perf.json``."""
    with _STATS_LOCK:
        stats: Dict[str, object] = dict(_STATS)
    stats["workers"] = _CONFIG["workers"]
    stats["min_shard_candidates"] = _CONFIG["min_shard_candidates"]
    return stats


def reset_kernel_pool() -> None:
    """Stop the pool and restore defaults (tests, CLI startup)."""
    _shutdown_pool()
    _CONFIG.update(
        workers=0, min_shard_candidates=DEFAULT_MIN_SHARD_CANDIDATES
    )
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0
