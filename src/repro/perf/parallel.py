"""Process-pool fan-out with deterministic results and serial fallback.

Experiments and batch sweeps are embarrassingly parallel: every
``(engine, batch_count)`` run and every experiment derives its RNG
stream from an explicit seed (:func:`repro.rng.derive_seed`), so
executing them in a pool produces byte-identical results to the serial
loop — the only thing that changes is wall-clock. Tests assert this
(``tests/perf/test_parallel_determinism.py``).

Two entry points:

* :func:`parallel_map` — for picklable ``fn``/items (experiment fan-out
  in :func:`repro.experiments.runner.run_all`).
* :func:`parallel_map_fork` — for closures (the task factories passed
  to ``sweep_batches``): the callable is stashed in a module global
  *before* the pool forks, so workers inherit it through fork semantics
  and only integer indices cross the pipe. Falls back to the serial
  loop on platforms without ``fork``.

Both degrade gracefully to serial execution when a pool cannot be
created or a payload cannot be pickled, and both fold the workers'
phase timings (:mod:`repro.perf.timings`) back into the parent.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence

from repro.perf import timings

__all__ = ["resolve_jobs", "parallel_map", "parallel_map_fork"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/1 -> serial, 0 -> cpu count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    if jobs == 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def _timed_call(fn: Callable, args: tuple) -> tuple:
    """Worker-side wrapper: run ``fn`` and ship its timing and
    cache-counter deltas home for the parent to fold in."""
    from repro.perf.cache import get_cache

    timings.reset()
    before = get_cache().stats.to_dict()
    result = fn(*args)
    after = get_cache().stats.to_dict()
    delta = {key: after[key] - before[key] for key in after}
    return result, timings.snapshot(), delta


def _fork_entry(index: int) -> tuple:
    """Fork-inherited worker entry for :func:`parallel_map_fork`."""
    fn = _FORK_STATE["fn"]
    return _timed_call(fn, (index,))


#: Closure stash read by forked workers (set before the pool submits).
_FORK_STATE: dict = {}


def _run_serial(fn: Callable, arg_tuples: Sequence[tuple]) -> List[Any]:
    return [fn(*args) for args in arg_tuples]


def _pool_map(
    worker: Callable,
    payloads: Sequence[tuple],
    jobs: int,
    require_fork: bool,
) -> Optional[List[Any]]:
    """Run ``worker`` over ``payloads`` in a pool; None -> use serial."""
    import concurrent.futures
    import multiprocessing

    try:
        if require_fork:
            if "fork" not in multiprocessing.get_all_start_methods():
                return None
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, max(len(payloads), 1)),
            mp_context=context,
        )
    except (OSError, ValueError, ImportError):
        return None
    try:
        with executor:
            outputs = list(executor.map(worker, *zip(*payloads)))
    except (OSError, ValueError, concurrent.futures.process.BrokenProcessPool,
            AttributeError, TypeError, ImportError):
        # Unpicklable payloads, a dead pool, or a sandboxed platform:
        # the serial path computes the same results.
        return None
    from repro.perf.cache import get_cache

    results = []
    for result, worker_timings, stats_delta in outputs:
        timings.merge(worker_timings)
        get_cache().stats.merge(stats_delta)
        results.append(result)
    return results


def parallel_map(
    fn: Callable,
    arg_tuples: Sequence[tuple],
    jobs: Optional[int] = None,
) -> List[Any]:
    """``[fn(*args) for args in arg_tuples]``, fanned out over processes.

    Order is preserved. ``fn`` and every argument must be picklable;
    when they are not (or a pool cannot be created), the serial loop
    runs instead and produces identical results.
    """
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(arg_tuples) <= 1:
        return _run_serial(fn, arg_tuples)
    payloads = [(fn, args) for args in arg_tuples]
    results = _pool_map(_timed_call, payloads, workers, require_fork=False)
    if results is None:
        return _run_serial(fn, arg_tuples)
    return results


def parallel_map_fork(
    fn: Callable[[int], Any],
    count: int,
    jobs: Optional[int] = None,
) -> List[Any]:
    """``[fn(i) for i in range(count)]`` fanned out via fork inheritance.

    ``fn`` may be any closure: it never crosses a pipe. Workers inherit
    it through the module global set here, so this path requires the
    ``fork`` start method (Linux/macOS); elsewhere it runs serially.
    """
    workers = resolve_jobs(jobs)
    if workers <= 1 or count <= 1:
        return [fn(i) for i in range(count)]
    _FORK_STATE["fn"] = fn
    try:
        payloads = [(i,) for i in range(count)]
        results = _pool_map(_fork_entry, payloads, workers, require_fork=True)
    finally:
        _FORK_STATE.pop("fn", None)
    if results is None:
        return [fn(i) for i in range(count)]
    return results
