"""Process-pool fan-out with deterministic results and serial fallback.

Experiments and batch sweeps are embarrassingly parallel: every
``(engine, batch_count)`` run and every experiment derives its RNG
stream from an explicit seed (:func:`repro.rng.derive_seed`), so
executing them in a pool produces byte-identical results to the serial
loop — the only thing that changes is wall-clock. Tests assert this
(``tests/perf/test_parallel.py``).

Two entry points:

* :func:`parallel_map` — for picklable ``fn``/items (experiment fan-out
  in :func:`repro.experiments.runner.run_all`).
* :func:`parallel_map_fork` — for closures (the task factories passed
  to ``sweep_batches``): the callable is stashed in a module global
  *before* the pool forks, so workers inherit it through fork semantics
  and only integer indices cross the pipe. Falls back to the serial
  loop on platforms without ``fork``.

Both degrade gracefully to serial execution when a pool cannot be
created or a payload cannot be pickled — with a :class:`RuntimeWarning`
naming the cause, never silently — and both fold the workers' phase
timings (:mod:`repro.perf.timings`) back into the parent.

NUMA placement: when :mod:`repro.perf.numa` reports a multi-node
topology (and ``--numa`` is not ``off``), every pool worker claims a
slot from a shared counter in the initializer and pins itself to its
round-robin node via :func:`repro.perf.numa.apply_placement`; each
worker's placement rides home with its first result and lands in the
``BENCH_perf.json`` roster. Single-node machines and the serial path
skip all of this silently — the clean degenerate case.

Crash isolation: a worker process dying (OOM-killed, segfault) breaks
the whole ``ProcessPoolExecutor`` — every in-flight future raises
``BrokenProcessPool``, so one bad item would normally take the batch
down with it. Items caught in a broken pool are therefore retried in
fresh single-worker pools with seeded exponential backoff
(:class:`~repro.perf.backoff.BackoffPolicy`): collateral victims
succeed on their first isolated attempt, while an item that keeps
killing its worker exhausts the retry budget and raises
:class:`~repro.errors.WorkerCrashError` naming the item. Configure the
budget with :func:`configure_retries` (CLI ``--max-retries``).

Supervision: :func:`configure_watchdog` arms a heartbeat — when no
future completes for ``heartbeat_seconds``, the pool is declared hung,
its workers are killed (turning the silent stall into the
BrokenProcessPool path above) and the caught items are respawned in
isolation, re-running the worker bootstrap so shared-memory segments
and NUMA pins re-attach. Every crash, retry, stall, and backoff sleep
is counted in :func:`supervision_stats`, which ``vcrepro`` folds into
``BENCH_perf.json``.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, WorkerCrashError
from repro.perf import timings
from repro.perf.backoff import BackoffPolicy

__all__ = [
    "resolve_jobs",
    "parallel_map",
    "parallel_map_fork",
    "configure_retries",
    "configure_watchdog",
    "supervision_stats",
    "reset_supervision",
    "set_pool_observer",
]

#: Per-item crash-retry budget and backoff base, shared by both entry
#: points. ``max_retries`` counts the *isolated* re-attempts after an
#: item was caught in a broken pool; re-attempt ``k`` sleeps
#: ``backoff_seconds * 2**(k-1)`` first (jittered when a seed is set).
_RETRY: Dict[str, float] = {
    "max_retries": 2,
    "backoff_seconds": 0.05,
    "jitter": 0.0,
}

#: Seeded generator for backoff jitter (``configure_retries(seed=...)``);
#: ``None`` keeps the legacy exact schedule.
_RETRY_RNG = None

#: Watchdog heartbeat in wall-clock seconds; ``None`` = disarmed.
_WATCHDOG: Dict[str, Optional[float]] = {"heartbeat_seconds": None}

#: Test/chaos seam: called with the live executor right after the
#: items are submitted, so a fault injector can find the worker pids.
_POOL_OBSERVER: Optional[Callable] = None

#: Worker-supervision counters, surfaced via :func:`supervision_stats`
#: and folded into ``BENCH_perf.json`` by the CLI.
_SUPERVISION: Dict[str, float] = {}


def reset_supervision() -> None:
    """Zero the supervision counters (new run / test isolation)."""
    _SUPERVISION.update(
        {
            "pool_crashes": 0,  # futures caught in a broken shared pool
            "isolated_attempts": 0,  # solo-pool runs, first try included
            "retries": 0,  # solo-pool re-attempts after a failure
            "items_recovered": 0,  # crashed items that then succeeded
            "items_lost": 0,  # items that exhausted the retry budget
            "watchdog_stalls": 0,  # heartbeat expiries that killed workers
            "backoff_seconds_total": 0.0,
        }
    )


reset_supervision()


def supervision_stats() -> Dict[str, float]:
    """A copy of the live worker-supervision counters."""
    return dict(_SUPERVISION)


def configure_retries(
    max_retries: Optional[int] = None,
    backoff_seconds: Optional[float] = None,
    seed: Optional[int] = None,
    jitter: Optional[float] = None,
) -> Dict[str, float]:
    """Set the process-wide crash-retry policy; returns the live config.

    ``max_retries=0`` disables isolated retries entirely: any item in a
    broken pool fails immediately (collateral victims included).
    ``seed``/``jitter`` arm deterministic jittered backoff: delays are
    scaled by a draw from the ``perf/backoff`` stream of ``seed``, so
    a re-run sleeps the same schedule (see
    :class:`~repro.perf.backoff.BackoffPolicy`).
    """
    global _RETRY_RNG
    if max_retries is not None:
        max_retries = int(max_retries)
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        _RETRY["max_retries"] = max_retries
    if backoff_seconds is not None:
        backoff_seconds = float(backoff_seconds)
        if backoff_seconds < 0:
            raise ConfigurationError("backoff_seconds must be >= 0")
        _RETRY["backoff_seconds"] = backoff_seconds
    if jitter is not None:
        jitter = float(jitter)
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        _RETRY["jitter"] = jitter
    if seed is not None:
        from repro.rng import make_rng

        _RETRY_RNG = make_rng(int(seed), label="perf/backoff")
    return _RETRY


def _retry_policy() -> BackoffPolicy:
    """The live crash-retry schedule as a :class:`BackoffPolicy`."""
    return BackoffPolicy(
        base_seconds=float(_RETRY["backoff_seconds"]),
        factor=2.0,
        jitter=float(_RETRY["jitter"]),
    )


def configure_watchdog(
    heartbeat_seconds: Optional[float],
) -> Optional[float]:
    """Arm (or disarm with ``None``) the hung-worker watchdog.

    While armed, :func:`parallel_map`/:func:`parallel_map_fork` declare
    the pool hung whenever no item completes for ``heartbeat_seconds``
    of wall clock, kill its workers, and respawn the caught items in
    isolated single-worker pools (re-running the bootstrap, so
    shared-memory and NUMA state re-attach). Set the heartbeat well
    above the longest legitimate item — the watchdog cannot tell a
    slow item from a hung one, only silence from progress.
    """
    if heartbeat_seconds is not None:
        heartbeat_seconds = float(heartbeat_seconds)
        if heartbeat_seconds <= 0:
            raise ConfigurationError("heartbeat_seconds must be positive")
    _WATCHDOG["heartbeat_seconds"] = heartbeat_seconds
    return heartbeat_seconds


def set_pool_observer(observer: Optional[Callable]) -> Optional[Callable]:
    """Install a callback invoked with each live executor after submit.

    A chaos injector uses this to discover worker pids and kill them on
    a schedule; returns the previous observer so tests can restore it.
    """
    global _POOL_OBSERVER
    previous = _POOL_OBSERVER
    _POOL_OBSERVER = observer
    return previous


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/1 -> serial, 0 -> auto.

    ``0`` asks :func:`repro.perf.numa.budgeted_worker_count` for the
    machine's capacity: per-node CPU counts capped by per-node DRAM
    (``meminfo``), so the auto worker count never overcommits a node's
    memory. Explicit positive counts are taken verbatim.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    if jobs == 0:
        from repro.perf import numa

        return numa.budgeted_worker_count()
    return jobs


def _warn_serial(reason: str) -> None:
    """Name the cause whenever the pool path degrades to the serial loop."""
    warnings.warn(
        f"parallel execution unavailable, falling back to serial: {reason}",
        RuntimeWarning,
        stacklevel=4,
    )


def _is_pickling_error(exc: BaseException) -> bool:
    """A payload failed to cross the pipe (closure, lambda, local class)."""
    import pickle

    if isinstance(exc, pickle.PicklingError):
        return True
    return isinstance(exc, (TypeError, AttributeError)) and "pickle" in str(
        exc
    ).lower()


#: Worker-side timing baseline: the last snapshot already shipped home.
#: ``None`` means the worker has not been bootstrapped yet (its table
#: may still hold spans inherited from the parent through fork).
_TIMING_BASELINE: Optional[dict] = None


def _worker_bootstrap(
    placement_state: Optional[tuple],
    user_init: Optional[Callable],
    user_initargs: tuple,
) -> None:
    """Pool initializer installed by :func:`_pool_map` in every worker.

    Clears timing spans inherited through fork, claims a NUMA placement
    slot (when a plan is active) and pins the worker, then runs the
    caller's own initializer. Spans recorded here are shipped home with
    the worker's first item via the snapshot-diff in :func:`_timed_call`.
    """
    global _TIMING_BASELINE
    from repro.perf import numa

    timings.reset()
    if placement_state is not None:
        placements, counter = placement_state
        with counter.get_lock():
            slot = counter.value
            counter.value += 1
        with timings.span("numa-pin"):
            numa.apply_placement(placements[slot % len(placements)])
    if user_init is not None:
        user_init(*user_initargs)
    _TIMING_BASELINE = {}


def _timed_call(fn: Callable, args: tuple) -> tuple:
    """Worker-side wrapper: run ``fn`` and ship its timing, cache- and
    shm-counter deltas home for the parent to fold in (shm keys ride in
    the same dict under a ``shm_`` prefix; the worker's NUMA placement
    rides under ``numa_worker``)."""
    global _TIMING_BASELINE
    from repro.perf import memory, numa, shm
    from repro.perf.cache import get_cache

    if _TIMING_BASELINE is None:  # bootstrapped by an older-style pool
        timings.reset()
        _TIMING_BASELINE = {}
    before = get_cache().stats.to_dict()
    shm_before = shm.shm_stats()
    result = fn(*args)
    after = get_cache().stats.to_dict()
    shm_after = shm.shm_stats()
    delta = {key: after[key] - before[key] for key in after}
    delta.update(
        {
            f"shm_{key}": shm_after[key] - shm_before[key]
            for key in shm_after
        }
    )
    placement = numa.worker_placement()
    if placement is not None:
        delta["numa_worker"] = placement
    peak = memory.peak_rss_bytes()
    if peak is not None:
        delta["mem_peak_rss"] = peak
    snap = timings.snapshot()
    shipped = timings.diff(_TIMING_BASELINE, snap)
    _TIMING_BASELINE = snap
    return result, shipped, delta


def _fork_entry(index: int) -> tuple:
    """Fork-inherited worker entry for :func:`parallel_map_fork`."""
    fn = _FORK_STATE["fn"]
    return _timed_call(fn, (index,))


#: Closure stash read by forked workers (set before the pool submits).
_FORK_STATE: dict = {}


def _run_serial(fn: Callable, arg_tuples: Sequence[tuple]) -> List[Any]:
    return [fn(*args) for args in arg_tuples]


def _run_isolated(
    worker: Callable,
    payload: tuple,
    index: int,
    context,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
):
    """Retry one crashed item in fresh single-worker pools.

    Items caught in a broken shared pool land here: a collateral victim
    (its neighbour crashed the worker) succeeds on the first isolated
    attempt; an item that keeps killing its own worker exhausts
    ``max_retries`` and raises :class:`WorkerCrashError`. Each fresh
    pool re-runs the worker bootstrap, so shared-memory segments and
    NUMA pins re-attach in the respawned process. With the watchdog
    armed, a *hung* (not dead) isolated worker is also killed and
    counted once its heartbeat expires.
    """
    import concurrent.futures
    from concurrent.futures.process import BrokenProcessPool

    budget = int(_RETRY["max_retries"])
    policy = _retry_policy()
    heartbeat = _WATCHDOG["heartbeat_seconds"]
    last: Optional[BaseException] = None
    for attempt in range(1, budget + 1):
        if attempt > 1:
            delay = policy.delay_seconds(attempt - 1, _RETRY_RNG)
            _SUPERVISION["retries"] += 1
            _SUPERVISION["backoff_seconds_total"] += delay
            time.sleep(delay)
        _SUPERVISION["isolated_attempts"] += 1
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=1,
                mp_context=context,
                initializer=initializer,
                initargs=initargs,
            ) as solo:
                future = solo.submit(worker, *payload)
                try:
                    result = future.result(timeout=heartbeat)
                except concurrent.futures.TimeoutError as exc:
                    # The respawned worker hung: kill it and retry.
                    _SUPERVISION["watchdog_stalls"] += 1
                    for proc in list(solo._processes.values()):
                        proc.kill()
                    last = exc
                    continue
                _SUPERVISION["items_recovered"] += 1
                return result
        except BrokenProcessPool as exc:
            last = exc
    _SUPERVISION["items_lost"] += 1
    raise WorkerCrashError(
        f"worker process died while computing item {index} and kept dying "
        f"through {budget} isolated retries; the item appears to crash its "
        f"worker (e.g. OOM or segfault)",
        item_index=index,
        attempts=budget,
    ) from last


def _pool_map(
    worker: Callable,
    payloads: Sequence[tuple],
    jobs: int,
    require_fork: bool,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
) -> Optional[List[Any]]:
    """Run ``worker`` over ``payloads`` in a pool; None -> use serial.

    Futures are submitted individually so a dying worker fails only the
    items caught in the broken pool — those are re-run via
    :func:`_run_isolated` rather than dragging the whole map down.
    Exceptions raised *by the worker function itself* propagate
    unchanged.
    """
    import concurrent.futures
    from concurrent.futures.process import BrokenProcessPool

    import multiprocessing

    from repro.perf import numa

    try:
        if require_fork:
            if "fork" not in multiprocessing.get_all_start_methods():
                _warn_serial(
                    "the fork start method is unavailable on this platform "
                    "(closures cannot be pickled across spawn)"
                )
                return None
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        workers = min(jobs, max(len(payloads), 1))
        placement_state = None
        placements = numa.plan_for(workers)
        if placements:
            # Workers claim slots from this shared counter in their
            # initializer; round-robin assignment then pins each one.
            placement_state = (placements, context.Value("i", 0))
        boot_args = (placement_state, initializer, initargs)
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_bootstrap,
            initargs=boot_args,
        )
    except (OSError, ValueError, ImportError) as exc:
        _warn_serial(f"could not create a process pool ({exc})")
        return None

    outputs: List[Optional[tuple]] = [None] * len(payloads)
    crashed: List[int] = []

    def _collect(future, index: int) -> bool:
        """Harvest one future; ``False`` means degrade to serial."""
        try:
            outputs[index] = future.result()
        except BrokenProcessPool:
            _SUPERVISION["pool_crashes"] += 1
            crashed.append(index)
        except Exception as exc:
            if _is_pickling_error(exc):
                _warn_serial(
                    f"payload for item {index} could not be "
                    f"pickled ({exc})"
                )
                return False
            raise  # the worker function's own error: propagate
        return True

    heartbeat = _WATCHDOG["heartbeat_seconds"]
    try:
        with executor:
            futures = {
                executor.submit(worker, *payload): index
                for index, payload in enumerate(payloads)
            }
            if _POOL_OBSERVER is not None:
                _POOL_OBSERVER(executor)
            if heartbeat is None:
                for future, index in futures.items():
                    if not _collect(future, index):
                        return None
            else:
                # Watchdog: harvest as futures finish; a heartbeat
                # with no completion at all means the pool is hung —
                # kill its workers, which breaks the pool and routes
                # every caught item through the isolated-respawn path.
                pending = set(futures)
                while pending:
                    done, pending = concurrent.futures.wait(
                        pending, timeout=heartbeat
                    )
                    if done:
                        for future in done:
                            if not _collect(future, futures[future]):
                                return None
                        continue
                    _SUPERVISION["watchdog_stalls"] += 1
                    for proc in list(executor._processes.values()):
                        proc.kill()
    except (OSError, BrokenProcessPool) as exc:
        # The pool itself collapsed outside a result() call (e.g. a
        # sandboxed platform killing the management thread).
        _warn_serial(f"process pool collapsed ({exc})")
        return None

    for index in crashed:
        outputs[index] = _run_isolated(
            worker, payloads[index], index, context, _worker_bootstrap,
            boot_args,
        )

    from repro.perf import memory, shm
    from repro.perf.cache import get_cache

    results = []
    for result, worker_timings, stats_delta in outputs:
        timings.merge(worker_timings)
        placement = stats_delta.pop("numa_worker", None)
        if placement is not None:
            numa.record_worker(**placement)
        worker_peak = stats_delta.pop("mem_peak_rss", None)
        if worker_peak is not None:
            memory.record_worker_peak(int(worker_peak))
        get_cache().stats.merge(stats_delta)
        shm.merge_counters(
            {
                key[4:]: value
                for key, value in stats_delta.items()
                if key.startswith("shm_")
            }
        )
        results.append(result)
    # With the workers' locality counters folded in, let auto mode
    # revise its replicate-vs-interleave cutoff for the next pool run
    # (a no-op unless cross-node reads were actually observed).
    numa.adapt_replicate_threshold(shm.shm_stats())
    return results


def parallel_map(
    fn: Callable,
    arg_tuples: Sequence[tuple],
    jobs: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
) -> List[Any]:
    """``[fn(*args) for args in arg_tuples]``, fanned out over processes.

    Order is preserved. ``fn`` and every argument must be picklable;
    when they are not (or a pool cannot be created), a
    :class:`RuntimeWarning` names the cause and the serial loop runs
    instead, producing identical results. A worker process dying fails
    only its own item — after the isolated retry budget is exhausted it
    raises :class:`~repro.errors.WorkerCrashError` for that item.

    ``initializer``/``initargs`` run once in every worker process before
    any item (e.g. installing the shared-memory graph table,
    :func:`repro.perf.shm.install_worker_table`); they are ignored on
    the serial fallback, which shares the parent's state anyway.
    """
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(arg_tuples) <= 1:
        return _run_serial(fn, arg_tuples)
    payloads = [(fn, args) for args in arg_tuples]
    results = _pool_map(
        _timed_call,
        payloads,
        workers,
        require_fork=False,
        initializer=initializer,
        initargs=initargs,
    )
    if results is None:
        return _run_serial(fn, arg_tuples)
    return results


def parallel_map_fork(
    fn: Callable[[int], Any],
    count: int,
    jobs: Optional[int] = None,
) -> List[Any]:
    """``[fn(i) for i in range(count)]`` fanned out via fork inheritance.

    ``fn`` may be any closure: it never crosses a pipe. Workers inherit
    it through the module global set here, so this path requires the
    ``fork`` start method (Linux/macOS); elsewhere a
    :class:`RuntimeWarning` is emitted and the loop runs serially.
    Crash isolation matches :func:`parallel_map`.
    """
    workers = resolve_jobs(jobs)
    if workers <= 1 or count <= 1:
        return [fn(i) for i in range(count)]
    _FORK_STATE["fn"] = fn
    try:
        payloads = [(i,) for i in range(count)]
        results = _pool_map(_fork_entry, payloads, workers, require_fork=True)
    finally:
        _FORK_STATE.pop("fn", None)
    if results is None:
        return [fn(i) for i in range(count)]
    return results
