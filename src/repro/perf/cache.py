"""Content-addressed artifact cache (in-memory LRU + optional on-disk npz).

Experiment sweeps regenerate the same artifacts over and over: the same
Chung-Lu graph for every experiment touching a dataset, the same hash
partition for every engine bound to the same cluster, the same mirror
plan, and — across figures that share settings — the same engine run.
This module provides one process-wide :class:`ArtifactCache` that all of
them share, so repeated sweeps reuse bit-identical artifacts instead of
recomputing them.

Keys are flat tuples of primitives, content-addressed where graph
identity matters (see :meth:`repro.graph.csr.Graph.fingerprint`).
Values are cached in an in-memory LRU; artifact kinds that provide an
array serializer are additionally persisted to an on-disk ``.npz``
store, enabled by the ``REPRO_CACHE_DIR`` environment variable or the
``--cache-dir`` CLI flag, which makes the expensive stand-ins (Twitter,
Friendster) load in milliseconds across processes.

Determinism contract: every builder routed through the cache is a pure
function of its key, so cached and uncached results are bit-identical —
tests assert this (``tests/perf/test_cache.py``).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import CacheCorruptionError
from repro.perf import timings

__all__ = [
    "ArtifactCache",
    "ArraySerializer",
    "CacheStats",
    "ResultCache",
    "ResultCacheStats",
    "get_cache",
    "configure_cache",
    "clear_cache",
]

#: Default in-memory LRU capacity (entries). Artifacts are small at the
#: default simulation scale (the largest graph is ~25 MB), so a couple
#: hundred entries stay well under typical memory budgets.
DEFAULT_CAPACITY = 256

#: Reserved array name holding the artifact's own checksum inside the
#: ``.npz``. Legacy artifacts without it are still accepted.
CHECKSUM_KEY = "_repro_checksum"


def _checksum_array(arrays: Dict[str, np.ndarray]) -> np.ndarray:
    """Content digest of an artifact's arrays (names, dtypes, shapes,
    bytes), stored alongside them so torn/bit-rotted files are caught
    at load time."""
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(arrays):
        array = np.asarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(array).tobytes())
    return np.frombuffer(
        digest.hexdigest().encode("ascii"), dtype=np.uint8
    ).copy()


@dataclass
class CacheStats:
    """Hit/miss counters, surfaced in ``vcrepro report``."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    #: on-disk artifacts that failed checksum/format validation and were
    #: quarantined (renamed to ``*.corrupt``) then rebuilt.
    corruptions: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form for reports and ``BENCH_perf.json``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
        }

    def merge(self, delta: Dict[str, int]) -> None:
        """Fold another process's counter deltas into this one."""
        self.hits += int(delta.get("hits", 0))
        self.misses += int(delta.get("misses", 0))
        self.disk_hits += int(delta.get("disk_hits", 0))
        self.evictions += int(delta.get("evictions", 0))
        self.corruptions += int(delta.get("corruptions", 0))


@dataclass(frozen=True)
class ArraySerializer:
    """Adapter persisting one artifact kind as a dict of numpy arrays.

    ``pack`` maps the value to ``{name: array}`` (plain scalars allowed;
    they round-trip as 0-d arrays); ``unpack`` rebuilds the value.
    """

    pack: Callable[[Any], Dict[str, np.ndarray]] = field(repr=False)
    unpack: Callable[[Dict[str, np.ndarray]], Any] = field(repr=False)


class ArtifactCache:
    """Thread-safe LRU keyed by primitive tuples, with optional npz spill."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        directory: Optional[str] = None,
    ) -> None:
        self.capacity = int(capacity)
        self.directory = directory
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------
    def get_or_build(
        self,
        key: Tuple,
        build: Callable[[], Any],
        serializer: Optional[ArraySerializer] = None,
        use_memory: bool = True,
        directory: Optional[str] = None,
        stem: Optional[str] = None,
    ) -> Any:
        """Return the cached value for ``key``, building it on a miss.

        Lookup order: in-memory LRU (unless ``use_memory`` is False),
        then the on-disk store (when a ``serializer`` is given and a
        cache directory is configured), then ``build()``. Disk loads and
        fresh builds are inserted into the LRU; fresh builds are also
        persisted to disk.

        ``directory`` overrides the cache-wide disk directory for this
        artifact; ``stem`` overrides the on-disk filename prefix
        (default: ``key[0]``).
        """
        if use_memory:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return self._entries[key]
        path = self._disk_path(key, serializer, directory, stem)
        if path is not None and os.path.exists(path):
            value = self._load(path, serializer)
            if value is not None:
                self.stats.disk_hits += 1
                if use_memory:
                    self._insert(key, value)
                return value
        self.stats.misses += 1
        value = build()
        if use_memory:
            self._insert(key, value)
        if path is not None:
            self._store(path, value, serializer)
        return value

    def put(self, key: Tuple, value: Any) -> None:
        """Insert ``value`` under ``key`` (memory only)."""
        self._insert(key, value)

    def get(self, key: Tuple) -> Optional[Any]:
        """Value for ``key`` or None (memory only; counts hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
        self.stats.misses += 1
        return None

    def clear(self) -> None:
        """Drop every in-memory entry (the disk store is left intact)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert(self, key: Tuple, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def _disk_path(
        self,
        key: Tuple,
        serializer: Optional[ArraySerializer],
        directory: Optional[str] = None,
        stem: Optional[str] = None,
    ) -> Optional[str]:
        directory = directory or self.directory
        if serializer is None or not directory:
            return None
        digest = hashlib.blake2b(
            repr(key).encode("utf-8"), digest_size=16
        ).hexdigest()
        kind = stem or (str(key[0]) if key else "artifact")
        return os.path.join(directory, f"{kind}-{digest}.npz")

    def artifact_directory(
        self,
        key: Tuple,
        stem: Optional[str] = None,
        directory: Optional[str] = None,
    ) -> Optional[str]:
        """Deterministic ``.csr`` directory path for directory-shaped
        artifacts (the on-disk CSR file sets behind
        :class:`repro.graph.io.MappedGraph`), addressed like the npz
        store: same key digest, ``.csr`` suffix. Returns ``None`` when
        no disk directory is configured."""
        directory = directory or self.directory
        if not directory:
            return None
        digest = hashlib.blake2b(
            repr(key).encode("utf-8"), digest_size=16
        ).hexdigest()
        kind = stem or (str(key[0]) if key else "artifact")
        return os.path.join(directory, f"{kind}-{digest}.csr")

    def _store(
        self, path: str, value: Any, serializer: ArraySerializer
    ) -> None:
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            arrays = dict(serializer.pack(value))
            arrays[CHECKSUM_KEY] = _checksum_array(arrays)
            # Write-then-rename: a crash mid-write leaves only a stale
            # tmp file, never a truncated artifact under the real name.
            tmp = f"{path}.tmp-{os.getpid()}"
            with open(tmp, "wb") as fh:
                self._write_npz(fh, arrays)
            os.replace(tmp, path)
        except OSError:  # disk store is best-effort
            pass

    @staticmethod
    def _write_npz(fh, arrays: Dict[str, np.ndarray]) -> None:
        """``np.savez_compressed`` with deflate level 1.

        Cache artifacts are write-once scratch data; numpy's default
        level 6 spends 3-5x the CPU for a marginally smaller file, and
        the store happens on the critical path of every cold run.
        ``np.load`` reads the archive unchanged.
        """
        import zipfile

        with zipfile.ZipFile(
            fh, "w", zipfile.ZIP_DEFLATED, compresslevel=1
        ) as archive:
            for name, array in arrays.items():
                with archive.open(
                    f"{name}.npy", "w", force_zip64=True
                ) as entry:
                    np.lib.format.write_array(
                        entry, np.asanyarray(array), allow_pickle=False
                    )

    def _load(
        self, path: str, serializer: ArraySerializer
    ) -> Optional[Any]:
        import zipfile
        import zlib

        try:
            with timings.span("cache-load"):
                with np.load(path, allow_pickle=False) as data:
                    arrays = {name: data[name] for name in data.files}
                stored = arrays.pop(CHECKSUM_KEY, None)
                if stored is not None and not np.array_equal(
                    stored, _checksum_array(arrays)
                ):
                    raise CacheCorruptionError(
                        f"checksum mismatch in cache artifact {path}"
                    )
                return serializer.unpack(arrays)
        except (
            OSError,
            ValueError,
            KeyError,
            zipfile.BadZipFile,
            zlib.error,
            CacheCorruptionError,
        ):
            # Corrupt or foreign file: quarantine it so the rebuild's
            # fresh copy cannot collide with the bad bytes, and fall
            # through to rebuild.
            self.stats.corruptions += 1
            try:
                os.replace(path, f"{path}.corrupt")
            except OSError:
                pass
            return None


# ----------------------------------------------------------------------
# Serving-tier result cache (TTL + LRU bytes + single-flight)
# ----------------------------------------------------------------------
@dataclass
class ResultCacheStats:
    """Counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    #: in-flight duplicates joined to a leader's execution.
    coalesced: int = 0
    stores: int = 0
    #: entries dropped because their TTL lapsed.
    expirations: int = 0
    #: entries dropped by the LRU bytes budget (oversized payloads that
    #: were never stored count here too).
    evictions: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form for reports and ``BENCH_perf.json``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "stores": self.stores,
            "expirations": self.expirations,
            "evictions": self.evictions,
        }


class ResultCache:
    """Content-keyed result cache with single-flight coalescing.

    The serving tier's front-door memo: completed request payloads
    (opaque bytes, content-keyed like every artifact) are served from
    memory until they expire or the LRU bytes budget evicts them, and
    duplicate requests arriving while the first is still executing are
    *coalesced* — registered as joiners on the in-flight leader and
    fanned the leader's payload byte-identically, so N concurrent
    duplicates cost exactly one execution.

    Time is the caller's clock (the scheduler's simulated seconds), so
    TTL expiry is deterministic. The cache itself stores only payload
    bytes; durability across processes comes from the artifact cache
    the payload *builder* is memoised in — a cold :class:`ResultCache`
    backed by a warm artifact store rebuilds payloads from disk instead
    of re-running the engine.

    Single-threaded by design (the scheduler loop drives it between
    batches); "concurrent" means queued on the same virtual clock.

    ``tenant_bytes`` adds per-tenant byte quotas mirroring the admission
    memory quotas: each stored payload is charged to the tenant whose
    leader executed it, and a tenant over its cap evicts its *own*
    least-recent entries first — one tenant's burst can no longer flush
    every other tenant's working set. Per-tenant hit/evict counters are
    kept whenever a tenant is supplied, for
    :meth:`repro.sim.metrics.ServiceMetrics.tenant_summary`.
    """

    def __init__(
        self,
        ttl_seconds: Optional[float] = None,
        max_bytes: Optional[float] = None,
        tenant_bytes: Optional[Dict[str, float]] = None,
    ) -> None:
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if tenant_bytes is not None:
            for tenant, cap in tenant_bytes.items():
                if cap <= 0:
                    raise ValueError(
                        f"tenant byte quota for {tenant!r} must be positive"
                    )
        self.ttl_seconds = ttl_seconds
        self.max_bytes = max_bytes
        #: tenant → byte cap; tenants absent from the mapping are only
        #: bounded by the global budget. ``None`` = no tenant quotas.
        self.tenant_bytes = dict(tenant_bytes) if tenant_bytes else None
        self.stats = ResultCacheStats()
        #: key → (payload bytes, store time, owning tenant); insertion
        #: order is LRU.
        self._entries: "OrderedDict[Tuple, Tuple[bytes, float, str]]" = (
            OrderedDict()
        )
        self._bytes = 0.0
        #: tenant → bytes currently stored on that tenant's account.
        self._tenant_used: Dict[str, float] = {}
        #: tenant → {"hits": n, "evictions": n, "stores": n}.
        self._tenant_stats: Dict[str, Dict[str, int]] = {}
        #: key → list of joiner tokens riding the in-flight leader.
        self._inflight: Dict[Tuple, list] = {}

    def _count(self, tenant: Optional[str], counter: str) -> None:
        if tenant is None:
            return
        record = self._tenant_stats.setdefault(
            tenant, {"hits": 0, "evictions": 0, "stores": 0}
        )
        record[counter] += 1

    def _remove(self, key: Tuple) -> Tuple[bytes, str]:
        """Drop one stored entry, unwinding global and tenant bytes."""
        payload, _, tenant = self._entries.pop(key)
        self._bytes -= len(payload)
        if tenant in self._tenant_used:
            self._tenant_used[tenant] -= len(payload)
            if self._tenant_used[tenant] <= 0:
                del self._tenant_used[tenant]
        return payload, tenant

    def tenant_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant cache counters and resident bytes (sorted)."""
        tenants = sorted(
            set(self._tenant_stats) | set(self._tenant_used)
        )
        summary: Dict[str, Dict[str, float]] = {}
        for tenant in tenants:
            stats = self._tenant_stats.get(
                tenant, {"hits": 0, "evictions": 0, "stores": 0}
            )
            summary[tenant] = {
                "cache_hits": stats["hits"],
                "cache_evictions": stats["evictions"],
                "cache_stores": stats["stores"],
                "cache_bytes": self._tenant_used.get(tenant, 0.0),
            }
        return summary

    def tenant_resident_bytes(self, tenant: str) -> float:
        """Bytes currently stored on ``tenant``'s account."""
        return self._tenant_used.get(tenant, 0.0)

    @property
    def total_bytes(self) -> float:
        """Bytes of payload currently cached (never above the budget)."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def _expire(self, now: float) -> None:
        if self.ttl_seconds is None:
            return
        stale = [
            key
            for key, (_, stored_at, _) in self._entries.items()
            if now - stored_at > self.ttl_seconds
        ]
        for key in stale:
            self._remove(key)
            self.stats.expirations += 1

    def lookup(
        self, key: Tuple, now: float, tenant: Optional[str] = None
    ) -> Optional[bytes]:
        """The cached payload for ``key``, or ``None`` on a miss.

        Expired entries are dropped first, so an entry stored at ``t``
        is servable exactly while ``now - t <= ttl`` — the monotone
        expiry contract the property suite checks. Hits refresh LRU
        recency. ``tenant`` (the requester, not necessarily the owner)
        only feeds the per-tenant hit counters.
        """
        self._expire(now)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self._count(tenant, "hits")
        return entry[0]

    def leader(self, key: Tuple) -> bool:
        """Claim single-flight leadership of ``key``.

        Returns True when no execution is in flight (the caller must
        run the request and eventually :meth:`complete` or
        :meth:`abandon` the key); False when a leader already exists —
        join it with :meth:`enlist` instead of executing.
        """
        if key in self._inflight:
            return False
        self._inflight[key] = []
        return True

    def enlist(self, key: Tuple, token) -> None:
        """Register a duplicate request on the in-flight leader; the
        token is handed back verbatim by :meth:`complete`/:meth:`abandon`."""
        if key not in self._inflight:
            raise KeyError(f"no in-flight leader for {key!r}")
        self._inflight[key].append(token)
        self.stats.coalesced += 1

    def complete(
        self,
        key: Tuple,
        payload: bytes,
        now: float,
        tenant: str = "default",
        store: bool = True,
    ) -> list:
        """Finish the leader's execution: store the payload and return
        the joiner tokens to fan it out to.

        The payload enters the TTL/LRU store (unless it alone exceeds
        the bytes budget, in which case it is served to the joiners but
        not retained). Eviction is LRU until the budget holds — the
        never-exceeds-budget invariant. The stored bytes are charged to
        ``tenant``; a tenant with a byte quota evicts its own
        least-recent entries first. ``store=False`` (cost-aware
        admission rejected the payload) still fans the joiners out but
        never touches the store.
        """
        joiners = self._inflight.pop(key, [])
        if not store:
            return joiners
        payload = bytes(payload)
        self._expire(now)
        if key in self._entries:
            self._remove(key)
        if self.max_bytes is not None and len(payload) > self.max_bytes:
            self.stats.evictions += 1
            self._count(tenant, "evictions")
            return joiners
        cap = (
            self.tenant_bytes.get(tenant)
            if self.tenant_bytes is not None
            else None
        )
        if cap is not None:
            if len(payload) > cap:
                self.stats.evictions += 1
                self._count(tenant, "evictions")
                return joiners
            while (
                self._tenant_used.get(tenant, 0.0) + len(payload) > cap
            ):
                victim = next(
                    (
                        k
                        for k, (_, _, owner) in self._entries.items()
                        if owner == tenant
                    ),
                    None,
                )
                if victim is None:
                    break
                self._remove(victim)
                self.stats.evictions += 1
                self._count(tenant, "evictions")
        self._entries[key] = (payload, float(now), tenant)
        self._bytes += len(payload)
        self._tenant_used[tenant] = self._tenant_used.get(
            tenant, 0.0
        ) + len(payload)
        self.stats.stores += 1
        self._count(tenant, "stores")
        if self.max_bytes is not None:
            while self._bytes > self.max_bytes and self._entries:
                victim = next(iter(self._entries))
                _, owner = self._remove(victim)
                self.stats.evictions += 1
                self._count(owner, "evictions")
        return joiners

    def abandon(self, key: Tuple) -> list:
        """Drop the in-flight leader without a result (the leader was
        shed); returns the joiner tokens so the caller can fail them
        the same way."""
        return self._inflight.pop(key, [])

    def inflight(self, key: Tuple) -> bool:
        """Whether ``key`` has an in-flight leader."""
        return key in self._inflight


# ----------------------------------------------------------------------
# Process-wide cache instance
# ----------------------------------------------------------------------
_GLOBAL: Optional[ArtifactCache] = None


def get_cache() -> ArtifactCache:
    """The process-wide cache (created on first use from environment).

    ``REPRO_CACHE_DIR`` enables the on-disk store; ``REPRO_CACHE_SIZE``
    overrides the in-memory LRU capacity. The legacy
    ``REPRO_DATASET_CACHE`` variable is honoured as a fallback
    directory for backwards compatibility.
    """
    global _GLOBAL
    if _GLOBAL is None:
        directory = os.environ.get("REPRO_CACHE_DIR") or os.environ.get(
            "REPRO_DATASET_CACHE"
        )
        raw_size = os.environ.get("REPRO_CACHE_SIZE", "").strip()
        try:
            capacity = int(raw_size) if raw_size else DEFAULT_CAPACITY
        except ValueError:
            capacity = DEFAULT_CAPACITY
        _GLOBAL = ArtifactCache(capacity=capacity, directory=directory)
    return _GLOBAL


def configure_cache(
    directory: Optional[str] = None,
    capacity: Optional[int] = None,
) -> ArtifactCache:
    """(Re)configure the process-wide cache (CLI ``--cache-dir``).

    Existing in-memory entries are kept; only the disk directory and
    capacity change.
    """
    cache = get_cache()
    if directory is not None:
        cache.directory = directory or None
    if capacity is not None:
        cache.capacity = int(capacity)
    return cache


def clear_cache() -> None:
    """Drop all in-memory entries of the process-wide cache."""
    get_cache().clear()
