"""Peak-RSS accounting for reports and the out-of-core benchmarks.

The out-of-core pipeline (:mod:`repro.graph.build`, the block-streaming
kernels in :mod:`repro.graph.csr`) exists to bound resident memory, so
the reports have to *show* resident memory or the claim is
unverifiable. This module keeps three signals, all cheap enough to
leave on:

* the process-lifetime peak RSS from ``resource.getrusage`` — the
  kernel-maintained high-water mark, free to read;
* a per-phase high-water mark sampled from ``/proc/self/statm`` each
  time a phase timer fires (:func:`repro.perf.timings.add` calls
  :func:`note_phase`; sampling is throttled so hot kernel timers cost
  one ~1µs read every :data:`SAMPLE_EVERY` calls);
* the maximum worker peak shipped home by the ``--jobs N`` pools
  (:mod:`repro.perf.parallel` folds each worker's ``ru_maxrss`` delta
  into :func:`record_worker_peak`).

Everything degrades to ``None``/zero off Linux (no ``/proc``) or
without the :mod:`resource` module — gated, never crashing.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = [
    "SAMPLE_EVERY",
    "rss_bytes",
    "peak_rss_bytes",
    "note_phase",
    "record_worker_peak",
    "record_state_spill",
    "memory_stats",
    "reset_memory_state",
]

#: Throttle for sampled :func:`note_phase` calls: the kernel timers fire
#: tens of thousands of times per report run; reading ``statm`` on every
#: 64th call keeps the per-phase high-water marks honest (RSS moves on
#: allocation boundaries, not per-call) at ~0.1% of the naive cost.
SAMPLE_EVERY = 64

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096

#: Per-phase RSS high-water marks (phase name -> bytes) plus the
#: throttle counters driving the sampled reads.
_PHASES: Dict[str, int] = {}
_TICKS: Dict[str, int] = {}

#: Largest worker-process peak RSS folded back through the pool.
_WORKER_PEAK: Dict[str, int] = {"bytes": 0}

#: Dense kernel-state matrices spilled to mapped scratch files under the
#: ``--max-ram`` budget (:func:`repro.tasks.base.alloc_state_matrix`).
_STATE_SPILLS: Dict[str, int] = {"count": 0, "bytes": 0}


def rss_bytes() -> Optional[int]:
    """Current resident set size, or ``None`` where ``/proc`` is absent."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def peak_rss_bytes() -> Optional[int]:
    """Process-lifetime peak RSS (``ru_maxrss``), or ``None``.

    Linux reports ``ru_maxrss`` in kilobytes; macOS in bytes — both are
    monotone high-water marks, and the reports only compare like with
    like, so the Linux convention (×1024) is applied unconditionally on
    non-Darwin platforms.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    import sys

    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return int(peak)
    return int(peak) * 1024


def note_phase(name: str, sampled: bool = False) -> None:
    """Fold the current RSS into ``name``'s high-water mark.

    ``sampled=True`` is the hot-path form used by the timing
    accumulators: only every :data:`SAMPLE_EVERY`-th call per phase
    actually reads ``statm``.
    """
    if sampled:
        tick = _TICKS.get(name, 0)
        _TICKS[name] = tick + 1
        if tick % SAMPLE_EVERY:
            return
    current = rss_bytes()
    if current is None:
        return
    if current > _PHASES.get(name, 0):
        _PHASES[name] = current


def record_worker_peak(peak_bytes: int) -> None:
    """Parent-side: keep the max peak RSS reported by any pool worker."""
    peak_bytes = int(peak_bytes)
    if peak_bytes > _WORKER_PEAK["bytes"]:
        _WORKER_PEAK["bytes"] = peak_bytes


def record_state_spill(nbytes: int) -> None:
    """Count one dense state matrix spilled to a mapped scratch file."""
    _STATE_SPILLS["count"] += 1
    _STATE_SPILLS["bytes"] += int(nbytes)


def memory_stats() -> Dict[str, object]:
    """The ``"memory"`` section of ``vcrepro report`` / BENCH_perf.json.

    ``worker_peak_rss_bytes`` falls back to the parent's own lifetime
    peak when no pool worker reported one (``--jobs 1`` runs the
    experiments in-process — the parent *is* the worker), so the field
    is populated whenever the platform can measure RSS at all.
    """
    return {
        "peak_rss_bytes": peak_rss_bytes(),
        "current_rss_bytes": rss_bytes(),
        "worker_peak_rss_bytes": _WORKER_PEAK["bytes"] or peak_rss_bytes(),
        "state_spills": dict(_STATE_SPILLS),
        "phase_high_water_bytes": dict(sorted(_PHASES.items())),
    }


def reset_memory_state() -> None:
    """Forget phase marks and worker peaks (tests, CLI startup).

    The lifetime ``ru_maxrss`` is kernel state and cannot be reset.
    """
    _PHASES.clear()
    _TICKS.clear()
    _WORKER_PEAK["bytes"] = 0
    _STATE_SPILLS["count"] = 0
    _STATE_SPILLS["bytes"] = 0
