"""Lightweight phase-timing instrumentation.

The library accumulates wall-clock spans per *phase* — ``graph-gen``,
``partition``, ``mirror-plan``, ``kernel``, ``cost-model``, plus one
span per experiment — into a process-global table with near-zero
overhead (one ``perf_counter`` pair per span). ``vcrepro report``
surfaces the table and dumps it as ``BENCH_perf.json`` so successive
PRs accumulate a performance trajectory to regress against.

Hot paths (the engine's per-round kernel/cost loop) use the raw
:func:`add` accumulator instead of the :func:`span` context manager to
keep per-call overhead at two ``perf_counter`` reads.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.perf import memory

__all__ = [
    "PhaseTotal",
    "add",
    "span",
    "snapshot",
    "merge",
    "diff",
    "reset",
    "render_table",
    "write_json",
]


@dataclass
class PhaseTotal:
    """Accumulated wall-clock total of one phase."""

    seconds: float = 0.0
    count: int = 0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form for snapshots and ``BENCH_perf.json``."""
        return {"seconds": self.seconds, "count": self.count}


#: phase name -> accumulated total (process-global, merged across
#: worker processes by :mod:`repro.perf.parallel`).
_TIMINGS: Dict[str, PhaseTotal] = {}


def add(name: str, seconds: float, count: int = 1) -> None:
    """Accumulate ``seconds`` under phase ``name`` (hot-path entry point)."""
    total = _TIMINGS.get(name)
    if total is None:
        total = _TIMINGS[name] = PhaseTotal()
    total.seconds += seconds
    total.count += count
    # Piggyback the per-phase RSS high-water sampling on the timing
    # ticks: the throttle inside note_phase keeps this off the hot
    # path (one /proc read per SAMPLE_EVERY calls per phase).
    memory.note_phase(name, sampled=True)


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time the enclosed block and accumulate it under phase ``name``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        add(name, time.perf_counter() - start)


def snapshot() -> Dict[str, Dict[str, float]]:
    """Copy of the accumulated phase table ({name: {seconds, count}})."""
    return {name: total.to_dict() for name, total in _TIMINGS.items()}


def merge(other: Dict[str, Dict[str, float]]) -> None:
    """Fold a :func:`snapshot` from another process into this one."""
    for name, total in other.items():
        add(name, float(total["seconds"]), int(total["count"]))


def diff(
    before: Dict[str, Dict[str, float]],
    after: Dict[str, Dict[str, float]],
) -> Dict[str, Dict[str, float]]:
    """Per-phase ``after - before`` of two snapshots, dropping empty rows.

    Pool workers ship deltas between consecutive snapshots instead of
    resetting the table around every item, so spans recorded by the
    pool initializer (NUMA pinning, shared-memory setup) reach the
    parent exactly once — with the first completed item.
    """
    delta: Dict[str, Dict[str, float]] = {}
    for name, total in after.items():
        base = before.get(name, {"seconds": 0.0, "count": 0})
        seconds = float(total["seconds"]) - float(base["seconds"])
        count = int(total["count"]) - int(base["count"])
        if seconds != 0.0 or count != 0:
            delta[name] = {"seconds": seconds, "count": count}
    return delta


def reset() -> None:
    """Drop all accumulated spans (tests and fresh CLI invocations)."""
    _TIMINGS.clear()


def render_table(
    timings: Optional[Dict[str, Dict[str, float]]] = None,
    subphases: bool = True,
) -> str:
    """Aligned text table of phase totals, slowest first.

    Dotted names (``kernel.expand``, ``kernel.reduce``, ...) are
    sub-phases of their prefix; ``subphases=False`` hides them for the
    compact top-level view (``vcrepro report`` without ``--phases``).
    """
    data = timings if timings is not None else snapshot()
    if not subphases:
        data = {name: total for name, total in data.items() if "." not in name}
    if not data:
        return "(no timing spans recorded)"
    rows = sorted(data.items(), key=lambda kv: -kv[1]["seconds"])
    width = max(len(name) for name, _ in rows)
    lines = [f"{'phase'.ljust(width)}  {'seconds':>9}  {'count':>8}"]
    lines.append(f"{'-' * width}  {'-' * 9}  {'-' * 8}")
    for name, total in rows:
        lines.append(
            f"{name.ljust(width)}  {total['seconds']:>9.3f}"
            f"  {int(total['count']):>8d}"
        )
    return "\n".join(lines)


def write_json(path: str, extra: Optional[dict] = None) -> str:
    """Write the phase table (plus ``extra`` metadata) as JSON to ``path``."""
    payload = dict(extra or {})
    payload["phases"] = snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
