"""Zero-copy graph transport for process pools via shared memory.

Fanning experiments out over workers (``vcrepro report --jobs 4``) used
to make every worker rebuild or deserialize its own private copy of
each dataset graph: the payloads crossing the pipe are ``(experiment,
config)`` pairs, so the graphs were re-created once per worker process.
This module ships each distinct graph to the workers **at most once**:

* the parent prebuilds the datasets the selected experiments need and
  :meth:`SharedGraphRegistry.export`\\ s their CSR arrays into one
  POSIX shared-memory segment per graph (deduplicated by
  :attr:`~repro.graph.csr.Graph.fingerprint`);
* the pool initializer installs the resulting ``{dataset key ->
  GraphHandle}`` table in each worker
  (:func:`install_worker_table`);
* worker-side :func:`repro.graph.datasets.load_dataset` consults
  :func:`lookup_shared` first and, on a hit, maps the segment
  read-only and wraps it in a :class:`~repro.graph.csr.Graph` without
  copying, validating, or re-fingerprinting anything. Attachments are
  cached per process, so even repeated loads map each segment once.

A miss anywhere simply falls back to the regular artifact-cache path —
shared memory is a transport optimization, never a correctness
dependency. The parent unlinks every exported segment at pool shutdown
or interpreter exit (``atexit``), whichever comes first.

NUMA segment placement (:mod:`repro.perf.numa`): on multi-node
topologies, exports consult :func:`repro.perf.numa.segment_placement`.
Large graphs get one **replica segment per node** in addition to the
primary; a replica starts empty and is populated *first-touch* by the
first worker pinned to that node that attaches it (so its pages are
faulted in node-locally), guarded by an 8-byte ready flag at the head
of the segment — concurrent populators write identical bytes, so the
race is benign. Small graphs keep the single (OS-default, effectively
interleaved) segment. ``--numa replicate``/``interleave`` force either
policy; ``--numa off`` and single-node machines skip all of it.

Huge-page backing: segments at or above the replicate threshold are
``madvise(MADV_HUGEPAGE)``\\ d right after creation (before the CSR
copy faults their pages in), so the kernel can back the graph arrays
with transparent huge pages and cut TLB pressure on the scatter
kernels' random reads. Platforms without the advice (or kernels that
refuse it) warn once and stay on base pages — the
``huge_page_segments``/``huge_page_bytes`` counters in
:func:`shm_stats` record what actually got advised.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.csr import Graph

__all__ = [
    "GraphHandle",
    "SharedGraphRegistry",
    "get_registry",
    "lookup_shared",
    "install_worker_table",
    "shutdown_shared_graphs",
    "shm_stats",
    "merge_counters",
]

_INT = np.dtype(np.int64)
_FLOAT = np.dtype(np.float64)

#: Replica segments carry a ready flag (int64: 0 = empty, 1 = populated
#: first-touch by a node-local worker) ahead of the CSR arrays.
_REPLICA_HEADER_BYTES = 8

#: Huge-page degradations already announced (warn once per cause).
_WARNED: set = set()


def _warn_once(key: str, message: str) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=4)


def _advise_huge_pages(segment) -> bool:
    """Best-effort ``madvise(MADV_HUGEPAGE)`` on a segment's mapping.

    Returns True when the advice took. A platform without the constant
    (macOS) or without a reachable ``mmap`` handle, and a kernel that
    rejects the call (THP disabled), each warn once and leave the
    segment on base pages — never an error, the bytes are identical
    either way.
    """
    import mmap

    advice = getattr(mmap, "MADV_HUGEPAGE", None)
    buf = getattr(segment, "_mmap", None)
    if advice is None or buf is None:
        _warn_once(
            "hugepage-unsupported",
            "transparent huge pages unavailable on this platform "
            "(no mmap.MADV_HUGEPAGE / no mapping handle); shared graph "
            "segments stay on base pages",
        )
        return False
    try:
        buf.madvise(advice)
    except (OSError, ValueError) as exc:
        _warn_once(
            "hugepage-refused",
            f"madvise(MADV_HUGEPAGE) refused by the kernel ({exc}); "
            "shared graph segments stay on base pages",
        )
        return False
    return True


@dataclass(frozen=True)
class GraphHandle:
    """Picklable pointer to one graph's shared-memory segment.

    The segment holds ``indptr``, ``indices`` and (optionally)
    ``weights`` back to back; lengths are in elements, so workers can
    recompute every offset without touching the payload. ``replicas``
    maps NUMA node ids to per-node replica segments (empty when the
    graph was exported single/interleaved); ``placement`` records which
    policy the exporter chose, for the stats roster.
    """

    segment: str
    fingerprint: str
    name: str
    directed: bool
    indptr_len: int
    indices_len: int
    weighted: bool
    replicas: Tuple[Tuple[int, str], ...] = ()
    placement: str = "single"
    #: CSR directory path for memory-mapped graphs: instead of a copied
    #: segment, workers re-open the mapped files (``placement`` is then
    #: ``"mapped"`` and ``segment`` is empty). The page cache makes the
    #: mapping physically shared across the pool — true zero-copy.
    mapped_dir: Optional[str] = None

    @property
    def nbytes(self) -> int:
        total = (self.indptr_len + self.indices_len) * _INT.itemsize
        if self.weighted:
            total += self.indices_len * _FLOAT.itemsize
        return total

    def replica_for(self, node_id: int) -> Optional[str]:
        """Replica segment name for ``node_id``, or None."""
        for node, segment in self.replicas:
            if node == node_id:
                return segment
        return None


class SharedGraphRegistry:
    """Process-wide registry of shared-memory graph segments.

    The parent side exports (``export``/``handle_table``); the worker
    side installs a handle table and attaches (``install``/``lookup``).
    Both sides share the counters surfaced in ``BENCH_perf.json``:
    ``exported_graphs``/``exported_bytes``/``export_reuses`` count the
    parent's segments (reuses = a second dataset key resolving to an
    already-shipped fingerprint), ``attaches``/``attach_reuses`` count
    worker-side mappings (reuses = cache hits that mapped nothing).
    The NUMA counters split that by placement:
    ``replica_segments``/``replica_bytes`` count per-node replica
    segments created by the exporter, ``interleaved_graphs`` the
    small/forced single-segment exports on multi-node topologies,
    ``replicas_populated`` first-touch population events, and
    ``node_local_attaches`` worker mappings that landed on the
    worker's own node's replica.
    ``huge_page_segments``/``huge_page_bytes`` count the segments
    (primary and replica) whose mappings accepted
    ``madvise(MADV_HUGEPAGE)``.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, Tuple[object, GraphHandle]] = {}
        self._handles: Dict[Tuple, GraphHandle] = {}
        self._attached: Dict[str, Tuple[object, Graph]] = {}
        #: replica segments created by this (parent) process, plus the
        #: worker-side mappings kept alive for attached replicas.
        self._replica_segments: list = []
        self._atexit_armed = False
        self.counters: Dict[str, int] = {
            "exported_graphs": 0,
            "exported_bytes": 0,
            "export_reuses": 0,
            "attaches": 0,
            "attach_reuses": 0,
            "replica_segments": 0,
            "replica_bytes": 0,
            "interleaved_graphs": 0,
            "replicas_populated": 0,
            "node_local_attaches": 0,
            "huge_page_segments": 0,
            "huge_page_bytes": 0,
            "mapped_exports": 0,
            "mapped_attaches": 0,
            # Observed read locality, the signal behind the adaptive
            # --numa auto replicate threshold: each attach on a
            # multi-node topology is scored as one full-graph read from
            # the segment it landed on (every kernel pass streams the
            # whole CSR at least once, so segment size per attach is
            # the honest first-order volume estimate).
            "cross_node_reads": 0,
            "cross_node_read_bytes": 0,
            "local_read_bytes": 0,
        }

    def _request_huge_pages(self, segment, nbytes: int) -> None:
        """Advise huge pages for a large segment and count successes.

        Only segments at or above the replicate threshold qualify —
        the same "large enough to matter" bar the replication policy
        uses; smaller segments would fragment THP for no TLB win.
        """
        from repro.perf import numa

        if nbytes < numa.replicate_threshold():
            return
        if _advise_huge_pages(segment):
            self.counters["huge_page_segments"] += 1
            self.counters["huge_page_bytes"] += nbytes

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------
    def export(
        self,
        key: Tuple,
        graph: Graph,
        nodes: Tuple[int, ...] = (),
    ) -> Optional[GraphHandle]:
        """Copy ``graph``'s CSR arrays into a shared segment (once per
        fingerprint) and remember ``key -> handle``; None if shared
        memory is unavailable on this platform.

        ``nodes`` (the NUMA node ids workers may be pinned to) enables
        per-node replica segments when the placement policy asks for
        them; replicas are created empty and populated first-touch by
        the first node-local worker that attaches one.
        """
        from repro.perf import numa

        fingerprint = graph.fingerprint
        cached = self._segments.get(fingerprint)
        if cached is not None:
            self.counters["export_reuses"] += 1
            self._handles[key] = cached[1]
            return cached[1]
        if graph.mapped:
            # Memory-mapped graph: the CSR files *are* the shared
            # segment (page cache), so export records a path, copies
            # nothing, and workers re-open the maps.
            handle = GraphHandle(
                segment="",
                fingerprint=fingerprint,
                name=graph.name,
                directed=graph.directed,
                indptr_len=graph.indptr.size,
                indices_len=graph.indices.size,
                weighted=graph.weights is not None,
                placement="mapped",
                mapped_dir=getattr(graph, "directory", None),
            )
            if handle.mapped_dir is None:
                return None
            self._segments[fingerprint] = (None, handle)
            self._handles[key] = handle
            self.counters["mapped_exports"] += 1
            return handle
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - always present on Linux
            return None
        stem = f"repro-graph-{os.getpid()}-{fingerprint[:16]}"
        handle = GraphHandle(
            segment=stem,
            fingerprint=fingerprint,
            name=graph.name,
            directed=graph.directed,
            indptr_len=graph.indptr.size,
            indices_len=graph.indices.size,
            weighted=graph.weights is not None,
        )
        placement = numa.segment_placement(handle.nbytes, len(nodes))
        try:
            segment = shared_memory.SharedMemory(
                name=handle.segment, create=True, size=max(handle.nbytes, 1)
            )
        except OSError:
            return None
        self._request_huge_pages(segment, handle.nbytes)
        views = _segment_views(segment, handle)
        views[0][:] = graph.indptr
        views[1][:] = graph.indices
        if handle.weighted:
            views[2][:] = graph.weights
        if placement == "replicate":
            replicas = []
            for node_id in nodes:
                try:
                    replica = shared_memory.SharedMemory(
                        name=f"{stem}-n{node_id}",
                        create=True,
                        size=handle.nbytes + _REPLICA_HEADER_BYTES,
                    )
                except OSError:
                    continue  # best-effort: node falls back to primary
                self._request_huge_pages(replica, handle.nbytes)
                self._replica_segments.append(replica)
                replicas.append((int(node_id), replica.name))
                self.counters["replica_segments"] += 1
                self.counters["replica_bytes"] += handle.nbytes
            handle = dataclasses.replace(
                handle, replicas=tuple(replicas), placement="replicate"
            )
        elif placement == "interleave":
            handle = dataclasses.replace(handle, placement="interleave")
            self.counters["interleaved_graphs"] += 1
        self._segments[fingerprint] = (segment, handle)
        self._handles[key] = handle
        self.counters["exported_graphs"] += 1
        self.counters["exported_bytes"] += handle.nbytes
        if not self._atexit_armed:
            atexit.register(self.shutdown)
            self._atexit_armed = True
        return handle

    def handle_table(self) -> Dict[Tuple, GraphHandle]:
        """The ``{dataset key -> handle}`` table to ship to workers."""
        return dict(self._handles)

    def shutdown(self) -> None:
        """Unlink every exported segment (idempotent; parent only)."""
        for segment, _ in self._segments.values():
            if segment is None:  # mapped graph: no segment to unlink
                continue
            try:
                segment.close()
                segment.unlink()
            except (OSError, FileNotFoundError):  # already gone
                pass
        for replica in self._replica_segments:
            try:
                replica.close()
                replica.unlink()
            except (OSError, FileNotFoundError):
                pass
        self._segments.clear()
        self._replica_segments.clear()
        self._handles.clear()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def install(self, table: Dict[Tuple, GraphHandle]) -> None:
        """Adopt the parent's handle table (pool initializer)."""
        self._handles.update(table)

    def lookup(self, key: Tuple) -> Optional[Graph]:
        """The shared graph registered under ``key``, or None."""
        handle = self._handles.get(key)
        if handle is None:
            return None
        return self.attach(handle)

    def attach(self, handle: GraphHandle) -> Optional[Graph]:
        """Map a handle's segment and wrap it as a read-only Graph.

        Each distinct fingerprint is mapped once per process and the
        wrapper cached; construction bypasses ``Graph.__init__`` — the
        parent already validated these arrays, and the fingerprint
        rides in on the handle, so attachment does zero O(m) work.

        A worker placed on a NUMA node by the pool initializer prefers
        its node's replica segment (populating it first-touch if it is
        the first node-local attacher); anything without a placement,
        or whose replica cannot be mapped, uses the primary segment.
        """
        cached = self._attached.get(handle.fingerprint)
        if cached is not None:
            self.counters["attach_reuses"] += 1
            return cached[1]
        if handle.mapped_dir is not None:
            from repro.errors import GraphFormatError
            from repro.graph.io import open_mapped

            try:
                graph = open_mapped(handle.mapped_dir)
            except (OSError, ValueError, GraphFormatError):
                return None
            self._attached[handle.fingerprint] = ((), graph)
            self.counters["attaches"] += 1
            self.counters["mapped_attaches"] += 1
            self._note_read_locality(handle, node_local=False)
            return graph
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - always present on Linux
            return None
        # Attaching re-registers the name with the resource tracker; the
        # workers share the parent's tracker process, where registration
        # is an idempotent set-add, so this needs no compensation — the
        # exporting parent stays the only unlinker. (Worker-side
        # unregistering would remove the parent's registration and make
        # its own unlink double-unregister.)
        attached = self._attach_node_local(handle, shared_memory)
        if attached is None:
            try:
                segment = shared_memory.SharedMemory(name=handle.segment)
            except OSError:
                return None
            attached = ((segment,), _segment_views(segment, handle))
        keepalive, views = attached
        graph = Graph.__new__(Graph)
        graph.indptr = views[0]
        graph.indices = views[1]
        graph.weights = views[2] if handle.weighted else None
        graph.directed = handle.directed
        graph.name = handle.name
        graph._degrees = None
        graph._fingerprint = handle.fingerprint
        graph._spread = None
        for array in views:
            if array is not None:
                array.setflags(write=False)
        # The SharedMemory objects must outlive every numpy view, so
        # they ride in the process-lifetime cache alongside the Graph.
        self._attached[handle.fingerprint] = (keepalive, graph)
        self.counters["attaches"] += 1
        node_local = len(keepalive) > 0 and keepalive[0].name != handle.segment
        self._note_read_locality(handle, node_local=node_local)
        return graph

    def _note_read_locality(
        self, handle: GraphHandle, node_local: bool
    ) -> None:
        """Score one attach's expected read volume by locality.

        Only meaningful when this worker is pinned to a NUMA node on a
        multi-node topology: a node-local replica attach reads locally;
        a primary (interleaved or remote) or mapped attach streams the
        graph across the interconnect in first-order approximation.
        These counters ride home through the pool's ``shm_`` delta
        channel and feed :func:`repro.perf.numa.adapt_replicate_threshold`.
        """
        from repro.perf import numa

        if numa.current_worker_node() is None:
            return
        if node_local:
            self.counters["local_read_bytes"] += handle.nbytes
        else:
            self.counters["cross_node_reads"] += 1
            self.counters["cross_node_read_bytes"] += handle.nbytes

    def _attach_node_local(self, handle: GraphHandle, shared_memory):
        """Map this worker's node replica, or None for the primary path.

        The first node-local attacher finds the ready flag unset and
        populates the replica from the primary segment — the write
        faults the replica's pages in on *this* worker's node
        (first-touch). Concurrent populators write identical bytes, so
        the unsynchronised copy is benign; the flag is set only after a
        full copy.
        """
        from repro.perf import numa

        node = numa.current_worker_node()
        if node is None or not handle.replicas:
            return None
        replica_name = handle.replica_for(node)
        if replica_name is None:
            return None
        try:
            replica = shared_memory.SharedMemory(name=replica_name)
        except OSError:
            return None
        flag = np.ndarray((1,), dtype=_INT, buffer=replica.buf)
        views = _segment_views(replica, handle, offset=_REPLICA_HEADER_BYTES)
        keepalive = (replica,)
        if flag[0] != 1:
            try:
                primary = shared_memory.SharedMemory(name=handle.segment)
            except OSError:
                return None
            source = _segment_views(primary, handle)
            for dst, src in zip(views, source):
                if dst is not None:
                    np.copyto(dst, src)
            flag[0] = 1
            self.counters["replicas_populated"] += 1
            keepalive = (replica, primary)
        self.counters["node_local_attaches"] += 1
        return keepalive, views


def _segment_views(segment, handle: GraphHandle, offset: int = 0):
    """(indptr, indices, weights) numpy views over a segment's buffer.

    ``offset`` skips a replica segment's ready-flag header.
    """
    indptr = np.ndarray(
        (handle.indptr_len,), dtype=_INT, buffer=segment.buf, offset=offset
    )
    offset += handle.indptr_len * _INT.itemsize
    indices = np.ndarray(
        (handle.indices_len,), dtype=_INT, buffer=segment.buf, offset=offset
    )
    offset += handle.indices_len * _INT.itemsize
    weights = None
    if handle.weighted:
        weights = np.ndarray(
            (handle.indices_len,),
            dtype=_FLOAT,
            buffer=segment.buf,
            offset=offset,
        )
    return indptr, indices, weights


#: Per-process singleton: the parent's export table or, in pool
#: workers, the attachment cache installed by the initializer.
_REGISTRY = SharedGraphRegistry()


def get_registry() -> SharedGraphRegistry:
    """The process-wide shared-graph registry."""
    return _REGISTRY


def lookup_shared(key: Tuple) -> Optional[Graph]:
    """Shared graph under ``key``, or None (fast path: one dict probe)."""
    if not _REGISTRY._handles:
        return None
    return _REGISTRY.lookup(key)


def install_worker_table(table: Dict[Tuple, GraphHandle]) -> None:
    """Pool-initializer entry point: adopt the parent's handle table."""
    _REGISTRY.install(table)


def shutdown_shared_graphs() -> None:
    """Unlink every segment exported by this process."""
    _REGISTRY.shutdown()


def shm_stats() -> Dict[str, int]:
    """Counters for ``vcrepro report`` / ``BENCH_perf.json``."""
    return dict(_REGISTRY.counters)


def merge_counters(delta: Dict[str, int]) -> None:
    """Fold a worker's counter deltas into this process's registry."""
    for key, value in delta.items():
        if key in _REGISTRY.counters:
            _REGISTRY.counters[key] += int(value)
