"""NUMA topology discovery and worker placement for the process pools.

The ``--jobs N`` pools (:mod:`repro.perf.parallel`) used to spread
workers wherever the scheduler dropped them, so on multi-socket hosts a
worker reading a shared-memory graph segment (:mod:`repro.perf.shm`)
routinely crossed NUMA nodes — adding exactly the per-worker timing
noise the round–congestion measurements are most sensitive to. This
module makes placement explicit:

* :func:`discover` reads the node topology from
  ``/sys/devices/system/node`` (one :class:`NumaNode` per ``nodeK``
  directory), intersects every node's CPU list with the process's
  cpuset (``os.sched_getaffinity``), and degrades along first-class
  fallback paths: no sysfs (macOS, minimal containers) or a cpuset
  that empties every node collapses to a single synthetic node built
  from the affinity mask — each degradation announced once with a
  :class:`NumaWarning`, never silently.
* :func:`plan_placement` assigns pool workers to nodes round-robin;
  the pool initializer claims a slot and calls
  :func:`apply_placement`, which pins the worker with
  ``os.sched_setaffinity``. A platform without that call, or a
  ``PermissionError`` from a restricted runtime, warns once and the
  worker proceeds unpinned (today's behaviour).
* :mod:`repro.perf.shm` consults :func:`segment_placement` to decide
  per-graph segment handling: first-touch per-node **replication**
  above :data:`REPLICATE_THRESHOLD_BYTES`, a single **interleaved**
  segment below it, forced either way by ``--numa
  replicate``/``--numa interleave`` (``--numa off`` disables the whole
  layer).

Determinism contract: placement changes *where* work runs, never what
it computes — the differential suite
(``tests/perf/test_determinism.py``) asserts byte-identical outputs
with the layer on, off, and degraded.
"""

from __future__ import annotations

import os
import re
import warnings
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "NumaWarning",
    "NumaNode",
    "NumaTopology",
    "MODES",
    "REPLICATE_THRESHOLD_BYTES",
    "MIN_REPLICATE_THRESHOLD_BYTES",
    "parse_cpu_list",
    "discover",
    "configure_numa",
    "numa_mode",
    "active_topology",
    "plan_placement",
    "plan_for",
    "apply_placement",
    "current_worker_node",
    "worker_placement",
    "record_worker",
    "replication_nodes",
    "segment_placement",
    "replicate_threshold",
    "adapt_replicate_threshold",
    "budgeted_worker_count",
    "numa_stats",
    "reset_numa_state",
]

#: Where Linux exposes the node topology.
SYSFS_NODE_ROOT = "/sys/devices/system/node"

#: Valid ``--numa`` modes. ``auto`` pins workers and picks segment
#: placement by size; ``replicate``/``interleave`` force the segment
#: policy; ``off`` restores pre-NUMA behaviour entirely.
MODES = ("auto", "off", "replicate", "interleave")

#: ``auto`` mode replicates a graph segment per node once it exceeds
#: this many bytes; smaller segments stay interleaved — the copy cost
#: would exceed the cross-node read traffic it saves. This is the
#: *starting* cutoff: :func:`adapt_replicate_threshold` revises it from
#: the measured per-segment cross-node read volume after each pool run.
REPLICATE_THRESHOLD_BYTES = 4 << 20

#: Floor for the adaptive threshold: below this, per-node copies cost
#: more (page-table churn, cache pollution) than any cross-node read
#: they could save, regardless of what the counters suggest.
MIN_REPLICATE_THRESHOLD_BYTES = 256 << 10

#: Conservative DRAM budget one pool worker is assumed to need (graph
#: views, scratch arenas, serialized results). ``--jobs 0`` divides each
#: node's ``meminfo`` MemTotal by this to cap that node's worker count
#: so :func:`plan_for` never overcommits the node's DRAM.
DEFAULT_WORKER_MEMORY_BYTES = 512 << 20

_NODE_DIR = re.compile(r"^node(\d+)$")


class NumaWarning(RuntimeWarning):
    """A NUMA feature degraded to a fallback path (named, never silent)."""


@dataclass(frozen=True)
class NumaNode:
    """One NUMA node: its id, the CPUs usable by this process, and the
    node's DRAM size (``meminfo`` MemTotal; None when unknown)."""

    node_id: int
    cpus: Tuple[int, ...]
    memory_bytes: Optional[int] = None


@dataclass(frozen=True)
class NumaTopology:
    """The discovered node layout plus where it came from.

    ``source`` is ``"sysfs"`` for a real discovery, ``"affinity"`` for
    the single-synthetic-node fallback, or ``"override"`` for a
    topology injected via :func:`configure_numa` (tests, benchmarks).
    """

    nodes: Tuple[NumaNode, ...]
    source: str

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def cpus(self) -> Tuple[int, ...]:
        return tuple(cpu for node in self.nodes for cpu in node.cpus)

    def node_ids(self) -> Tuple[int, ...]:
        """The node ids in discovery order."""
        return tuple(node.node_id for node in self.nodes)


@dataclass(frozen=True)
class WorkerPlacement:
    """One pool worker's assignment: its slot, node and CPU set."""

    slot: int
    node_id: int
    cpus: Tuple[int, ...]


def parse_cpu_list(text: str) -> Tuple[int, ...]:
    """Parse a sysfs CPU list (``"0-3,8,10-11"``) into sorted CPU ids."""
    cpus = []
    for chunk in text.strip().split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "-" in chunk:
            lo, hi = chunk.split("-", 1)
            cpus.extend(range(int(lo), int(hi) + 1))
        else:
            cpus.append(int(chunk))
    return tuple(sorted(set(cpus)))


def _process_affinity() -> FrozenSet[int]:
    """CPUs this process may run on (cpuset-aware), with a portable
    fallback to the full CPU count on platforms without
    ``sched_getaffinity`` (macOS)."""
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return frozenset(getter(0))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return frozenset(range(os.cpu_count() or 1))


def _read_meminfo_total(path: str) -> Optional[int]:
    """MemTotal from a ``meminfo`` file, in bytes (None when unreadable).

    Handles both shapes: the per-node sysfs form (``Node 0 MemTotal:
    16314828 kB``) and ``/proc/meminfo`` (``MemTotal: 16314828 kB``).
    """
    try:
        with open(path, encoding="ascii") as fh:
            for line in fh:
                parts = line.split()
                if "MemTotal:" not in parts:
                    continue
                value = parts[parts.index("MemTotal:") + 1]
                return int(value) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


#: Degradations already announced this process (warn once per cause).
_WARNED: set = set()


def _warn_once(key: str, message: str) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, NumaWarning, stacklevel=3)


def discover(
    sysfs_root: Optional[str] = None,
    affinity: Optional[FrozenSet[int]] = None,
) -> NumaTopology:
    """Discover the node topology, respecting the process cpuset.

    Every fallback is a first-class path: no sysfs at all (macOS,
    containers without ``/sys``), a cpuset that strips some nodes of
    all their CPUs, or one that strips *every* node — each warns once
    (:class:`NumaWarning`) and the discovery proceeds with what
    remains, bottoming out at one synthetic node spanning the affinity
    mask (the clean single-node degenerate case).
    """
    root = sysfs_root if sysfs_root is not None else SYSFS_NODE_ROOT
    allowed = affinity if affinity is not None else _process_affinity()
    single = NumaTopology(
        nodes=(
            NumaNode(
                0,
                tuple(sorted(allowed)),
                memory_bytes=_read_meminfo_total("/proc/meminfo"),
            ),
        ),
        source="affinity",
    )

    try:
        entries = sorted(os.listdir(root))
    except OSError:
        _warn_once(
            "sysfs",
            f"NUMA topology unavailable ({root} is unreadable on this "
            "platform); treating the machine as a single node",
        )
        return single

    nodes = []
    dropped = []
    for entry in entries:
        match = _NODE_DIR.match(entry)
        if match is None:
            continue
        node_id = int(match.group(1))
        try:
            with open(
                os.path.join(root, entry, "cpulist"), encoding="ascii"
            ) as fh:
                cpus = parse_cpu_list(fh.read())
        except (OSError, ValueError):
            dropped.append(node_id)
            continue
        usable = tuple(cpu for cpu in cpus if cpu in allowed)
        if usable:
            memory = _read_meminfo_total(
                os.path.join(root, entry, "meminfo")
            )
            nodes.append(NumaNode(node_id, usable, memory_bytes=memory))
        elif cpus:
            dropped.append(node_id)

    if dropped and nodes:
        _warn_once(
            "cpuset",
            f"cpuset restricts this process away from NUMA node(s) "
            f"{sorted(dropped)}; placement uses the "
            f"{len(nodes)} remaining node(s)",
        )
    if not nodes:
        _warn_once(
            "sysfs-empty",
            f"no usable NUMA nodes found under {root}; treating the "
            "machine as a single node",
        )
        return single
    return NumaTopology(nodes=tuple(nodes), source="sysfs")


# ----------------------------------------------------------------------
# Process-wide configuration and state
# ----------------------------------------------------------------------
_UNSET = object()

_CONFIG: Dict[str, object] = {
    "mode": "auto",
    "topology": None,  # override (tests/benchmarks); None -> discover()
    "replicate_threshold": REPLICATE_THRESHOLD_BYTES,
    # True once a caller pins the threshold explicitly (tests, CLI):
    # the adaptive update then leaves it alone.
    "replicate_threshold_overridden": False,
    "worker_memory_bytes": DEFAULT_WORKER_MEMORY_BYTES,
}

#: Parent-side roster of the last memory-budgeted worker computation
#: (node id -> cpus/memory/workers), surfaced via :func:`numa_stats`.
_BUDGET: Dict[str, Dict[str, object]] = {}

#: Cached discovery result (cleared by configure_numa/reset).
_DISCOVERED: Optional[NumaTopology] = None

#: This worker's own placement, set by :func:`apply_placement`.
_WORKER: Dict[str, object] = {"node": None, "pinned": False, "slot": None}

#: Parent-side roster of worker placements reported back through the
#: pool (pid -> {"node": ..., "pinned": ...}); deduplicated by pid.
_WORKERS: Dict[int, Dict[str, object]] = {}


def configure_numa(
    mode: Optional[str] = None,
    topology=_UNSET,
    replicate_threshold: Optional[int] = None,
    worker_memory_bytes: Optional[int] = None,
) -> str:
    """Set the process-wide NUMA policy; returns the active mode.

    ``topology`` overrides discovery (pass ``None`` to return to real
    discovery) — the seam the fake-sysfs tests and benchmarks use.
    ``worker_memory_bytes`` tunes the per-worker DRAM estimate the
    ``--jobs 0`` budget divides each node's memory by.
    """
    global _DISCOVERED
    if mode is not None:
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown --numa mode {mode!r}; choose from "
                + "/".join(MODES)
            )
        _CONFIG["mode"] = mode
    if topology is not _UNSET:
        override = topology
        if override is not None:
            override = NumaTopology(
                nodes=tuple(override.nodes), source="override"
            )
        _CONFIG["topology"] = override
        _DISCOVERED = None
    if replicate_threshold is not None:
        _CONFIG["replicate_threshold"] = int(replicate_threshold)
        _CONFIG["replicate_threshold_overridden"] = True
    if worker_memory_bytes is not None:
        worker_memory_bytes = int(worker_memory_bytes)
        if worker_memory_bytes <= 0:
            raise ConfigurationError("worker_memory_bytes must be > 0")
        _CONFIG["worker_memory_bytes"] = worker_memory_bytes
    return str(_CONFIG["mode"])


def numa_mode() -> str:
    """The active ``--numa`` mode."""
    return str(_CONFIG["mode"])


def active_topology() -> NumaTopology:
    """The override topology if configured, else the cached discovery."""
    override = _CONFIG["topology"]
    if override is not None:
        return override  # type: ignore[return-value]
    global _DISCOVERED
    if _DISCOVERED is None:
        _DISCOVERED = discover()
    return _DISCOVERED


def plan_placement(
    topology: NumaTopology, num_workers: int
) -> Tuple[WorkerPlacement, ...]:
    """Round-robin ``num_workers`` pool slots over the topology's nodes."""
    nodes = topology.nodes
    return tuple(
        WorkerPlacement(
            slot=slot,
            node_id=nodes[slot % len(nodes)].node_id,
            cpus=nodes[slot % len(nodes)].cpus,
        )
        for slot in range(max(int(num_workers), 0))
    )


def plan_for(num_workers: int) -> Optional[Tuple[WorkerPlacement, ...]]:
    """The placement plan a pool of ``num_workers`` should use, or None.

    None means "no pinning": the layer is off, the pool is effectively
    serial, or the machine has a single (possibly degenerate) node —
    the clean no-op path, with no warning.
    """
    if numa_mode() == "off" or num_workers <= 1:
        return None
    topology = active_topology()
    if topology.num_nodes <= 1:
        return None
    return plan_placement(topology, num_workers)


def apply_placement(placement: WorkerPlacement) -> bool:
    """Worker-side: pin this process to its assigned node's CPUs.

    Returns True when the pin took. A missing ``sched_setaffinity``
    (macOS) or a ``PermissionError``/``OSError`` (restricted runtimes,
    CPUs outside the machine) warns once per cause and leaves the
    worker unpinned — the placement is still recorded so the roster in
    ``BENCH_perf.json`` shows the degraded state rather than hiding it.
    """
    pinned = False
    setter = getattr(os, "sched_setaffinity", None)
    if setter is None:
        _warn_once(
            "pin-unsupported",
            "os.sched_setaffinity is unavailable on this platform; "
            "workers run unpinned",
        )
    else:
        try:
            setter(0, set(placement.cpus))
            pinned = True
        except PermissionError:
            _warn_once(
                "pin-permission",
                "sched_setaffinity denied (restricted runtime); "
                "workers run unpinned",
            )
        except (OSError, ValueError) as exc:
            _warn_once(
                "pin-failed",
                f"sched_setaffinity to node {placement.node_id} CPUs "
                f"{placement.cpus} failed ({exc}); worker runs unpinned",
            )
    _WORKER.update(
        node=placement.node_id, pinned=pinned, slot=placement.slot
    )
    return pinned


def current_worker_node() -> Optional[int]:
    """The node this (worker) process was placed on, or None."""
    node = _WORKER["node"]
    return int(node) if node is not None else None


def worker_placement() -> Optional[Dict[str, object]]:
    """This worker's placement record to ship home, or None if unplaced."""
    if _WORKER["node"] is None:
        return None
    return {
        "pid": os.getpid(),
        "node": int(_WORKER["node"]),  # type: ignore[arg-type]
        "pinned": bool(_WORKER["pinned"]),
    }


def record_worker(pid: int, node: int, pinned: bool) -> None:
    """Parent-side: remember one worker's reported placement."""
    _WORKERS[int(pid)] = {"node": int(node), "pinned": bool(pinned)}


# ----------------------------------------------------------------------
# Shared-memory segment policy (consumed by repro.perf.shm)
# ----------------------------------------------------------------------
def replication_nodes() -> Tuple[int, ...]:
    """Node ids shared-graph exports may replicate across (empty when
    the layer is off or the machine is single-node)."""
    if numa_mode() == "off":
        return ()
    topology = active_topology()
    if topology.num_nodes <= 1:
        return ()
    return topology.node_ids()


def segment_placement(nbytes: int, num_nodes: int) -> str:
    """``"replicate"``/``"interleave"``/``"single"`` for one segment.

    ``auto`` replicates above the size threshold and interleaves below
    it; ``replicate``/``interleave`` force their policy; anything with
    fewer than two nodes is ``"single"`` (one plain segment).
    """
    mode = numa_mode()
    if mode == "off" or num_nodes <= 1:
        return "single"
    if mode == "replicate":
        return "replicate"
    if mode == "interleave":
        return "interleave"
    threshold = int(_CONFIG["replicate_threshold"])  # type: ignore[arg-type]
    return "replicate" if nbytes >= threshold else "interleave"


def replicate_threshold() -> int:
    """The active replicate-vs-interleave size threshold, in bytes."""
    return int(_CONFIG["replicate_threshold"])  # type: ignore[arg-type]


#: Parent-side record of the last adaptive-threshold update, surfaced
#: via :func:`numa_stats` so reports show *why* the cutoff moved.
_ADAPT: Dict[str, object] = {"adaptations": 0, "from": None, "signal": None}


def adapt_replicate_threshold(shm_counters: Dict[str, int]) -> Optional[int]:
    """Revise the ``auto``-mode replicate cutoff from measured traffic.

    The fixed :data:`REPLICATE_THRESHOLD_BYTES` cutoff guesses where
    replication starts paying off; the shm layer now measures the real
    signal — ``cross_node_reads`` / ``cross_node_read_bytes`` count each
    interleaved-segment attach by a worker pinned off the segment's node,
    scored by segment size (:meth:`repro.perf.shm.SharedGraphRegistry`).
    After a pool run the parent calls this with the folded counters: the
    new cutoff is the average cross-node read volume split across nodes
    (one replica per node amortises that many bytes of remote traffic),
    clamped to [:data:`MIN_REPLICATE_THRESHOLD_BYTES`,
    :data:`REPLICATE_THRESHOLD_BYTES`].

    Inert — returns ``None`` without touching the config — unless the
    mode is ``auto``, the threshold was not pinned explicitly via
    :func:`configure_numa`, the topology is multi-node, and at least one
    cross-node read was observed. Placement is still deterministic: the
    threshold only moves *between* pool runs, never mid-export.
    """
    if numa_mode() != "auto" or _CONFIG["replicate_threshold_overridden"]:
        return None
    if active_topology().num_nodes <= 1:
        return None
    reads = int(shm_counters.get("cross_node_reads", 0) or 0)
    volume = int(shm_counters.get("cross_node_read_bytes", 0) or 0)
    if reads <= 0 or volume <= 0:
        return None
    per_read = volume // reads
    revised = per_read // active_topology().num_nodes
    revised = max(
        MIN_REPLICATE_THRESHOLD_BYTES,
        min(revised, REPLICATE_THRESHOLD_BYTES),
    )
    previous = int(_CONFIG["replicate_threshold"])  # type: ignore[arg-type]
    if revised != previous:
        _ADAPT["from"] = previous
        _ADAPT["adaptations"] = int(_ADAPT["adaptations"]) + 1
        _CONFIG["replicate_threshold"] = revised
    _ADAPT["signal"] = {
        "cross_node_reads": reads,
        "cross_node_read_bytes": volume,
        "bytes_per_read": per_read,
    }
    return revised


# ----------------------------------------------------------------------
# Memory-budgeted worker counts (--jobs 0)
# ----------------------------------------------------------------------
def budgeted_worker_count() -> int:
    """The worker count ``--jobs 0`` should use on this machine.

    Combines each node's usable CPU count with its ``meminfo`` MemTotal:
    a node contributes ``min(len(cpus), memory_bytes //
    worker_memory_bytes)`` workers, so :func:`plan_for`'s round-robin
    never places more workers on a node than its DRAM can back. Nodes
    with unknown memory (no ``meminfo``) are capped by CPUs alone, and
    ``--numa off`` restores the plain CPU count — both keep today's
    behaviour on machines without the sysfs files. Always returns at
    least 1; the per-node arithmetic is recorded for the
    :func:`numa_stats` roster.
    """
    fallback = max(os.cpu_count() or 1, 1)
    _BUDGET.clear()
    if numa_mode() == "off":
        return fallback
    budget = int(_CONFIG["worker_memory_bytes"])  # type: ignore[arg-type]
    total = 0
    for node in active_topology().nodes:
        workers = len(node.cpus)
        if node.memory_bytes is not None:
            workers = min(workers, int(node.memory_bytes // budget))
        _BUDGET[str(node.node_id)] = {
            "cpus": len(node.cpus),
            "memory_bytes": node.memory_bytes,
            "workers": workers,
        }
        total += workers
    return max(total, 1)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def numa_stats() -> Dict[str, object]:
    """Placement stats for ``vcrepro report`` / ``BENCH_perf.json``.

    JSON-plain: mode, topology shape/source, the per-pid worker roster
    (each worker's node and whether the pin took), and per-node worker
    counts.
    """
    topology = active_topology()
    per_node: Dict[str, int] = {}
    pinned = 0
    for record in _WORKERS.values():
        key = str(record["node"])
        per_node[key] = per_node.get(key, 0) + 1
        if record["pinned"]:
            pinned += 1
    return {
        "mode": numa_mode(),
        "nodes": topology.num_nodes,
        "source": topology.source,
        "cpus": len(topology.cpus),
        "workers": {
            str(pid): dict(record) for pid, record in _WORKERS.items()
        },
        "per_node_workers": per_node,
        "workers_pinned": pinned,
        "workers_unpinned": len(_WORKERS) - pinned,
        "worker_budget": {
            node: dict(record) for node, record in _BUDGET.items()
        },
        "replicate_threshold_bytes": replicate_threshold(),
        "replicate_threshold_overridden": bool(
            _CONFIG["replicate_threshold_overridden"]
        ),
        "replicate_threshold_adaptations": int(_ADAPT["adaptations"]),
        "replicate_threshold_signal": (
            dict(_ADAPT["signal"])  # type: ignore[call-overload]
            if _ADAPT["signal"] is not None
            else None
        ),
    }


def reset_numa_state() -> None:
    """Restore defaults and forget placements/warnings (tests, CLI)."""
    global _DISCOVERED
    _CONFIG.update(
        mode="auto",
        topology=None,
        replicate_threshold=REPLICATE_THRESHOLD_BYTES,
        replicate_threshold_overridden=False,
        worker_memory_bytes=DEFAULT_WORKER_MEMORY_BYTES,
    )
    _DISCOVERED = None
    _WARNED.clear()
    _WORKERS.clear()
    _BUDGET.clear()
    _ADAPT.update({"adaptations": 0, "from": None, "signal": None})
    _WORKER.update(node=None, pinned=False, slot=None)
