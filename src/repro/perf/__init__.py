"""Performance subsystem: artifact caching, parallel fan-out, timings.

Three coordinated layers added on top of the simulator:

* :mod:`repro.perf.cache` — a content-addressed artifact cache
  (in-memory LRU + optional on-disk ``.npz`` store) shared by dataset
  instantiation, partitioning, mirror planning, and whole engine runs.
* :mod:`repro.perf.parallel` — ``ProcessPoolExecutor``-backed fan-out
  for independent experiments and ``(engine, batch_count)`` runs, with
  deterministic per-run seeding and graceful serial fallback.
* :mod:`repro.perf.timings` — phase-timing spans (graph-gen /
  partition / kernel / cost-model) surfaced by ``vcrepro report`` and
  dumped as ``BENCH_perf.json``.
* :mod:`repro.perf.numa` — topology discovery, round-robin worker
  pinning and node-local shared-graph placement for the pools
  (``--numa {auto,off,replicate,interleave}``), with named
  :class:`~repro.perf.numa.NumaWarning` fallbacks on platforms that
  cannot pin.
* :mod:`repro.perf.kernel_pool` — the persistent NUMA-pinned thread
  pool for *intra-task* kernel sharding (``--kernel-workers``):
  row-sharded expand/reduce rounds with a deterministic winner-key
  merge, byte-identical to the serial path at any worker count.
"""

from repro.perf import timings
from repro.perf.backoff import BackoffPolicy
from repro.perf.cache import (
    ArtifactCache,
    ArraySerializer,
    clear_cache,
    configure_cache,
    get_cache,
)
from repro.perf.kernel_pool import (
    configure_kernel_workers,
    kernel_pool_stats,
    kernel_workers,
    reset_kernel_pool,
)
from repro.perf.numa import (
    NumaNode,
    NumaTopology,
    NumaWarning,
    configure_numa,
    numa_mode,
    numa_stats,
    reset_numa_state,
)
from repro.perf.parallel import (
    configure_watchdog,
    parallel_map,
    parallel_map_fork,
    resolve_jobs,
    supervision_stats,
)

__all__ = [
    "ArtifactCache",
    "ArraySerializer",
    "BackoffPolicy",
    "configure_watchdog",
    "supervision_stats",
    "NumaNode",
    "NumaTopology",
    "NumaWarning",
    "clear_cache",
    "configure_cache",
    "configure_kernel_workers",
    "configure_numa",
    "get_cache",
    "kernel_pool_stats",
    "kernel_workers",
    "reset_kernel_pool",
    "numa_mode",
    "numa_stats",
    "parallel_map",
    "parallel_map_fork",
    "resolve_jobs",
    "reset_numa_state",
    "timings",
]
