"""Performance subsystem: artifact caching, parallel fan-out, timings.

Three coordinated layers added on top of the simulator:

* :mod:`repro.perf.cache` — a content-addressed artifact cache
  (in-memory LRU + optional on-disk ``.npz`` store) shared by dataset
  instantiation, partitioning, mirror planning, and whole engine runs.
* :mod:`repro.perf.parallel` — ``ProcessPoolExecutor``-backed fan-out
  for independent experiments and ``(engine, batch_count)`` runs, with
  deterministic per-run seeding and graceful serial fallback.
* :mod:`repro.perf.timings` — phase-timing spans (graph-gen /
  partition / kernel / cost-model) surfaced by ``vcrepro report`` and
  dumped as ``BENCH_perf.json``.
"""

from repro.perf import timings
from repro.perf.cache import (
    ArtifactCache,
    ArraySerializer,
    clear_cache,
    configure_cache,
    get_cache,
)
from repro.perf.parallel import parallel_map, parallel_map_fork, resolve_jobs

__all__ = [
    "ArtifactCache",
    "ArraySerializer",
    "clear_cache",
    "configure_cache",
    "get_cache",
    "parallel_map",
    "parallel_map_fork",
    "resolve_jobs",
    "timings",
]
