"""Message accounting: routing policies and combining estimators.

Task kernels produce *per-vertex emission counts* each round; a
:class:`~repro.messages.routing.MessageRouter` (chosen by the engine)
turns them into network/local message splits. Point-to-point engines
route each message along its arc; Pregel+(mirror) broadcasts once per
mirror machine; GraphLab(sync) combines messages that share a
(source, target) pair before they hit the wire.
"""

from repro.messages.routing import (
    BroadcastRouter,
    MessageRouter,
    PointToPointRouter,
    RoutedMessages,
)

__all__ = [
    "MessageRouter",
    "PointToPointRouter",
    "BroadcastRouter",
    "RoutedMessages",
]
