"""Routing policies: how emitted messages split into network vs local.

All routers consume the same input — the ids of vertices that emitted
this round and how many messages (or broadcast blocks) each emitted — and
return a :class:`RoutedMessages` record. They are built once per
(graph, partition) pair from a :class:`~repro.graph.mirrors.MirrorPlan`,
which precomputes each vertex's remote-neighbour and remote-machine
counts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph
from repro.graph.mirrors import MirrorPlan


@dataclass(frozen=True)
class RoutedMessages:
    """Outcome of routing one round's emissions.

    Attributes
    ----------
    network_messages:
        messages that cross machine boundaries (count).
    local_messages:
        messages delivered within a machine (no network cost, but they
        still occupy receive buffers).
    delivered_messages:
        messages arriving at receive sides after any broadcast fan-out —
        what receive buffers and compute work scale with. Equals
        ``network + local`` for point-to-point routing; exceeds it under
        broadcast, where one wire message fans out to many neighbours.
    """

    network_messages: float
    local_messages: float
    delivered_messages: float

    @property
    def wire_messages(self) -> float:
        return self.network_messages + self.local_messages


class MessageRouter(ABC):
    """Strategy object converting per-vertex emissions into routed counts."""

    #: serialized bytes of one wire message under this routing scheme.
    message_bytes: float = 16.0

    @abstractmethod
    def route(
        self, vertex_ids: np.ndarray, emissions: np.ndarray
    ) -> RoutedMessages:
        """Route ``emissions[i]`` messages emitted by ``vertex_ids[i]``."""


class PointToPointRouter(MessageRouter):
    """Each message travels its own arc (Pregel, Giraph, GraphD, GraphLab).

    A message from vertex ``v`` crosses the network with probability
    ``remote_neighbors(v) / degree(v)`` — exact for uniformly random
    neighbour choices (BPPR walks) and the right expectation for
    all-neighbour fan-outs (MSSP/BKHS relaxations, where ``emissions``
    already counts one message per out-arc).
    """

    def __init__(
        self, graph: Graph, plan: MirrorPlan, message_bytes: float = 16.0
    ) -> None:
        degrees = np.diff(graph.indptr).astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            remote_fraction = np.where(
                degrees > 0, plan.remote_neighbors / degrees, 0.0
            )
        self._remote_fraction = remote_fraction
        self.message_bytes = message_bytes

    def route(
        self, vertex_ids: np.ndarray, emissions: np.ndarray
    ) -> RoutedMessages:
        emissions = np.asarray(emissions, dtype=np.float64)
        remote = float((emissions * self._remote_fraction[vertex_ids]).sum())
        total = float(emissions.sum())
        return RoutedMessages(
            network_messages=remote,
            local_messages=total - remote,
            delivered_messages=total,
        )


class BroadcastRouter(MessageRouter):
    """Pregel+(mirror) broadcast routing.

    ``emissions[i]`` counts broadcast *blocks* sent by vertex
    ``vertex_ids[i]`` (one block per unit task group per round). A block
    from a mirrored vertex costs one wire message per remote mirror
    machine; from an unmirrored vertex, one per remote neighbour — plus a
    local delivery per co-located neighbour either way. Every block is
    ultimately delivered to all ``degree(v)`` neighbours, which is what
    receive buffers see.
    """

    def __init__(
        self, graph: Graph, plan: MirrorPlan, message_bytes: float = 24.0
    ) -> None:
        self._network_cost = plan.broadcast_network_messages().astype(
            np.float64
        )
        self._local_cost = plan.local_neighbors.astype(np.float64)
        self._fanout = np.diff(graph.indptr).astype(np.float64)
        self.message_bytes = message_bytes

    def route(
        self, vertex_ids: np.ndarray, emissions: np.ndarray
    ) -> RoutedMessages:
        emissions = np.asarray(emissions, dtype=np.float64)
        network = float((emissions * self._network_cost[vertex_ids]).sum())
        local = float((emissions * self._local_cost[vertex_ids]).sum())
        delivered = float((emissions * self._fanout[vertex_ids]).sum())
        return RoutedMessages(
            network_messages=network,
            local_messages=local,
            delivered_messages=delivered,
        )
