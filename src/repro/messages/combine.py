"""Message-combining estimators.

GraphLab(sync) combines messages sharing a (source, target) pair before
transmission (Section 4.8: "When random walks with the same source need
to move to the same neighbour, they are combined into one message"). The
kernels usually track aggregate walk *mass* per vertex rather than every
(source, neighbour) pair, so the combined count is estimated with the
classic occupancy expectation: throwing ``k`` balls (walk messages) into
``d`` bins (neighbours) per source hits ``d * (1 - (1 - 1/d)^k)``
distinct bins.
"""

from __future__ import annotations

import numpy as np


def expected_occupied_bins(balls: np.ndarray, bins: np.ndarray) -> np.ndarray:
    """Expected number of distinct bins hit by ``balls`` uniform throws.

    Vectorised over aligned arrays; bins of zero yield zero. Uses the
    numerically stable form ``d * -expm1(k * log1p(-1/d))``.
    """
    balls = np.asarray(balls, dtype=np.float64)
    bins = np.asarray(bins, dtype=np.float64)
    balls_b = np.broadcast_to(balls, np.broadcast(balls, bins).shape)
    bins_b = np.broadcast_to(bins, balls_b.shape)
    out = np.zeros(balls_b.shape, dtype=np.float64)
    # A single bin is always fully occupied by any positive throw count.
    single = (bins_b == 1) & (balls_b > 0)
    out[single] = 1.0
    mask = (bins_b > 1) & (balls_b > 0)
    b = bins_b[mask]
    k = balls_b[mask]
    out[mask] = b * -np.expm1(k * np.log1p(-1.0 / b))
    return out


def combined_walk_messages(
    mass_per_vertex: np.ndarray,
    degrees: np.ndarray,
    distinct_sources_per_vertex: float = 1.0,
) -> np.ndarray:
    """Estimate per-vertex wire messages after (source, target) combining.

    ``mass_per_vertex`` is the number of walk messages each vertex emits;
    walks split across ``distinct_sources_per_vertex`` source groups on
    average (combining only merges within a group). The estimate is the
    occupancy expectation per group, summed over groups, and never
    exceeds the uncombined count.
    """
    groups = max(distinct_sources_per_vertex, 1.0)
    per_group = np.asarray(mass_per_vertex, dtype=np.float64) / groups
    combined = groups * expected_occupied_bins(per_group, degrees)
    return np.minimum(combined, mass_per_vertex)
