"""GraphLab in synchronous and asynchronous modes.

GraphLab (Section 2.2) uses the Gather-Apply-Scatter model over an
edge-cut (vertex-cut) partition. The two modes differ exactly where
Section 4.8 locates the sync-vs-async tradeoff:

* **GraphLab(sync)** runs synchronous supersteps with fibers (1000 per
  machine) and *combines* messages sharing a (source, target) pair —
  "when random walks with the same source need to move to the same
  neighbor, they are combined into one message". Combining is why its
  bytes-per-machine stay low under heavy BPPR load (Table 4).

* **GraphLab(async)** removes the barrier — vertex programs fire as
  soon as inputs are ready — but pays a distributed-locking overhead
  that grows with the machine count (no two neighbouring vertices may
  run simultaneously) and cannot combine in-flight messages, so its
  traffic is higher. For light tasks (PageRank) dropping the barrier
  wins; for heavy multi-processing the locking + extra traffic lose.
"""

from __future__ import annotations

from repro.engines.base import EngineProfile
from repro.sim.memory import MemoryModel

_GRAPHLAB_MEMORY = MemoryModel(
    vertex_state_bytes=56.0,
    arc_bytes=10.0,
    message_bytes=16.0,
    buffer_overhead=1.4,
    object_overhead=1.1,
)

GRAPHLAB = EngineProfile(
    name="graphlab",
    cpu_factor=8.0,
    memory=_GRAPHLAB_MEMORY,
    partition_strategy="edge-cut",
    combining=True,
    gas_routing=True,
    aggregated_residual=True,
    barrier_base_seconds=0.02,
    barrier_per_machine_seconds=0.002,
    per_round_overhead_seconds=0.025,
)

GRAPHLAB_ASYNC = EngineProfile(
    name="graphlab(async)",
    cpu_factor=8.0,
    memory=_GRAPHLAB_MEMORY,
    partition_strategy="edge-cut",
    combining=False,
    gas_routing=True,
    aggregated_residual=True,
    barrier_base_seconds=0.0,
    barrier_per_machine_seconds=0.0,
    per_round_overhead_seconds=0.02,
    async_message_factor=1.3,
    lock_ops_per_active_vertex=1.5,
)
