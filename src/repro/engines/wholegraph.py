"""Whole-graph access mode (Section 4.9, Figure 10).

"We can also set up a whole graph access mode, by deploying a VC-system
respectively in each machine. As such, the whole graph can be accessed
within each machine while the workload is partitioned equally across
machines." Modelled consequences:

* no inter-machine messages during computation (everything local);
* every machine stores the *entire* graph — much higher graph state
  memory, so the mode "more easily overloads the machine if the
  workload is not properly divided";
* a final aggregation step ships each machine's partial results to the
  master (the stacked upper bar of Figure 10).
"""

from __future__ import annotations

from repro.engines.base import EngineProfile
from repro.sim.memory import MemoryModel

PREGEL_PLUS_WHOLEGRAPH = EngineProfile(
    name="pregel+(wholegraph)",
    cpu_factor=1.0,
    memory=MemoryModel(
        vertex_state_bytes=48.0,
        arc_bytes=8.0,
        message_bytes=16.0,
        buffer_overhead=1.275,
        object_overhead=1.0,
    ),
    partition_strategy="hash",
    barrier_base_seconds=0.01,
    barrier_per_machine_seconds=0.001,
    per_round_overhead_seconds=0.015,
    whole_graph=True,
)
