"""Giraph and Giraph(async): JVM-based Pregel on Hadoop.

Stock Giraph (Section 2.2) is written in Java on Hadoop MapReduce. The
profile models the JVM's costs relative to Pregel+: slower per-message
processing (``cpu_factor``), object-header memory overhead on vertices,
edges and boxed messages (``object_overhead``), and a heavier per-round
dispatch through the Hadoop machinery.

Giraph(async) decouples message-receiving from message-processing into
separate threads "to partially reduce the synchronization cost across
communication rounds" — modelled as a much cheaper (but non-zero)
barrier, slightly higher dispatch overhead for the extra thread
hand-off, and a small control-message surcharge.
"""

from __future__ import annotations

import dataclasses

from repro.engines.base import EngineProfile
from repro.sim.memory import MemoryModel

_GIRAPH_MEMORY = MemoryModel(
    vertex_state_bytes=64.0,
    arc_bytes=12.0,
    message_bytes=16.0,
    buffer_overhead=1.275,
    # Boxed Writable message/edge objects: ~40 B resident per 8 B wire
    # message in stock Giraph (before Facebook's byte-array work).
    object_overhead=5.0,
)

GIRAPH = EngineProfile(
    name="giraph",
    cpu_factor=2.4,
    memory=_GIRAPH_MEMORY,
    partition_strategy="hash",
    barrier_base_seconds=0.05,
    barrier_per_machine_seconds=0.003,
    per_round_overhead_seconds=0.12,
    per_batch_overhead_seconds=10.0,
)

#: Giraph with Facebook's superstep-splitting optimisation enabled
#: (Section 2.2, improvement iii): message-heavy supersteps run as
#: sub-steps, capping per-step traffic. The threshold is the message
#: volume whose resident footprint fits comfortably in the JVM heap
#: (unscaled count; the engine compares against scaled counts after the
#: cluster scale divides message volumes).
GIRAPH_SPLIT = dataclasses.replace(
    GIRAPH,
    name="giraph(split)",
    superstep_split_threshold_messages=1.5e6,
)


GIRAPH_ASYNC = EngineProfile(
    name="giraph(async)",
    cpu_factor=2.4,
    memory=MemoryModel(
        vertex_state_bytes=64.0,
        arc_bytes=12.0,
        message_bytes=16.0,
        # The decoupled receive thread holds its own queue on top of the
        # processing queue, roughly doubling resident message state.
        buffer_overhead=1.7,
        object_overhead=5.0,
    ),
    partition_strategy="hash",
    barrier_base_seconds=0.02,
    barrier_per_machine_seconds=0.001,
    per_round_overhead_seconds=0.14,
    per_batch_overhead_seconds=10.0,
    async_message_factor=1.05,
)
