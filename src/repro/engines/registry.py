"""Engine registry: name → :class:`SimulatedEngine` factory.

Names match the paper's system labels (case-insensitive; a few aliases
accepted): ``pregel+``, ``pregel+(mirror)``, ``giraph``,
``giraph(async)``, ``graphd``, ``graphlab``, ``graphlab(async)``,
``pregel+(wholegraph)``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.cluster import ClusterSpec
from repro.engines.base import EngineProfile, SimulatedEngine
from repro.engines.giraph import GIRAPH, GIRAPH_ASYNC, GIRAPH_SPLIT
from repro.engines.graphd import GRAPHD, graphd_profile
from repro.engines.graphlab import GRAPHLAB, GRAPHLAB_ASYNC
from repro.engines.mirror import PREGEL_PLUS_MIRROR
from repro.engines.pregelplus import PREGEL_PLUS
from repro.engines.wholegraph import PREGEL_PLUS_WHOLEGRAPH
from repro.errors import UnknownEngineError

_PROFILES: Dict[str, EngineProfile] = {
    "pregel+": PREGEL_PLUS,
    "pregel+(mirror)": PREGEL_PLUS_MIRROR,
    "giraph": GIRAPH,
    "giraph(async)": GIRAPH_ASYNC,
    "giraph(split)": GIRAPH_SPLIT,
    "graphd": GRAPHD,
    "graphlab": GRAPHLAB,
    "graphlab(async)": GRAPHLAB_ASYNC,
    "pregel+(wholegraph)": PREGEL_PLUS_WHOLEGRAPH,
}

_ALIASES: Dict[str, str] = {
    "pregel": "pregel+",
    "pregelplus": "pregel+",
    "pregel+mirror": "pregel+(mirror)",
    "mirror": "pregel+(mirror)",
    "giraph-async": "giraph(async)",
    "giraph_async": "giraph(async)",
    "graphlab-sync": "graphlab",
    "graphlab(sync)": "graphlab",
    "graphlab-async": "graphlab(async)",
    "graphlab_async": "graphlab(async)",
    "wholegraph": "pregel+(wholegraph)",
}

#: Canonical engine names, in the paper's presentation order.
ENGINE_NAMES: List[str] = list(_PROFILES)


def engine_profile(name: str) -> EngineProfile:
    """Look up the :class:`EngineProfile` for a system name."""
    key = name.strip().lower().replace(" ", "")
    key = _ALIASES.get(key, key)
    if key not in _PROFILES:
        known = ", ".join(ENGINE_NAMES)
        raise UnknownEngineError(f"unknown engine {name!r}; known: {known}")
    if key == "graphd":
        # GraphD's modelled spill budget tracks a configured --max-ram
        # (identity with the stock profile when no budget is set).
        return graphd_profile()
    return _PROFILES[key]


def create_engine(name: str, cluster: ClusterSpec) -> SimulatedEngine:
    """Instantiate the named engine on ``cluster``."""
    return SimulatedEngine(cluster, engine_profile(name))
