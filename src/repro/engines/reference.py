"""An honest, single-process Pregel: real message passing, vote-to-halt.

This is the library's pedagogical and validation engine. It implements
the vertex-centric programming model of Section 2.1 *literally*: a user
writes a :class:`VertexProgram` whose ``compute(ctx, messages)`` runs
once per active vertex per superstep, reads incoming messages, mutates
the vertex value, sends messages, and votes to halt. Supersteps proceed
until every vertex is halted and no messages are in flight — exactly
Pregel's termination rule.

It executes everything for real in one process (no simulation, no cost
model) and is deliberately simple rather than fast; the test-suite uses
it to cross-validate the vectorised task kernels on small graphs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.errors import EngineError
from repro.graph.csr import Graph

#: Optional commutative combiner applied to messages per destination.
Combiner = Callable[[Any, Any], Any]


@dataclass
class VertexContext:
    """Per-vertex view handed to ``compute``: state plus send/halt APIs."""

    vertex_id: int
    superstep: int
    graph: Graph = field(repr=False)
    value: Any = None
    _outbox: List = field(default_factory=list, repr=False)
    _halted: bool = False
    _aggregates: Dict[str, Any] = field(default_factory=dict, repr=False)

    def neighbors(self) -> np.ndarray:
        """Out-neighbour ids of this vertex."""
        return self.graph.neighbors(self.vertex_id)

    def edge_weights(self) -> np.ndarray:
        """Weights of this vertex's out-edges (ones if unweighted)."""
        return self.graph.edge_weights(self.vertex_id)

    def send(self, target: int, message: Any) -> None:
        """Send ``message`` to vertex ``target``, delivered next superstep."""
        if not 0 <= target < self.graph.num_vertices:
            raise EngineError(f"send target {target} out of range")
        self._outbox.append((target, message))

    def send_to_neighbors(self, message: Any) -> None:
        """Broadcast ``message`` to every out-neighbour."""
        for target in self.neighbors():
            self._outbox.append((int(target), message))

    def vote_to_halt(self) -> None:
        """Become inactive until a message re-activates this vertex."""
        self._halted = True

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to the named global aggregator."""
        self._aggregates[name] = value


class VertexProgram(ABC):
    """User-defined vertex logic (the paper's ``compute(v)``)."""

    #: optional message combiner (e.g. ``min`` for shortest paths).
    combiner: Optional[Combiner] = None

    @abstractmethod
    def initial_value(self, vertex_id: int, graph: Graph) -> Any:
        """Initial vertex value before superstep 0."""

    @abstractmethod
    def compute(self, ctx: VertexContext, messages: List[Any]) -> None:
        """One superstep of vertex logic; runs only on active vertices."""

    def aggregate_reduce(self, name: str, values: List[Any]) -> Any:
        """Reduce aggregator contributions (default: sum)."""
        return sum(values)


@dataclass
class SuperstepStats:
    """Bookkeeping for one superstep of the reference engine."""

    superstep: int
    active_vertices: int
    messages_sent: int
    messages_after_combining: int


@dataclass
class ReferenceRun:
    """Result of a reference-engine execution."""

    values: List[Any]
    supersteps: int
    stats: List[SuperstepStats]
    aggregates_history: List[Dict[str, Any]]

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)


class LocalPregelEngine:
    """Runs a :class:`VertexProgram` to completion on one process."""

    def __init__(self, graph: Graph, max_supersteps: int = 10_000) -> None:
        self.graph = graph
        self.max_supersteps = int(max_supersteps)

    def run(
        self,
        program: VertexProgram,
        initial_active: Optional[Iterable[int]] = None,
    ) -> ReferenceRun:
        """Execute ``program`` until global quiescence.

        ``initial_active`` restricts which vertices run in superstep 0
        (default: all). A halted vertex is re-activated by any incoming
        message, per the Pregel semantics.
        """
        graph = self.graph
        n = graph.num_vertices
        values: List[Any] = [
            program.initial_value(v, graph) for v in range(n)
        ]
        halted = [False] * n
        if initial_active is not None:
            halted = [True] * n
            for v in initial_active:
                halted[int(v)] = False

        inbox: Dict[int, List[Any]] = defaultdict(list)
        stats: List[SuperstepStats] = []
        aggregates_history: List[Dict[str, Any]] = []

        for superstep in range(self.max_supersteps):
            active = [
                v for v in range(n) if not halted[v] or v in inbox
            ]
            if not active:
                return ReferenceRun(
                    values=values,
                    supersteps=superstep,
                    stats=stats,
                    aggregates_history=aggregates_history,
                )

            outbox: Dict[int, List[Any]] = defaultdict(list)
            raw_sent = 0
            contributions: Dict[str, List[Any]] = defaultdict(list)
            for v in active:
                ctx = VertexContext(
                    vertex_id=v,
                    superstep=superstep,
                    graph=graph,
                    value=values[v],
                )
                program.compute(ctx, inbox.get(v, []))
                values[v] = ctx.value
                halted[v] = ctx._halted
                raw_sent += len(ctx._outbox)
                for target, message in ctx._outbox:
                    outbox[target].append(message)
                for name, contribution in ctx._aggregates.items():
                    contributions[name].append(contribution)

            if program.combiner is not None:
                combined: Dict[int, List[Any]] = {}
                for target, msgs in outbox.items():
                    merged = msgs[0]
                    for msg in msgs[1:]:
                        merged = program.combiner(merged, msg)
                    combined[target] = [merged]
                outbox = combined
            after = sum(len(m) for m in outbox.values())

            aggregates_history.append(
                {
                    name: program.aggregate_reduce(name, vals)
                    for name, vals in contributions.items()
                }
            )
            stats.append(
                SuperstepStats(
                    superstep=superstep,
                    active_vertices=len(active),
                    messages_sent=raw_sent,
                    messages_after_combining=after,
                )
            )
            inbox = outbox

        raise EngineError(
            f"program did not converge within {self.max_supersteps} supersteps"
        )
