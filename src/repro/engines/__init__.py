"""Vertex-centric engines: seven simulated system modes + a reference
message-passing Pregel.

Simulated engines (Section 2.2's systems) execute the real task kernels
and price every round with the cluster cost model:

========================  =====================================================
``pregel+``               C++, point-to-point, synchronous (Pregel+)
``pregel+(mirror)``       broadcast interface + high-degree mirroring
``giraph``                JVM cost/memory factors, Hadoop dispatch overhead
``giraph(async)``         decoupled receive/process threads (partial async)
``graphd``                out-of-core: message spill to disk, disk-bound mode
``graphlab``              GAS + edge-cut + message combining (sync)
``graphlab(async)``       no barrier, distributed locking, no combining
``pregel+(wholegraph)``   graph replicated per machine (Section 4.9)
========================  =====================================================

:class:`~repro.engines.reference.LocalPregelEngine` is an honest
single-process message-passing Pregel (compute(v, msgs), vote-to-halt,
combiners, aggregators) used for validation and pedagogy.
"""

from repro.engines.base import EngineProfile, SimulatedEngine
from repro.engines.reference import LocalPregelEngine, VertexProgram
from repro.engines.registry import ENGINE_NAMES, create_engine

__all__ = [
    "SimulatedEngine",
    "EngineProfile",
    "create_engine",
    "ENGINE_NAMES",
    "LocalPregelEngine",
    "VertexProgram",
]
