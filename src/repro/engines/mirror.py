"""Pregel+(mirror): broadcast interface with high-degree mirroring.

Section 2.2: mirrors of each high-degree vertex are stored on every
machine holding one of its neighbours and act as forwarding proxies, so
a broadcast costs one network message per mirror machine instead of one
per neighbour — "designed to reduce communication costs and eliminate
skew". Section 3 adapts BPPR to the broadcast-only interface with the
generalized *fractional* random walk (one common message per active
vertex per round), which is exactly the expected-mass BPPR kernel.

Consequences modelled here: broadcast routing, larger per-message size
(receiver bookkeeping), mirror copies adding to vertex state, and
strongly damped communication skew.
"""

from __future__ import annotations

from repro.engines.base import EngineProfile
from repro.sim.memory import MemoryModel

PREGEL_PLUS_MIRROR = EngineProfile(
    name="pregel+(mirror)",
    cpu_factor=1.0,
    memory=MemoryModel(
        vertex_state_bytes=48.0,
        arc_bytes=8.0,
        message_bytes=24.0,
        buffer_overhead=1.275,
        object_overhead=1.0,
    ),
    partition_strategy="hash",
    broadcast=True,
    combining=False,
    barrier_base_seconds=0.015,
    barrier_per_machine_seconds=0.0015,
    per_round_overhead_seconds=0.025,
    imbalance_damping=0.3,
    mirror_degree_threshold=100,
)
