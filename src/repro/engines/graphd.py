"""GraphD: out-of-core vertex-centric execution.

GraphD [Yan et al., TPDS'17] keeps vertex states in memory while edges
and messages stream through disk (the "distributed semi-streaming
model", Section 2.2). Modelled consequences (Section 4.4):

* memory is *capped* — buffer demand beyond the configured budget
  spills to disk (written once, read once), so GraphD never thrashes or
  overloads on memory;
* the disk becomes the bottleneck instead: when per-round spill traffic
  saturates disk bandwidth, utilisation hits 100 %, the I/O queue grows,
  and latency rises superlinearly (Table 3);
* C++ implementation — CPU and object factors match Pregel+.
"""

from __future__ import annotations

import dataclasses

from repro.engines.base import EngineProfile
from repro.sim.memory import MemoryModel

GRAPHD = EngineProfile(
    name="graphd",
    cpu_factor=1.05,
    memory=MemoryModel(
        vertex_state_bytes=48.0,
        arc_bytes=8.0,
        message_bytes=16.0,
        buffer_overhead=0.85,
        object_overhead=1.0,
    ),
    partition_strategy="hash",
    barrier_base_seconds=0.015,
    barrier_per_machine_seconds=0.0015,
    per_round_overhead_seconds=0.02,
    per_batch_overhead_seconds=1.0,
    # GraphD's default message-buffer budget (unscaled bytes).
    out_of_core_budget_bytes=140 * 2**20,
)


def graphd_profile() -> EngineProfile:
    """The GraphD profile honouring a configured ``--max-ram`` budget.

    GraphD *is* the paper's out-of-core system, so when the harness
    itself runs under a resident-memory budget (``--max-ram`` /
    ``REPRO_MAX_RAM``, :func:`repro.graph.csr.configure_streaming`),
    the simulated engine's message-buffer cap follows it: the modelled
    spill behaviour then reflects the same budget the block-streaming
    kernels honour. Without a budget the stock :data:`GRAPHD` constant
    is returned unchanged (same object, same modelled results).
    """
    from repro.graph.csr import streaming_budget_bytes

    budget = streaming_budget_bytes()
    if budget is None:
        return GRAPHD
    return dataclasses.replace(
        GRAPHD, out_of_core_budget_bytes=float(budget)
    )
