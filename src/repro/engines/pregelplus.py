"""Pregel+ (basic mode): C++/MPI, point-to-point messages, synchronous.

Pregel+ [Yan et al., WWW'15] is the paper's representative
high-performance VC-system: C++ with MPI transport, random hash vertex
partitioning, synchronous supersteps. The profile uses unit CPU factor
and tight object overheads — the baseline every other profile is
calibrated relative to.
"""

from __future__ import annotations

from repro.engines.base import EngineProfile
from repro.sim.memory import MemoryModel

PREGEL_PLUS = EngineProfile(
    name="pregel+",
    cpu_factor=1.0,
    memory=MemoryModel(
        vertex_state_bytes=48.0,
        arc_bytes=8.0,
        message_bytes=16.0,
        buffer_overhead=1.275,
        object_overhead=1.0,
    ),
    partition_strategy="hash",
    broadcast=False,
    combining=False,
    barrier_base_seconds=0.015,
    barrier_per_machine_seconds=0.0015,
    per_round_overhead_seconds=0.02,
)
