"""The simulated vertex-centric engine.

:class:`SimulatedEngine` drives a task kernel batch-by-batch and
round-by-round, converting each :class:`~repro.tasks.base.RoundSummary`
into a :class:`~repro.sim.cost.RoundLoad` priced by the cluster cost
model. All seven system modes of the paper are instances of this class
with different :class:`EngineProfile` values (plus small behavioural
hooks for spill and routing) — see :mod:`repro.engines.registry`.

The per-round translation implements the paper's accounting:

* wire messages (after optional combining) split into network/local by
  the router; network bytes at the bottleneck machine drive the
  congestion model;
* per-machine memory peaks = graph state + message buffers + in-flight
  task state + residual memory of *all previous batches* plus the
  current batch's accumulated results — reproducing Section 4.5's
  observation that residual and message peaks coincide from the second
  batch onwards;
* out-of-core engines spill buffer demand beyond their memory budget to
  disk instead of thrashing (Section 4.4);
* asynchronous engines drop the barrier but pay locking overhead that
  grows with the machine count and do not combine messages
  (Section 4.8).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.errors import (
    BatchingError,
    ConfigurationError,
    EngineError,
    OverloadError,
)
from repro.faults.plan import FaultKind, FaultPlan
from repro.graph.arena import ScratchArena
from repro.graph.csr import Graph
from repro.graph.mirrors import MirrorPlan, build_mirror_plan
from repro.graph.partition import Partition, partition_graph
from repro.messages.routing import (
    BroadcastRouter,
    MessageRouter,
    PointToPointRouter,
)
from repro.perf import timings
from repro.perf.cache import get_cache
from repro.rng import SeedLike, make_rng
from repro.sim.cost import CostModel, RoundLoad
from repro.sim.memory import MemoryModel
from repro.sim.metrics import (
    JOB_SERIALIZER,
    BatchMetrics,
    JobMetrics,
    RoundMetrics,
    clone_job,
)
from repro.sim.overload import OverloadPolicy
from repro.tasks.base import RoundSummary, TaskSpec
from repro.units import OVERLOAD_CUTOFF_SECONDS

#: Hard cap on rounds per batch, guarding against non-terminating kernels.
MAX_ROUNDS_PER_BATCH = 5000

#: Fixed coordination cost of writing one checkpoint (barrier piggyback,
#: metadata commit), on top of streaming the state to disk.
CHECKPOINT_BASE_SECONDS = 0.05

#: Asynchronous engines have no superstep barrier to piggyback the
#: checkpoint on; a consistent snapshot needs Chandy-Lamport-style
#: marker coordination, paid as a multiplier on the write cost.
ASYNC_CHECKPOINT_FACTOR = 1.5

#: Base stall when a disk-full event hits an out-of-core spill (space
#: reclamation before the write can be retried), scaled by the event
#: magnitude on top of re-paying the round's disk time.
DISK_FULL_BASE_STALL_SECONDS = 0.5

#: For engines that aggregate results into vertex state (GraphLab's GAS
#: model), the residual per vertex is bounded by the number of distinct
#: endpoint counters a vertex realistically accumulates.
AGGREGATED_ENDPOINTS_PER_VERTEX = 512


@dataclass(frozen=True)
class EngineProfile:
    """Static personality of one VC-system mode.

    The values encode the implementation differences Section 2.2
    catalogues: language (JVM vs C++), synchronisation, combining,
    mirroring, and out-of-core execution.
    """

    name: str
    #: language/runtime multiplier on compute time (C++ 1.0, JVM ~2.4).
    cpu_factor: float = 1.0
    #: vertex/arc/message byte constants and object overheads.
    memory: MemoryModel = field(default_factory=MemoryModel)
    #: partition strategy ("hash" or "edge-cut").
    partition_strategy: str = "hash"
    #: broadcast routing (Pregel+(mirror)) instead of point-to-point.
    broadcast: bool = False
    #: combine messages sharing (source, target) before sending.
    combining: bool = False
    #: synchronisation barrier per round; async engines set near-zero.
    barrier_base_seconds: float = 0.015
    barrier_per_machine_seconds: float = 0.0015
    #: fixed per-round dispatch overhead.
    per_round_overhead_seconds: float = 0.02
    #: fixed per-batch startup cost (task initialisation, buffer setup,
    #: result bookkeeping) — what makes *too many* batches slow even when
    #: each batch is light (Figure 6: W=1024 at 173 s / 178 s / 201 s for
    #: 1 / 2 / 4 batches).
    per_batch_overhead_seconds: float = 2.0
    #: extra multiplier on message count for async control traffic.
    async_message_factor: float = 1.0
    #: locking work units per active vertex per machine (async GAS).
    lock_ops_per_active_vertex: float = 0.0
    #: out-of-core: message-buffer memory budget in (unscaled) bytes;
    #: buffers stream through disk always, and demand beyond the budget
    #: forces extra merge passes. None = in-memory engine.
    out_of_core_budget_bytes: Optional[float] = None
    #: damping applied to partition imbalance (mirroring "eliminates
    #: skew in communication"); 1.0 = no damping.
    imbalance_damping: float = 1.0
    #: GAS replica-sync routing (GraphLab): network traffic scales with
    #: vertex replicas instead of per-edge messages.
    gas_routing: bool = False
    #: GAS engines aggregate task results into per-vertex counters
    #: instead of per-unit lists, capping residual memory.
    aggregated_residual: bool = False
    #: ablation switch: pretend intermediate results occupy no memory
    #: (used by the ablation benchmarks to isolate the residual-memory
    #: mechanism behind Sections 4.5/4.7).
    ignore_residual_memory: bool = False
    #: Facebook-Giraph superstep splitting (Section 2.2: "split a
    #: message-heavy superstep into several sub-steps for message
    #: reduction"): rounds whose wire-message count exceeds this
    #: threshold run as multiple sub-steps, each moving a slice of the
    #: traffic — an in-engine alternative to workload batching. None
    #: disables splitting.
    superstep_split_threshold_messages: "Optional[float]" = None
    #: replicate the whole graph on every machine (Section 4.9 mode).
    whole_graph: bool = False
    #: degree threshold for building mirrors (broadcast engines).
    mirror_degree_threshold: int = 100

    @property
    def is_async(self) -> bool:
        return self.barrier_per_machine_seconds == 0.0

    @property
    def out_of_core(self) -> bool:
        return self.out_of_core_budget_bytes is not None


@dataclass
class BatchCheckpoint:
    """An in-flight batch frozen at a superstep barrier.

    Produced by :meth:`EngineSession.run_batch` when the caller's
    ``should_suspend`` callback fires; consumed by
    :meth:`EngineSession.resume`. The object carries everything the
    round loop needs to continue — the partially-filled
    :class:`BatchMetrics`, the live kernel (residual/frontier state),
    and the crash-rollback window — so a suspend → resume cycle
    replays *nothing* and the finished batch is byte-identical to an
    uninterrupted run.

    Suspension piggybacks on the engine's checkpoint accounting: the
    barrier write costs :meth:`SimulatedEngine._checkpoint_seconds`
    over the last round's peak state, and resuming reads it back at
    the same price. Both charges land on the *session clock* and this
    object's counters, never on the batch's own metrics — the
    suspension is a scheduler artifact, invisible to ``pack_job``.
    """

    batch: BatchMetrics
    workload: float
    kernel: object = field(repr=False, default=None)
    #: next round index to execute when resumed.
    next_round: int = 0
    #: residual bytes of *previous* batches, snapshotted at batch
    #: start so a mid-suspension flush cannot alter resumed rounds.
    residual_prev_bytes: float = 0.0
    #: crash-rollback window (seconds per round since last checkpoint).
    since_checkpoint: List[float] = field(default_factory=list)
    last_checkpoint_cost: Optional[float] = None
    disk_full_pending: float = 0.0
    #: suspension bookkeeping (scheduler-side accounting only).
    suspends: int = 0
    resumes: int = 0
    #: cost of the most recent suspension write — re-paid on restore.
    last_suspend_cost_seconds: float = 0.0
    #: total suspend + restore seconds charged so far.
    suspend_resume_seconds: float = 0.0

    @property
    def rounds_done(self) -> int:
        return len(self.batch.rounds)

    def state_bytes(self) -> float:
        """Checkpointed task state (accumulated results) in bytes."""
        return float(self.kernel.residual_bytes())


@dataclass
class _PreparedGraph:
    """Partition-derived state cached per (graph, cluster) pair."""

    partition: Partition
    plan: MirrorPlan
    router: MessageRouter
    imbalance: float
    max_vertices: float
    max_arcs: float


class EngineSession:
    """A long-lived execution context for one (engine, task family) pair.

    The session is the *pure batch-execution core* of the engine: graph
    partitions, mirror plans, the message router, the scratch arena and
    the RNG stream are prepared once and persist across every batch the
    session runs, along with the accumulated residual memory, elapsed
    simulated time, and the global round counter that fault plans index.

    :meth:`SimulatedEngine.run_job` drives a session over a fixed
    schedule (the legacy offline path); the online scheduler
    (:mod:`repro.sched.service`) drives one batch at a time as unit
    tasks arrive, flushing residual memory between job epochs with
    :meth:`flush_residual`. Both paths execute the *same* code, so a
    degenerate schedule (all tasks pre-queued) reproduces the offline
    runner byte for byte.
    """

    def __init__(
        self,
        engine: "SimulatedEngine",
        task: TaskSpec,
        seed: SeedLike = None,
        *,
        fault_plan: Optional[FaultPlan] = None,
        checkpoint_every: Optional[int] = None,
        initial_residual_bytes: float = 0.0,
        cutoff_seconds: Optional[float] = OVERLOAD_CUTOFF_SECONDS,
    ) -> None:
        if checkpoint_every is not None:
            checkpoint_every = int(checkpoint_every)
            if checkpoint_every <= 0:
                raise ConfigurationError(
                    "checkpoint_every must be a positive round count"
                )
        if initial_residual_bytes < 0:
            raise ConfigurationError(
                "initial_residual_bytes must be non-negative"
            )
        self.engine = engine
        self.task = task
        self.prep = engine._prepare(task)
        self.cost_model = engine._make_cost_model()
        self.rng = make_rng(seed, label=f"{engine.name}/{task.name}")
        # One scratch arena per session: every batch's kernel draws its
        # per-round buffers from the same pool, so the steady state of
        # the superstep loop allocates nothing.
        self.arena = ScratchArena()
        self.fault_plan = fault_plan
        self.checkpoint_every = checkpoint_every
        #: ``None`` disables the offline 6000 s job cutoff — the online
        #: scheduler runs indefinitely, so an absolute elapsed-time stamp
        #: would mislabel every batch past the horizon.
        self.cutoff_seconds = cutoff_seconds
        self.residual_bytes = float(initial_residual_bytes)
        self.elapsed = 0.0
        self.global_round = 0
        self.batches_run = 0
        #: the in-flight batch frozen at a barrier, if any.
        self.suspended: Optional[BatchCheckpoint] = None
        #: optional ask-tell calibrator (DESIGN.md §15): when set by the
        #: scheduler, every completed batch *tells* its observed
        #: (workload, peak, residual, seconds) back so the cost models
        #: keep training online. ``None`` (the default) leaves every
        #: code path untouched — the tell reads finished metrics only
        #: and never touches the RNG stream or the session clock.
        self.calibrator = None
        #: workload completed since the last residual flush — the x
        #: coordinate residual-model tells use (``Mr`` maps *total
        #: processed workload* to leftover bytes).
        self.told_workload = 0.0

    def flush_residual(self) -> float:
        """Release the accumulated residual memory (results emitted to
        the caller) and return the bytes freed.

        The offline path never flushes — residual accumulates until the
        job's final aggregation, reproducing Section 4.5. The online
        scheduler flushes between job epochs when admission control
        reports the residual has eaten the memory budget (backpressure).
        """
        released = self.residual_bytes
        self.residual_bytes = 0.0
        self.told_workload = 0.0
        return released

    def run_batch(self, batch_workload, *, should_suspend=None):
        """Execute one batch of ``batch_workload`` unit tasks.

        Returns the batch's :class:`BatchMetrics`; session state
        (residual memory, elapsed time, round counter, RNG stream)
        advances so the next batch continues exactly where a
        fixed-schedule job would.

        ``should_suspend`` is an optional callback invoked at every
        superstep barrier (after a successful, non-final round) with
        the in-progress :class:`BatchMetrics`. Returning ``True``
        freezes the batch into a :class:`BatchCheckpoint` — which this
        method then returns instead of the metrics — at the cost of
        one checkpoint write charged to the session clock.
        :meth:`resume` continues it later; the eventual result is
        byte-identical to an uninterrupted run.
        """
        if self.suspended is not None:
            raise EngineError(
                "session has a suspended batch; resume() it before "
                "starting a new batch (kernels share the session RNG "
                "stream, so interleaving would change results)"
            )
        if batch_workload <= 0:
            raise BatchingError("batch workload must be positive")
        batch = BatchMetrics(
            batch_index=self.batches_run,
            workload=float(batch_workload),
            residual_memory_bytes=self.residual_bytes,
        )
        kernel = self.task.make_kernel(
            self.prep.router, float(batch_workload), self.rng, arena=self.arena
        )
        batch.startup_seconds = self.engine.profile.per_batch_overhead_seconds
        self.elapsed += batch.startup_seconds
        state = BatchCheckpoint(
            batch=batch,
            workload=float(batch_workload),
            kernel=kernel,
            residual_prev_bytes=self.residual_bytes,
        )
        return self._drive(state, should_suspend)

    def resume(self, *, should_suspend=None):
        """Continue the suspended batch from its barrier checkpoint.

        Restoring reads the suspension checkpoint back (≈ the write
        cost, mirroring crash recovery's restore accounting) before
        the round loop continues. Returns the finished
        :class:`BatchMetrics`, or a new :class:`BatchCheckpoint` if
        ``should_suspend`` fires again.
        """
        state = self.suspended
        if state is None:
            raise EngineError("no suspended batch to resume")
        self.suspended = None
        restore = state.last_suspend_cost_seconds
        state.suspend_resume_seconds += restore
        state.resumes += 1
        self.elapsed += restore
        return self._drive(state, should_suspend)

    def _drive(self, state: BatchCheckpoint, should_suspend=None):
        """Run the superstep loop from ``state`` until the batch
        finishes, overloads, or ``should_suspend`` fires at a barrier.

        This is the engine's only round loop: an uninterrupted
        ``run_batch`` drives it start to finish, so the suspend path
        shares every float operation with the straight-through path.
        """
        engine = self.engine
        batch = state.batch
        kernel = state.kernel
        overloaded = False
        # Rollback window: seconds of the rounds executed since the
        # last checkpoint — what a crash forces the engine to replay.
        since_checkpoint = state.since_checkpoint
        last_checkpoint_cost = state.last_checkpoint_cost
        disk_full_pending = state.disk_full_pending
        for round_index in range(state.next_round, MAX_ROUNDS_PER_BATCH):
            tick = time.perf_counter()
            summary = kernel.step()
            tock = time.perf_counter()
            timings.add("kernel", tock - tick)
            load, splits = engine._round_load(
                self.task, self.prep, summary, state.residual_prev_bytes,
                kernel,
            )
            cost = self.cost_model.round_cost(load)
            timings.add("cost-model", time.perf_counter() - tock)
            if splits > 1:
                cost = _repeat_cost(cost, splits)
            metrics = engine._round_metrics(round_index, load, cost, splits)
            batch.rounds.append(metrics)
            self.elapsed += metrics.seconds
            if cost.overloaded:
                overloaded = True
                batch.overload_reason = "memory"
                break
            since_checkpoint.append(metrics.seconds)
            if self.fault_plan is not None:
                extra, disk_full = engine._apply_faults(
                    self.fault_plan.events_at(self.global_round),
                    batch,
                    metrics,
                    since_checkpoint,
                    last_checkpoint_cost,
                )
                self.elapsed += extra
                disk_full_pending = max(disk_full_pending, disk_full)
            self.global_round += 1
            if (
                self.checkpoint_every
                and not summary.done
                and len(since_checkpoint) >= self.checkpoint_every
            ):
                ckpt_seconds = engine._checkpoint_seconds(
                    metrics.peak_memory_bytes
                )
                if disk_full_pending:
                    # A disk-full event between checkpoints: the
                    # write fails once and is retried after space
                    # reclamation.
                    ckpt_seconds *= 1.0 + disk_full_pending
                    disk_full_pending = 0.0
                batch.checkpoints_written += 1
                batch.checkpoint_seconds += ckpt_seconds
                self.elapsed += ckpt_seconds
                last_checkpoint_cost = ckpt_seconds
                since_checkpoint = []
            if (
                self.cutoff_seconds is not None
                and self.elapsed > self.cutoff_seconds
            ):
                overloaded = True
                batch.overload_reason = "timeout"
                break
            if summary.done:
                break
            if should_suspend is not None and should_suspend(batch):
                # Barrier suspension: checkpoint the bottleneck
                # machine's state (same pricing as a cadence
                # checkpoint over this round's peak) and hand the
                # frozen batch back to the caller. The cost stays on
                # the session clock and the checkpoint object — the
                # batch's own metrics are untouched, so the finished
                # result packs byte-identically.
                suspend_cost = engine._checkpoint_seconds(
                    metrics.peak_memory_bytes
                )
                state.next_round = round_index + 1
                state.since_checkpoint = since_checkpoint
                state.last_checkpoint_cost = last_checkpoint_cost
                state.disk_full_pending = disk_full_pending
                state.suspends += 1
                state.last_suspend_cost_seconds = suspend_cost
                state.suspend_resume_seconds += suspend_cost
                self.elapsed += suspend_cost
                self.suspended = state
                return state
        else:
            raise EngineError(
                f"batch exceeded {MAX_ROUNDS_PER_BATCH} rounds; "
                "kernel did not terminate"
            )
        batch.overloaded = overloaded
        self.residual_bytes += kernel.residual_bytes()
        batch.residual_memory_after_bytes = self.residual_bytes
        self.batches_run += 1
        if self.calibrator is not None and not overloaded:
            self.told_workload += batch.workload
            self.calibrator.tell(
                batch.workload,
                batch.peak_memory_bytes,
                self.residual_bytes,
                batch.seconds,
                done_workload=self.told_workload,
            )
        return batch


class SimulatedEngine:
    """A VC-system mode bound to a cluster, ready to run jobs."""

    def __init__(self, cluster: ClusterSpec, profile: EngineProfile) -> None:
        self.cluster = cluster
        self.profile = profile
        self._prepared: dict = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.profile.name

    def run_job(
        self,
        task: TaskSpec,
        batch_sizes: Sequence[float],
        seed: SeedLike = None,
        *,
        fault_plan: Optional[FaultPlan] = None,
        checkpoint_every: Optional[int] = None,
        on_overload: str = "report",
        initial_residual_bytes: float = 0.0,
    ) -> JobMetrics:
        """Run a multi-processing job split into ``batch_sizes``.

        Batches execute sequentially; the job is marked overloaded (and
        reported at the paper's 6000 s cutoff) if any machine exceeds
        its overload memory limit or the simulated time passes the
        cutoff.

        ``fault_plan`` injects the plan's crash/straggler/message-loss/
        disk-full events round by round (rounds counted consecutively
        across batches). ``checkpoint_every=k`` enables Pregel-style
        checkpointing every ``k`` rounds: checkpoint writes cost
        simulated time, and an injected crash rolls back to the last
        checkpoint instead of the start of the batch — ``JobMetrics``
        records checkpoints written, rounds replayed, and time lost.
        ``on_overload="raise"`` opts out of the paper's
        report-at-cutoff treatment and raises :class:`OverloadError`
        (with machine/peak context) instead. ``initial_residual_bytes``
        seeds the residual-memory accumulator, letting overload
        recovery resume a job behind already-completed batches.
        """
        sizes = [float(s) for s in batch_sizes]
        if not sizes or any(s <= 0 for s in sizes):
            raise BatchingError("batch sizes must be a non-empty positive list")
        if abs(sum(sizes) - task.workload) > 1e-6 * max(task.workload, 1.0):
            raise BatchingError(
                f"batch sizes sum to {sum(sizes):g}, expected workload "
                f"{task.workload:g}"
            )
        if checkpoint_every is not None:
            checkpoint_every = int(checkpoint_every)
            if checkpoint_every <= 0:
                raise ConfigurationError(
                    "checkpoint_every must be a positive round count"
                )
        if on_overload not in ("report", "raise"):
            raise ConfigurationError(
                f"on_overload must be 'report' or 'raise', "
                f"got {on_overload!r}"
            )
        if initial_residual_bytes < 0:
            raise ConfigurationError(
                "initial_residual_bytes must be non-negative"
            )

        # Whole runs are pure functions of (engine profile, cluster,
        # graph content, task settings, batch split, seed): experiment
        # sweeps repeat many identical runs across figures, so memoise
        # them — and persist them to the on-disk store when a cache
        # directory is configured, which makes warm re-runs skip the
        # simulation entirely. Generator seeds carry hidden state and
        # are not cached. Callers get an independent copy so mutating a
        # returned job can never poison the cache.
        if seed is None or isinstance(seed, (int, np.integer)):
            cache_key = (
                "run",
                repr(self.profile),
                repr(self.cluster),
                task.graph.fingerprint,
                task.name,
                float(task.workload),
                float(task.message_bytes),
                float(task.residual_record_bytes),
                repr(sorted(task.params.items())),
                tuple(sizes),
                None if seed is None else int(seed),
                None if fault_plan is None else fault_plan.fingerprint,
                checkpoint_every,
                float(initial_residual_bytes),
            )
            job = get_cache().get_or_build(
                cache_key,
                lambda: self._run_job_uncached(
                    task,
                    sizes,
                    seed,
                    fault_plan=fault_plan,
                    checkpoint_every=checkpoint_every,
                    initial_residual_bytes=initial_residual_bytes,
                ),
                serializer=JOB_SERIALIZER,
            )
            job = clone_job(job)
        else:
            job = self._run_job_uncached(
                task,
                sizes,
                seed,
                fault_plan=fault_plan,
                checkpoint_every=checkpoint_every,
                initial_residual_bytes=initial_residual_bytes,
            )
        if on_overload == "raise" and job.overloaded:
            failed = next(
                b for b in job.batches if b.overloaded and not b.aborted
            )
            machine = self.cluster.scaled_machine
            raise OverloadError(
                f"{self.name}/{task.name} on {self.cluster.name}: batch "
                f"{failed.batch_index} overloaded "
                f"({failed.overload_reason}); peak "
                f"{failed.peak_memory_bytes:.4g} B vs overload limit "
                f"{machine.overload_limit_bytes:.4g} B per machine",
                machine=self.cluster.name,
                peak_memory_bytes=failed.peak_memory_bytes,
                limit_bytes=machine.overload_limit_bytes,
                batch_index=failed.batch_index,
                reason=failed.overload_reason,
            )
        return job

    def run_canonical(self, task: TaskSpec, seed: SeedLike = None) -> JobMetrics:
        """One-batch canonical run of ``task`` — the hermetic execution
        behind the serving tier's result cache.

        A single batch holding the whole workload, no faults, no
        checkpoints, no prior residual: the result is a pure function
        of (engine profile, cluster, graph content, task settings,
        seed), so every caller deriving the same content key gets
        byte-identical metrics. Memoised in the artifact cache like
        every whole run (:meth:`run_job`), which is what lets a cold
        result cache over a warm artifact store skip the simulation.
        """
        return self.run_job(task, [task.workload], seed=seed)

    def open_session(
        self,
        task: TaskSpec,
        seed: SeedLike = None,
        *,
        fault_plan: Optional[FaultPlan] = None,
        checkpoint_every: Optional[int] = None,
        initial_residual_bytes: float = 0.0,
        cutoff_seconds: Optional[float] = OVERLOAD_CUTOFF_SECONDS,
    ) -> EngineSession:
        """Open a reusable :class:`EngineSession` for ``task``.

        The session pins the prepared graph (partition, mirror plan,
        router), the RNG stream, and a shared scratch arena, then runs
        batches one at a time — the building block the online scheduler
        drives. ``cutoff_seconds=None`` disables the offline job
        cutoff for long-lived services.
        """
        return EngineSession(
            self,
            task,
            seed,
            fault_plan=fault_plan,
            checkpoint_every=checkpoint_every,
            initial_residual_bytes=initial_residual_bytes,
            cutoff_seconds=cutoff_seconds,
        )

    def _run_job_uncached(
        self,
        task: TaskSpec,
        sizes: List[float],
        seed: SeedLike,
        fault_plan: Optional[FaultPlan] = None,
        checkpoint_every: Optional[int] = None,
        initial_residual_bytes: float = 0.0,
    ) -> JobMetrics:
        """Drive a fresh session over the fixed ``sizes`` schedule.

        This is the degenerate schedule of the online scheduler: every
        batch pre-planned, executed back to back on one session.
        """
        session = self.open_session(
            task,
            seed,
            fault_plan=fault_plan,
            checkpoint_every=checkpoint_every,
            initial_residual_bytes=initial_residual_bytes,
        )
        job = JobMetrics(
            engine=self.name,
            task=task.name,
            dataset=task.graph.name,
            cluster=self.cluster.name,
            num_machines=self.cluster.num_machines,
            total_workload=task.workload,
            batch_sizes=sizes,
        )
        for batch_workload in sizes:
            batch = session.run_batch(batch_workload)
            job.batches.append(batch)
            if batch.overloaded:
                break

        job.aggregation_seconds = self._aggregation_seconds(
            task, session.residual_bytes
        )
        job.extras.update(session.cost_model.overuse_totals())
        job.extras["residual_memory_bytes"] = session.residual_bytes
        return job

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------
    def _prepare(self, task: TaskSpec) -> _PreparedGraph:
        # Keyed by graph identity *and* the task's wire message size: the
        # router inside the prep carries ``task.message_bytes``, so two
        # kinds on one graph must not share a prep or whichever prepares
        # first would donate its message size to the other (making the
        # cost of a batch depend on preparation order — e.g. on whether
        # probe training ran before the first serve batch). The heavy
        # pieces (partition, mirror plan) are memoised task-independently
        # in the artifact cache, so per-size preps only duplicate the
        # cheap router wrapper.
        key = (id(task.graph), float(task.message_bytes))
        if key in self._prepared:
            return self._prepared[key]
        graph = task.graph
        machines = self.cluster.num_machines

        if self.profile.whole_graph:
            partition = partition_graph(graph, machines, "hash")
            plan = build_mirror_plan(
                graph, partition, self.profile.mirror_degree_threshold
            )
            router: MessageRouter = _LocalOnlyRouter(task.message_bytes)
            imbalance = 1.0
            max_vertices = float(graph.num_vertices)
            max_arcs = float(graph.num_arcs)
        else:
            partition = partition_graph(
                graph, machines, self.profile.partition_strategy
            )
            plan = build_mirror_plan(
                graph, partition, self.profile.mirror_degree_threshold
            )
            if self.profile.broadcast:
                router = BroadcastRouter(
                    graph, plan, message_bytes=task.message_bytes * 1.5
                )
            else:
                router = PointToPointRouter(
                    graph, plan, message_bytes=task.message_bytes
                )
            mean_arcs = max(float(partition.arcs_per_machine.mean()), 1.0)
            raw_imbalance = float(partition.arcs_per_machine.max()) / mean_arcs
            imbalance = 1.0 + (raw_imbalance - 1.0) * self.profile.imbalance_damping
            replication = partition.replication_factor
            max_vertices = float(partition.vertices_per_machine.max()) * replication
            if self.profile.broadcast:
                max_vertices += plan.num_mirrors / machines
            max_arcs = float(partition.arcs_per_machine.max())

        prep = _PreparedGraph(
            partition=partition,
            plan=plan,
            router=router,
            imbalance=imbalance,
            max_vertices=max_vertices,
            max_arcs=max_arcs,
        )
        self._prepared[key] = prep
        return prep

    def _make_cost_model(self) -> CostModel:
        return CostModel(
            machine=self.cluster.scaled_machine,
            network_spec=self.cluster.scaled_network,
            disk_spec=self.cluster.scaled_disk if self.profile.out_of_core else None,
            num_machines=self.cluster.num_machines,
            cpu_factor=self.profile.cpu_factor,
            barrier_base_seconds=self.profile.barrier_base_seconds,
            barrier_per_machine_seconds=self.profile.barrier_per_machine_seconds,
            per_round_overhead_seconds=self.profile.per_round_overhead_seconds,
            overload_policy=OverloadPolicy(),
            memory_capped=self.profile.out_of_core,
        )

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def _checkpoint_seconds(self, state_bytes: float) -> float:
        """Simulated cost of writing one checkpoint.

        Pregel checkpoints vertex values, in-flight messages, and
        aggregator state to persistent storage at a superstep barrier;
        machines write in parallel, so the cost is the bottleneck
        machine's state streamed at the disk's bandwidth plus a fixed
        coordination base. Asynchronous engines pay the snapshot
        coordination factor on top (no barrier to piggyback on).
        """
        disk = self.cluster.scaled_disk
        seconds = (
            CHECKPOINT_BASE_SECONDS
            + disk.seek_overhead_seconds
            + state_bytes / disk.bandwidth_bytes_per_second
        )
        if self.profile.is_async:
            seconds *= ASYNC_CHECKPOINT_FACTOR
        return seconds

    def _apply_faults(
        self,
        events,
        batch: BatchMetrics,
        metrics,
        since_checkpoint: List[float],
        last_checkpoint_cost: Optional[float],
    ) -> "tuple[float, float]":
        """Price this round's injected faults.

        Returns ``(extra_seconds, disk_full_magnitude)`` — the simulated
        time the events cost, and the magnitude of a disk-full event
        that must instead be charged to the next checkpoint write (0.0
        when none). Crash events roll the batch back to the last
        checkpoint: the rounds in ``since_checkpoint`` (including the
        current one, whose work is lost mid-round) are replayed and the
        checkpoint is restored — or, without checkpointing, the batch
        restarts from scratch and pays its startup cost again.
        """
        extra = 0.0
        disk_full_pending = 0.0
        for event in events:
            if event.kind is FaultKind.STRAGGLER:
                # The synchronous barrier makes every machine wait for
                # the slow one; async engines still stall on its locks
                # but less severely (half the slowdown).
                slowdown = max(event.magnitude - 1.0, 0.0)
                if self.profile.is_async:
                    slowdown *= 0.5
                lost = metrics.seconds * slowdown
                batch.fault_events += 1
                batch.fault_seconds += lost
                extra += lost
                batch.fault_log.append(
                    f"{event.describe()}: +{lost:.3f}s barrier wait"
                )
            elif event.kind is FaultKind.MESSAGE_LOSS:
                # The lost fraction of this round's traffic is detected
                # at the barrier and retransmitted.
                lost = metrics.network_seconds * min(event.magnitude, 1.0)
                batch.fault_events += 1
                batch.fault_seconds += lost
                extra += lost
                batch.fault_log.append(
                    f"{event.describe()}: +{lost:.3f}s retransmission"
                )
            elif event.kind is FaultKind.DISK_FULL:
                if metrics.spilled_bytes > 0:
                    lost = (
                        metrics.disk_seconds + DISK_FULL_BASE_STALL_SECONDS
                    ) * event.magnitude
                    batch.fault_events += 1
                    batch.fault_seconds += lost
                    extra += lost
                    batch.fault_log.append(
                        f"{event.describe()}: +{lost:.3f}s spill stall"
                    )
                else:
                    # No spill this round: the event lands on the next
                    # checkpoint write instead (if checkpointing is on).
                    batch.fault_events += 1
                    disk_full_pending = max(
                        disk_full_pending, event.magnitude
                    )
                    batch.fault_log.append(
                        f"{event.describe()}: checkpoint write will retry"
                    )
            elif event.kind is FaultKind.CRASH:
                replay_rounds = len(since_checkpoint)
                if last_checkpoint_cost is not None:
                    # Restoring reads the checkpoint back (≈ the write
                    # cost) before replay starts.
                    restore = last_checkpoint_cost
                else:
                    restore = self.profile.per_batch_overhead_seconds
                lost = sum(since_checkpoint) + restore
                batch.crashes += 1
                batch.rounds_replayed += replay_rounds
                batch.replay_seconds += lost
                extra += lost
                batch.fault_log.append(
                    f"{event.describe()}: replayed {replay_rounds} "
                    f"rounds (+{lost:.3f}s)"
                )
        return extra, disk_full_pending

    # ------------------------------------------------------------------
    # Per-round translation
    # ------------------------------------------------------------------
    def _round_load(
        self,
        task: TaskSpec,
        prep: _PreparedGraph,
        summary: RoundSummary,
        residual_prev_batches: float,
        kernel,
    ) -> RoundLoad:
        machines = self.cluster.num_machines
        profile = self.profile

        routed = summary.routed
        wire = routed.wire_messages
        if profile.combining and summary.combined_messages is not None:
            wire = min(wire, summary.combined_messages)

        # Superstep splitting: slice a message-heavy round into
        # sub-steps so each moves at most the threshold's worth of
        # traffic (memory and congestion see the per-sub-step volume;
        # the round's total cost is the sum over sub-steps).
        splits = 1
        if (
            profile.superstep_split_threshold_messages
            and wire > profile.superstep_split_threshold_messages
        ):
            splits = int(
                np.ceil(wire / profile.superstep_split_threshold_messages)
            )
            wire /= splits
        combine_ratio = wire / routed.wire_messages if routed.wire_messages else 1.0
        # Asynchronous engines with dynamic scheduling skip redundant
        # updates on fixed-point tasks (delta caching); multi-processing
        # tasks get no such discount (factor 1.0).
        update_factor = 1.0
        if profile.is_async:
            update_factor = float(task.params.get("async_update_factor", 1.0))
        network_messages = (
            routed.network_messages
            * combine_ratio
            * profile.async_message_factor
            * update_factor
        ) / splits
        local_messages = (
            routed.local_messages
            * combine_ratio
            * profile.async_message_factor
            * update_factor
        ) / splits
        if profile.gas_routing:
            # GAS over an edge-cut: gathers/scatters run on local edge
            # replicas; only per-replica vertex synchronisation crosses
            # the network — one sync per replica instead of one message
            # per out-edge.
            replication = max(prep.partition.replication_factor, 1.0)
            avg_degree = max(
                task.graph.num_arcs / max(task.graph.num_vertices, 1), 1.0
            )
            gas_factor = min(1.0, (replication - 1.0) / avg_degree)
            network_messages *= gas_factor

        message_bytes = prep.router.message_bytes
        bottleneck_network = network_messages / machines * prep.imbalance
        # In + out at the bottleneck machine.
        bottleneck_bytes = 2.0 * bottleneck_network * message_bytes

        lock_ops = (
            profile.lock_ops_per_active_vertex
            * summary.active_vertices
            * machines
        )
        compute_ops = (
            (summary.compute_ops * update_factor / splits + lock_ops)
            / machines
            * prep.imbalance
        )

        # Memory at the bottleneck machine. Combining shrinks receive
        # buffers by the same ratio it shrinks wire traffic.
        delivered = (
            routed.delivered_messages
            * combine_ratio
            * profile.async_message_factor
            * update_factor
        ) / splits
        buffered_messages = (
            (delivered + network_messages + local_messages)
            / machines
            * prep.imbalance
        )
        residual_current = kernel.residual_bytes()
        residual_total = residual_prev_batches + residual_current
        if profile.ignore_residual_memory:
            residual_total = 0.0
        if profile.aggregated_residual:
            # Vertex-state aggregation bounds residual memory by the
            # number of distinct (vertex, endpoint-bucket) counters.
            cap = (
                task.graph.num_vertices
                * AGGREGATED_ENDPOINTS_PER_VERTEX
                * task.residual_record_bytes
            )
            residual_total = min(residual_total, cap)
        residual_per_machine = residual_total / machines
        task_state_per_machine = (
            summary.task_state_bytes / machines * prep.imbalance
        )
        breakdown = profile.memory.breakdown(
            vertices=prep.max_vertices,
            arcs=prep.max_arcs,
            messages_in=buffered_messages / 2.0,
            messages_out=buffered_messages / 2.0,
            task_state_bytes=task_state_per_machine,
            residual_bytes=residual_per_machine,
            message_bytes=message_bytes,
        )
        peak_memory = breakdown.total

        spilled = 0.0
        if profile.out_of_core:
            # GraphD's distributed semi-streaming model: vertex states
            # stay in memory within a fixed message-buffer budget;
            # message traffic streams through the disk (the buffer
            # footprint already counts each message on both the send and
            # receive side, i.e. one write plus one read). Demand beyond
            # the budget forces extra external-memory merge passes,
            # which is what drives Table 3's >100 % disk utilisation at
            # small batch counts.
            budget = profile.out_of_core_budget_bytes / self.cluster.scale
            demand = breakdown.buffer_bytes
            # External-memory merge passes grow with the log of the
            # overflow ratio (k-way merges), not polynomially.
            ratio = max(1.0, demand / budget)
            amplification = 1.0 + 4.0 * float(np.log(ratio))
            spilled = demand * amplification
            peak_memory = breakdown.graph_bytes + min(
                demand + breakdown.task_state_bytes, budget
            )

        load = RoundLoad(
            network_messages=network_messages,
            local_messages=local_messages,
            bottleneck_bytes=bottleneck_bytes,
            cluster_bytes=network_messages * message_bytes,
            compute_ops=compute_ops,
            peak_memory_bytes=peak_memory,
            spilled_bytes=spilled,
            message_bytes=message_bytes,
        )
        return load, splits

    def _round_metrics(
        self, round_index: int, load, cost, splits: int = 1
    ) -> RoundMetrics:
        return RoundMetrics(
            round_index=round_index,
            network_messages=load.network_messages * splits,
            local_messages=load.local_messages * splits,
            bottleneck_bytes=load.bottleneck_bytes,
            compute_ops=load.compute_ops,
            peak_memory_bytes=load.peak_memory_bytes,
            spilled_bytes=load.spilled_bytes,
            seconds=cost.seconds,
            compute_seconds=cost.compute_seconds,
            network_seconds=cost.network_seconds,
            disk_seconds=cost.disk_seconds,
            barrier_seconds=cost.barrier_seconds,
            thrash_multiplier=cost.thrash_multiplier,
            disk_utilization=cost.disk_utilization,
            io_queue_length=cost.io_queue_length,
            network_saturated=cost.network_saturated,
        )

    def _aggregation_seconds(self, task: TaskSpec, residual_bytes: float) -> float:
        """Final result-aggregation step (significant for whole-graph mode)."""
        if not self.profile.whole_graph:
            return 0.0
        # Every machine ships its partial results to the master.
        bytes_to_move = residual_bytes
        network = self.cluster.scaled_network
        return (
            bytes_to_move / network.bandwidth_bytes_per_second
            + 0.05 * self.cluster.num_machines
        )


def _repeat_cost(cost, splits: int):
    """Total cost of running ``splits`` identical sub-steps."""
    import dataclasses

    return dataclasses.replace(
        cost,
        seconds=cost.seconds * splits,
        compute_seconds=cost.compute_seconds * splits,
        network_seconds=cost.network_seconds * splits,
        disk_seconds=cost.disk_seconds * splits,
        barrier_seconds=cost.barrier_seconds * splits,
        overhead_seconds=cost.overhead_seconds * splits,
    )


class _LocalOnlyRouter(MessageRouter):
    """Whole-graph mode: every message is machine-local."""

    def __init__(self, message_bytes: float) -> None:
        self.message_bytes = message_bytes

    def route(self, vertex_ids: np.ndarray, emissions: np.ndarray):
        from repro.messages.routing import RoutedMessages

        total = float(np.asarray(emissions, dtype=np.float64).sum())
        return RoutedMessages(
            network_messages=0.0,
            local_messages=total,
            delivered_messages=total,
        )
