"""True vertex-centric programs for the reference Pregel engine.

These are direct transcriptions of Section 3's algorithm descriptions
into the :class:`~repro.engines.reference.VertexProgram` API. They run
on :class:`~repro.engines.reference.LocalPregelEngine` and exist to
(a) demonstrate the honest programming model and (b) cross-validate the
vectorised kernels in the test-suite.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from repro.engines.reference import VertexContext, VertexProgram
from repro.graph.csr import Graph
from repro.rng import make_rng


class SSSPProgram(VertexProgram):
    """Single-source shortest paths (the MSSP unit task).

    Vertex value = current best distance. Messages carry candidate
    distances; the ``min`` combiner implements Section 3's in-round
    aggregation ("only the message with the smallest length is
    retained").
    """

    combiner = staticmethod(min)

    def __init__(self, source: int) -> None:
        self.source = source

    def initial_value(self, vertex_id: int, graph: Graph) -> float:
        return 0.0 if vertex_id == self.source else math.inf

    def compute(self, ctx: VertexContext, messages: List[float]) -> None:
        best = min(messages) if messages else math.inf
        if ctx.superstep == 0 and ctx.vertex_id == self.source:
            best = 0.0
        if best < ctx.value:
            ctx.value = best
        elif ctx.superstep > 0:
            ctx.vote_to_halt()
            return
        if math.isfinite(ctx.value):
            for target, weight in zip(ctx.neighbors(), ctx.edge_weights()):
                ctx.send(int(target), ctx.value + float(weight))
        ctx.vote_to_halt()


class MSSPProgram(VertexProgram):
    """Multi-source shortest paths: vertex value maps source → distance.

    Messages are ``(source, distance)`` pairs; the combiner is not used
    because minima must be kept *per source* — compute() aggregates.
    """

    def __init__(self, sources: List[int]) -> None:
        self.sources = list(sources)

    def initial_value(self, vertex_id: int, graph: Graph) -> Dict[int, float]:
        return {s: 0.0 for s in self.sources if s == vertex_id}

    def compute(
        self, ctx: VertexContext, messages: List[tuple]
    ) -> None:
        improved: Dict[int, float] = {}
        if ctx.superstep == 0 and ctx.vertex_id in ctx.value:
            improved = dict(ctx.value)
        for source, distance in messages:
            current = ctx.value.get(source, math.inf)
            if distance < current:
                ctx.value[source] = distance
                prior = improved.get(source, math.inf)
                improved[source] = min(prior, distance)
        for source, distance in improved.items():
            for target, weight in zip(ctx.neighbors(), ctx.edge_weights()):
                ctx.send(int(target), (source, distance + float(weight)))
        ctx.vote_to_halt()


class KHopProgram(VertexProgram):
    """Batch k-hop search: vertex value = set of sources that reach it.

    The program self-terminates after ``k + 1`` supersteps as Section 3
    prescribes.
    """

    def __init__(self, sources: List[int], k: int) -> None:
        self.sources = set(int(s) for s in sources)
        self.k = int(k)

    def initial_value(self, vertex_id: int, graph: Graph) -> set:
        return {vertex_id} if vertex_id in self.sources else set()

    def compute(self, ctx: VertexContext, messages: List[int]) -> None:
        if ctx.superstep > self.k:
            ctx.vote_to_halt()
            return
        fresh = set()
        if ctx.superstep == 0:
            fresh = set(ctx.value)
        for source in messages:
            if source not in ctx.value:
                ctx.value.add(source)
                fresh.add(source)
        if ctx.superstep < self.k:
            for source in fresh:
                ctx.send_to_neighbors(source)
        ctx.vote_to_halt()


class RandomWalkPPRProgram(VertexProgram):
    """Monte-Carlo BPPR unit module: W α-decay walks from every vertex.

    Vertex value = dict ``source -> stop count`` of walks that stopped
    here. Messages carry walk source ids, one message per in-flight
    walk, exactly as Section 3's Pregel BPPR ("a message, which contains
    the source node ID of the walk, is sent to that selected neighbor").
    """

    def __init__(
        self, walks_per_node: int, alpha: float = 0.15, seed: int = 0
    ) -> None:
        self.walks_per_node = int(walks_per_node)
        self.alpha = float(alpha)
        self.rng = make_rng(seed, label="reference-bppr")

    def initial_value(self, vertex_id: int, graph: Graph) -> Dict[int, int]:
        return {}

    def _step_walks(self, ctx: VertexContext, walk_sources: List[int]) -> None:
        neighbors = ctx.neighbors()
        for source in walk_sources:
            if neighbors.size == 0 or self.rng.random() < self.alpha:
                ctx.value[source] = ctx.value.get(source, 0) + 1
            else:
                target = int(neighbors[self.rng.integers(neighbors.size)])
                ctx.send(target, source)

    def compute(self, ctx: VertexContext, messages: List[int]) -> None:
        if ctx.superstep == 0:
            self._step_walks(
                ctx, [ctx.vertex_id] * self.walks_per_node
            )
        else:
            self._step_walks(ctx, messages)
        ctx.vote_to_halt()


class PageRankProgram(VertexProgram):
    """Classic PageRank for a fixed number of supersteps (Table 4 task)."""

    def __init__(self, damping: float = 0.85, iterations: int = 30) -> None:
        self.damping = float(damping)
        self.iterations = int(iterations)

    combiner = staticmethod(lambda a, b: a + b)

    def initial_value(self, vertex_id: int, graph: Graph) -> float:
        return 1.0 / graph.num_vertices

    def compute(self, ctx: VertexContext, messages: List[float]) -> None:
        n = ctx.graph.num_vertices
        if ctx.superstep > 0:
            incoming = sum(messages)
            ctx.value = (1.0 - self.damping) / n + self.damping * incoming
        if ctx.superstep < self.iterations:
            neighbors = ctx.neighbors()
            if neighbors.size:
                share = ctx.value / neighbors.size
                ctx.send_to_neighbors(share)
        else:
            ctx.vote_to_halt()


def ppr_estimates_from_values(
    values: List[Dict[int, int]], graph: Graph, walks_per_node: int
) -> np.ndarray:
    """Assemble the PPR estimate matrix from RandomWalkPPRProgram output.

    ``values[v]`` holds, per source, how many walks stopped at ``v``;
    the estimate for ``PPR(s, v)`` is that count over ``W``.
    """
    n = graph.num_vertices
    estimates = np.zeros((n, n), dtype=np.float64)
    for stop_vertex, counts in enumerate(values):
        for source, count in counts.items():
            estimates[source, stop_vertex] = count / walks_per_node
    return estimates
