"""Query-based BPPR: the alternative workload setting of Section 4.9.

"It is also natural to set the unit task for BPPR as a PPR query and
the workload as the number of queries. In other words, a batch contains
a subset of source nodes for PPR queries."

:class:`BPPRQueryKernel` reuses the expected-mass machinery of
:class:`~repro.tasks.bppr.BPPRKernel` but seeds walk mass only at the
batch's sampled source nodes (``walks_per_query`` walks each) instead
of at every vertex. Workload = number of queries; large workloads are
sampled and scaled like MSSP's sources.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import Graph
from repro.messages.routing import MessageRouter
from repro.tasks.base import TaskSpec, choose_sources
from repro.tasks.bppr import (
    DEFAULT_ALPHA,
    RESIDUAL_RECORD_BYTES,
    BPPRKernel,
)


class BPPRQueryKernel(BPPRKernel):
    """One batch of PPR queries (workload = number of source queries)."""

    def __init__(
        self,
        graph: Graph,
        router: MessageRouter,
        rng: np.random.Generator,
        walks_per_query: int = 2000,
        alpha: float = DEFAULT_ALPHA,
        sample_limit: Optional[int] = 64,
        max_rounds: int = 10_000,
    ) -> None:
        super().__init__(
            graph,
            router,
            rng,
            alpha=alpha,
            mode="expected",
            track_sources=False,
            max_rounds=max_rounds,
        )
        self.walks_per_query = int(walks_per_query)
        self.sample_limit = sample_limit
        self._query_scale = 1.0
        self._sources = np.empty(0, dtype=np.int64)

    def _initialise(self, workload: float) -> None:
        super()._initialise(workload)
        sampled = choose_sources(
            self.graph, workload, self.sample_limit, self.rng
        )
        self._sources = sampled.sources
        self._query_scale = sampled.scale_factor
        n = self.graph.num_vertices
        # Walk mass only at the sampled query sources (duplicates from
        # with-replacement sampling stack up, as they should).
        # ``np.bincount`` accumulates weights in input order — the same
        # sequence the old ``np.add.at`` scatter used, through the fast
        # buffered loop.
        per_query = float(self.walks_per_query) * self._query_scale
        mass = np.bincount(
            self._sources,
            weights=np.full(self._sources.size, per_query),
            minlength=n,
        )
        self._mass_vec = mass
        self._stopped_vec = np.zeros(n, dtype=np.float64)

    def _distinct_sources_estimate(self) -> float:
        """Source diversity is capped by the batch's query count."""
        base = super()._distinct_sources_estimate()
        return float(min(base, self._sources.size * self._query_scale))

    @property
    def sources(self) -> np.ndarray:
        """The sampled query sources of this batch."""
        return self._sources.copy()


def bppr_query_task(
    graph: Graph,
    workload: float,
    walks_per_query: int = 2000,
    alpha: float = DEFAULT_ALPHA,
    sample_limit: Optional[int] = 64,
    max_rounds: int = 10_000,
) -> TaskSpec:
    """Build the query-based BPPR :class:`TaskSpec`.

    ``workload`` counts PPR queries; each query runs
    ``walks_per_query`` α-decay walks from its source.
    """

    def factory(g, router, batch_workload, rng):
        return BPPRQueryKernel(
            g,
            router,
            rng,
            walks_per_query=walks_per_query,
            alpha=alpha,
            sample_limit=sample_limit,
            max_rounds=max_rounds,
        )

    return TaskSpec(
        name="bppr-query",
        graph=graph,
        workload=workload,
        kernel_factory=factory,
        params={
            "walks_per_query": walks_per_query,
            "alpha": alpha,
            "sample_limit": sample_limit,
        },
        message_bytes=8.0,
        residual_record_bytes=RESIDUAL_RECORD_BYTES,
    )
