"""Classic (global) PageRank — Table 4's light comparison task.

Section 4.8 contrasts GraphLab(sync/async) on PageRank vs BPPR:
"PageRank simply requires every vertex to distribute some portion of the
PageRank value to its neighbors" each round, so its per-round message
count is fixed at the arc count regardless of workload. The kernel runs
standard synchronous power iteration with damping α and uniform
teleport, terminating on an L1 tolerance or an iteration cap.

PageRank is a *single* classic task, not a multi-processing job; its
workload is fixed at 1 and batching it is a no-op (one batch).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TaskError
from repro.graph.csr import Graph, propagate_mass
from repro.messages.routing import MessageRouter
from repro.tasks.base import RoundSummary, TaskKernel, TaskSpec

#: Damping factor (probability of following a link).
DEFAULT_DAMPING = 0.85

#: Bytes per vertex of rank state kept after the run.
RESIDUAL_RECORD_BYTES = 8.0


class PageRankKernel(TaskKernel):
    """Synchronous power-iteration PageRank."""

    def __init__(
        self,
        graph: Graph,
        router: MessageRouter,
        rng: np.random.Generator,
        damping: float = DEFAULT_DAMPING,
        tolerance: float = 1e-8,
        max_iterations: int = 50,
    ) -> None:
        super().__init__(graph, router)
        if not 0.0 < damping < 1.0:
            raise TaskError("damping must lie strictly between 0 and 1")
        if tolerance <= 0:
            raise TaskError("tolerance must be positive")
        self.damping = float(damping)
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.rng = rng
        self._degrees = graph.degrees.astype(np.float64)
        self._dangling = self._degrees == 0

    def _initialise(self, workload: float) -> None:
        n = self.graph.num_vertices
        self._rank = np.full(n, 1.0 / n, dtype=np.float64)

    def _advance(self) -> RoundSummary:
        graph = self.graph
        n = graph.num_vertices
        share = np.divide(
            self._rank,
            self._degrees,
            out=np.zeros_like(self._rank),
            where=self._degrees > 0,
        )
        incoming = propagate_mass(graph, share)
        dangling_mass = float(self._rank[self._dangling].sum())
        new_rank = (
            (1.0 - self.damping) / n
            + self.damping * (incoming + dangling_mass / n)
        )
        delta = float(np.abs(new_rank - self._rank).sum())
        self._rank = new_rank

        active = np.flatnonzero(self._degrees > 0)
        routed = self.route_emissions(
            active,
            blocks_per_vertex=np.ones(active.size, dtype=np.float64),
            point_messages_per_vertex=self._degrees[active],
        )
        done = delta < self.tolerance or self._round >= self.max_iterations
        return RoundSummary(
            routed=routed,
            compute_ops=routed.delivered_messages + n,
            task_state_bytes=float(n) * 8.0,
            active_vertices=float(active.size),
            done=done,
            # One value per (neighbour) pair; already fully combined.
            combined_messages=routed.wire_messages,
        )

    def residual_bytes(self) -> float:
        """The rank vector is the only state kept after the run."""
        return self.graph.num_vertices * RESIDUAL_RECORD_BYTES

    @property
    def result(self) -> np.ndarray:
        """The PageRank vector (sums to 1)."""
        return self._rank.copy()


def pagerank_task(
    graph: Graph,
    workload: float = 1.0,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = 1e-8,
    max_iterations: int = 50,
) -> TaskSpec:
    """Build the PageRank :class:`TaskSpec` (workload fixed at 1)."""

    def factory(g, router, batch_workload, rng):
        return PageRankKernel(
            g,
            router,
            rng,
            damping=damping,
            tolerance=tolerance,
            max_iterations=max_iterations,
        )

    return TaskSpec(
        name="pagerank",
        graph=graph,
        workload=1.0,
        kernel_factory=factory,
        params={
            "damping": damping,
            "tolerance": tolerance,
            "max_iterations": max_iterations,
            # Asynchronous engines with prioritised scheduling skip
            # redundant rank updates (Section 4.8's PageRank advantage).
            "async_update_factor": 0.45,
        },
        message_bytes=12.0,
        residual_record_bytes=RESIDUAL_RECORD_BYTES,
    )
