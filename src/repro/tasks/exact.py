"""Exact reference computations used to validate the task kernels.

These are straightforward single-machine algorithms — no simulation, no
engines — used by the test-suite and examples to check that the
vertex-centric kernels compute the right answers:

* :func:`exact_ppr` — personalized PageRank by dense power iteration
  under the α-decay random-walk semantics (walks absorb at danglings).
* :func:`bfs_distances` / :func:`dijkstra_distances` — single-source
  distances.
* :func:`k_hop_set` — brute-force k-hop reachability.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.errors import TaskError
from repro.graph.csr import Graph, propagate_mass


def exact_ppr(
    graph: Graph,
    source: int,
    alpha: float = 0.15,
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
) -> np.ndarray:
    """Exact PPR(source, ·) under the paper's walk semantics.

    A walk at vertex ``v`` stops with probability α (or with certainty
    when ``v`` is dangling) and otherwise moves to a uniform
    out-neighbour. ``PPR(s, u)`` is the probability the walk stops at
    ``u``. Computed by propagating probability mass until the in-flight
    residue falls below ``tolerance``.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise TaskError(f"source {source} out of range")
    degrees = np.diff(graph.indptr).astype(np.float64)
    dangling = degrees == 0

    mass = np.zeros(n, dtype=np.float64)
    mass[source] = 1.0
    stopped = np.zeros(n, dtype=np.float64)
    for _ in range(max_iterations):
        stop_fraction = np.where(dangling, 1.0, alpha)
        stopped += mass * stop_fraction
        moving = mass * (1.0 - stop_fraction)
        share = np.divide(
            moving, degrees, out=np.zeros_like(moving), where=degrees > 0
        )
        mass = propagate_mass(graph, share)
        if mass.sum() < tolerance:
            break
    stopped += mass  # attribute any tail to its current location
    return stopped


def exact_ppr_matrix(
    graph: Graph, alpha: float = 0.15, tolerance: float = 1e-12
) -> np.ndarray:
    """All-pairs PPR matrix (row s = PPR(s, ·)); small graphs only."""
    if graph.num_vertices > 4096:
        raise TaskError("exact_ppr_matrix is meant for small graphs")
    return np.stack(
        [
            exact_ppr(graph, s, alpha=alpha, tolerance=tolerance)
            for s in range(graph.num_vertices)
        ]
    )


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` (inf where unreachable)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise TaskError(f"source {source} out of range")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for v in frontier:
            for u in graph.neighbors(v):
                if dist[u] == np.inf:
                    dist[u] = level
                    next_frontier.append(int(u))
        frontier = next_frontier
    return dist


def dijkstra_distances(graph: Graph, source: int) -> np.ndarray:
    """Weighted shortest-path distances from ``source``."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise TaskError(f"source {source} out of range")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        weights = graph.edge_weights(v)
        for u, w in zip(graph.neighbors(v), weights):
            nd = d + float(w)
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, int(u)))
    return dist


def shortest_path_distances(graph: Graph, source: int) -> np.ndarray:
    """BFS for unweighted graphs, Dijkstra otherwise."""
    if graph.is_weighted:
        return dijkstra_distances(graph, source)
    return bfs_distances(graph, source)


def k_hop_set(graph: Graph, source: int, k: int) -> np.ndarray:
    """Boolean mask of vertices within ``k`` hops of ``source``."""
    dist = bfs_distances(graph, source)
    return dist <= k


def exact_pagerank(
    graph: Graph,
    damping: float = 0.85,
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
) -> np.ndarray:
    """Reference PageRank with uniform teleport and dangling smoothing."""
    n = graph.num_vertices
    degrees = np.diff(graph.indptr).astype(np.float64)
    dangling = degrees == 0
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        share = np.divide(
            rank, degrees, out=np.zeros_like(rank), where=degrees > 0
        )
        incoming = propagate_mass(graph, share)
        dangling_mass = float(rank[dangling].sum())
        new_rank = (1.0 - damping) / n + damping * (
            incoming + dangling_mass / n
        )
        if np.abs(new_rank - rank).sum() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return rank


def optional_networkx_graph(graph: Graph):
    """Convert to a networkx DiGraph when networkx is available, else None.

    Tests prefer cross-validating against networkx; this helper keeps
    the hard dependency out of the library itself.
    """
    try:
        import networkx as nx
    except ImportError:  # pragma: no cover - depends on environment
        return None
    g: "Optional[object]" = nx.DiGraph()
    for v in range(graph.num_vertices):
        g.add_node(v)
    for src, dst, weight in graph.iter_edges():
        g.add_edge(src, dst, weight=weight)
    return g
