"""Task abstractions shared by all benchmark workloads.

A *multi-processing job* (the paper's term) is a workload ``W`` of unit
tasks — random walks per node for BPPR, source nodes for MSSP/BKHS — that
the batching executor splits into batches. For each batch the engine
instantiates a :class:`TaskKernel` and drives it round by round; the
kernel runs the real algorithm on the full graph and reports a
:class:`RoundSummary` of what it emitted, which the engine prices.

Kernels are deliberately *engine-agnostic*: the engine injects a
:class:`~repro.messages.routing.MessageRouter` so the same kernel serves
point-to-point and broadcast (mirror) engines, matching Section 3's
paired implementations.
"""

from __future__ import annotations

import shutil
import tempfile
import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TaskError
from repro.graph.arena import ScratchArena
from repro.graph.csr import Graph, streaming_budget_bytes
from repro.messages.routing import MessageRouter, RoutedMessages

#: Fraction of the ``--max-ram`` budget one dense state matrix may
#: occupy before :func:`alloc_state_matrix` spills it to a mapped
#: scratch file. Half, because the kernels hold two comparable matrices
#: (``dist`` + ``pair_mask`` / ``visited`` + ``pair_mask``) and the
#: streaming arc blocks need the rest of the budget.
STATE_SPILL_FRACTION = 0.5


def alloc_state_matrix(
    shape: Tuple[int, ...], dtype, fill: Any = None
) -> np.ndarray:
    """A dense kernel-state matrix (``sources × n``), spilled to disk
    when it would blow the ``--max-ram`` budget.

    In-RAM is the default: without a streaming budget, or for matrices
    small against it, this is exactly ``np.full``/``np.zeros``. When the
    matrix alone would exceed :data:`STATE_SPILL_FRACTION` of the
    configured budget, the array is backed by an ``open_memmap`` scratch
    file instead — same dtype, same shape, same initial fill, so every
    subsequent read/scatter produces identical bits; the OS pages the
    cold rows out instead of the process holding them resident. The
    scratch directory is removed when the array is garbage-collected.
    """
    dtype = np.dtype(dtype)
    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    budget = streaming_budget_bytes()
    if budget is None or nbytes <= budget * STATE_SPILL_FRACTION:
        if fill is None or fill == 0:
            return np.zeros(shape, dtype=dtype)
        return np.full(shape, fill, dtype=dtype)
    from repro.perf.memory import record_state_spill

    scratch_dir = tempfile.mkdtemp(prefix="repro-state-")
    arr = np.lib.format.open_memmap(
        f"{scratch_dir}/state.npy", mode="w+", dtype=dtype, shape=shape
    )
    if fill is not None and fill != 0:
        arr[...] = fill
    # open_memmap zero-fills new pages, so fill == 0 needs no pass.
    weakref.finalize(arr, shutil.rmtree, scratch_dir, ignore_errors=True)
    record_state_spill(nbytes)
    return arr


@dataclass
class RoundSummary:
    """What one kernel round emitted, already routed.

    Attributes
    ----------
    routed:
        network/local/delivered message split from the engine's router.
    combined_messages:
        wire messages after (source, target) combining — engines with
        combiners (GraphLab sync) transmit this count instead. ``None``
        means combining does not apply (defaults to the routed count).
    compute_ops:
        work units this round (message handling + vertex updates),
        cluster-wide.
    task_state_bytes:
        cluster-wide in-flight state of the batch (walk bookkeeping,
        frontier bitmaps, distance rows being built).
    active_vertices:
        number of vertices that executed compute() this round.
    done:
        True when the batch finished after this round.
    """

    routed: RoutedMessages
    compute_ops: float
    task_state_bytes: float
    active_vertices: float
    done: bool
    combined_messages: Optional[float] = None

    @property
    def wire_messages(self) -> float:
        return self.routed.wire_messages


class TaskKernel(ABC):
    """One batch of unit tasks executing round-by-round.

    Lifecycle: construct → ``start_batch(workload)`` → repeated
    ``step()`` until a summary with ``done=True`` → read ``result`` /
    ``residual_bytes()``. A kernel instance serves a single batch.
    """

    def __init__(self, graph: Graph, router: MessageRouter) -> None:
        self.graph = graph
        self.router = router
        self.arena = ScratchArena()
        self._shard_arenas: List[ScratchArena] = []
        self._started = False
        self._finished = False
        self._round = 0

    # -- lifecycle ------------------------------------------------------
    def use_arena(self, arena: ScratchArena) -> None:
        """Adopt a shared scratch arena (engine-injected, one per job, so
        batch boundaries reuse the same buffer pool). Must happen before
        :meth:`start_batch`."""
        if self._started:
            raise TaskError("use_arena() must be called before start_batch()")
        self.arena = arena

    def start_batch(self, workload: float) -> None:
        """Initialise the batch for ``workload`` unit tasks."""
        if self._started:
            raise TaskError("kernel already started; kernels are single-use")
        if workload <= 0:
            raise TaskError("batch workload must be positive")
        self._started = True
        self._workload = float(workload)
        self._initialise(float(workload))

    def step(self) -> RoundSummary:
        """Advance one communication round."""
        if not self._started:
            raise TaskError("start_batch() must be called before step()")
        if self._finished:
            raise TaskError("kernel already finished")
        self._round += 1
        summary = self._advance()
        if summary.done:
            self._finished = True
        return summary

    @property
    def round_index(self) -> int:
        return self._round

    @property
    def finished(self) -> bool:
        return self._finished

    # -- helpers for subclasses -----------------------------------------
    def shard_arenas(self, count: int) -> List[ScratchArena]:
        """Per-shard scratch arenas for intra-task parallel rounds.

        Grown lazily and reused round over round, so sharded steady
        state allocates nothing — the same contract as ``self.arena``,
        one pool per shard slot. Shard workers must never share an
        arena (or touch ``self.arena``): the pool free-lists are not
        thread-safe, and per-shard ownership is what keeps them
        contention-free without locks.
        """
        while len(self._shard_arenas) < count:
            self._shard_arenas.append(ScratchArena())
        return self._shard_arenas[:count]

    def route_emissions(
        self,
        vertex_ids: np.ndarray,
        blocks_per_vertex: np.ndarray,
        point_messages_per_vertex: np.ndarray,
    ) -> RoutedMessages:
        """Route this round's emissions through the engine's router.

        Broadcast routers consume *blocks* (one per vertex per unit-task
        group — Section 3's common message to all neighbours);
        point-to-point routers consume individual per-arc messages.
        """
        from repro.messages.routing import BroadcastRouter

        if isinstance(self.router, BroadcastRouter):
            return self.router.route(vertex_ids, blocks_per_vertex)
        return self.router.route(vertex_ids, point_messages_per_vertex)

    # -- subclass hooks ---------------------------------------------------
    @abstractmethod
    def _initialise(self, workload: float) -> None:
        """Set up batch state for ``workload`` unit tasks."""

    @abstractmethod
    def _advance(self) -> RoundSummary:
        """Run one round and summarise it."""

    @abstractmethod
    def residual_bytes(self) -> float:
        """Cluster-wide bytes of results this batch leaves resident for
        final aggregation (the paper's *residual memory*)."""

    @property
    @abstractmethod
    def result(self) -> Any:
        """Task-specific result of the batch (valid once finished)."""


#: Builds a kernel for one batch: (graph, router, batch_workload, rng).
KernelFactory = Callable[
    [Graph, MessageRouter, float, np.random.Generator], TaskKernel
]


@dataclass(frozen=True)
class TaskSpec:
    """A multi-processing job definition.

    ``workload`` follows the paper's units: walks-per-node for BPPR,
    number of source nodes for MSSP/BKHS. ``params`` carries
    task-specific settings (α, k, sampling limits) for reports.
    """

    name: str
    graph: Graph
    workload: float
    kernel_factory: KernelFactory = field(repr=False, compare=False, default=None)  # type: ignore[assignment]
    params: Dict[str, Any] = field(default_factory=dict)
    #: serialized message bytes for point-to-point transport of this task.
    message_bytes: float = 16.0
    #: bytes of one residual record (see kernel.residual_bytes).
    residual_record_bytes: float = 8.0

    def __post_init__(self) -> None:
        if self.workload <= 0:
            raise TaskError("workload must be positive")
        if self.kernel_factory is None:
            raise TaskError("kernel_factory is required")

    def make_kernel(
        self,
        router: MessageRouter,
        batch_workload: float,
        rng: np.random.Generator,
        arena: Optional[ScratchArena] = None,
    ) -> TaskKernel:
        """Instantiate a kernel for one batch of this job.

        ``arena`` (engine-provided) shares one scratch-buffer pool across
        every batch of a job, so steady-state rounds allocate nothing.
        """
        kernel = self.kernel_factory(self.graph, router, batch_workload, rng)
        if arena is not None:
            kernel.use_arena(arena)
        kernel.start_batch(batch_workload)
        return kernel


def choose_sources(
    graph: Graph,
    workload: float,
    sample_limit: Optional[int],
    rng: np.random.Generator,
) -> "SampledSources":
    """Pick the source set for a source-driven batch (MSSP/BKHS).

    The paper's workload for these tasks is the *number of source nodes*.
    When ``workload`` exceeds ``sample_limit``, only ``sample_limit``
    distinct sources are simulated and all message/compute counts are
    multiplied by ``workload / sample_limit`` — statistically faithful
    because source costs are i.i.d. draws from the same graph. Results
    are exact for the simulated sources.
    """
    if workload <= 0:
        raise TaskError("workload must be positive")
    count = int(round(workload))
    simulated = count if sample_limit is None else min(count, sample_limit)
    simulated = max(1, min(simulated, graph.num_vertices))
    replace = simulated > graph.num_vertices
    sources = rng.choice(
        graph.num_vertices, size=simulated, replace=replace
    ).astype(np.int64)
    return SampledSources(
        sources=sources, scale_factor=count / simulated, requested=count
    )


@dataclass(frozen=True)
class SampledSources:
    """Source sample plus the count scale factor (see :func:`choose_sources`)."""

    sources: np.ndarray
    scale_factor: float
    requested: int

    @property
    def num_simulated(self) -> int:
        return self.sources.size


def make_task(name: str, graph: Graph, workload: float, **params: Any) -> TaskSpec:
    """Build a :class:`TaskSpec` by task name ("bppr", "mssp", "bkhs",
    "pagerank"); keyword params are forwarded to the task constructor."""
    from repro.tasks.bkhs import bkhs_task
    from repro.tasks.bppr import bppr_task
    from repro.tasks.bppr_query import bppr_query_task
    from repro.tasks.mssp import mssp_task
    from repro.tasks.pagerank import pagerank_task

    factories = {
        "bppr": bppr_task,
        "bppr-query": bppr_query_task,
        "mssp": mssp_task,
        "bkhs": bkhs_task,
        "pagerank": pagerank_task,
    }
    key = name.strip().lower()
    if key not in factories:
        known = ", ".join(sorted(factories))
        raise TaskError(f"unknown task {name!r}; known: {known}")
    return factories[key](graph, workload, **params)
