"""Batch Personalized PageRank (BPPR) kernels.

The paper's BPPR (Sections 2.3, 3) runs ``W`` α-decay random walks from
*every* vertex and estimates ``PPR(s, u)`` as the fraction of ``s``'s
walks that stop at ``u``. Two kernels implement it:

* **expected** (default) — deterministic propagation of walk *mass*:
  each round a fraction α of the in-flight mass stops and the remainder
  splits uniformly over out-neighbours. Message counts equal the
  expected counts of the Monte-Carlo process, and the resulting
  estimates equal exact PPR up to the termination tail, so large paper
  workloads (W = 12288 walks per node) are simulated in seconds. This
  is also *exactly* the generalized fractional walk the paper's
  Pregel-Mirror implementation uses ("the random walk is fractionalized
  according to the number of neighbors"), so the mirror engine shares
  the kernel with broadcast routing.

* **montecarlo** — honest per-walk sampling with a seeded RNG, used by
  tests and small examples to validate the estimator's semantics.

Per-source tracking (``track_sources=True``) maintains the full
(source × vertex) mass matrix and returns true PPR estimates; untracked
mode propagates the aggregate mass vector — message/memory counts are
identical, which is all the cost experiments need.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

import numpy as np

from repro.errors import TaskError
from repro.graph.csr import (
    Graph,
    propagate_mass,
    segment_sum,
    segment_sum_sharded,
)
from repro.messages.routing import MessageRouter
from repro.perf import kernel_pool, timings
from repro.tasks.base import (
    RoundSummary,
    TaskKernel,
    TaskSpec,
    alloc_state_matrix,
)

#: The α-decay parameter; 0.15 is the PageRank-standard choice.
DEFAULT_ALPHA = 0.15

#: Expected-mode rounds end once the surviving cluster-wide walk mass
#: drops below this (less than one walk outstanding).
MASS_EPSILON = 1.0

#: Bytes to record one terminated walk's ending node (Section 5: "we
#: need to store the ending nodes of every random walk computed in each
#: batch"): an 8-byte node id plus amortised list overhead.
RESIDUAL_RECORD_BYTES = 12.0

#: Bytes of in-flight bookkeeping per active walk beyond the message
#: buffers. In Pregel-style BPPR a walk *is* its message, so the buffers
#: (already accounted by the engine) carry the whole in-flight state.
WALK_STATE_BYTES = 0.0


class BPPRKernel(TaskKernel):
    """One batch of BPPR: ``workload`` α-decay walks from every vertex."""

    def __init__(
        self,
        graph: Graph,
        router: MessageRouter,
        rng: np.random.Generator,
        alpha: float = DEFAULT_ALPHA,
        mode: str = "expected",
        track_sources: bool = False,
        max_rounds: int = 10_000,
    ) -> None:
        super().__init__(graph, router)
        if not 0.0 < alpha < 1.0:
            raise TaskError("alpha must lie strictly between 0 and 1")
        if mode not in ("expected", "montecarlo"):
            raise TaskError(f"unknown BPPR mode {mode!r}")
        if mode == "montecarlo" and not track_sources:
            # Walkers carry their source anyway; tracking is free.
            track_sources = True
        self.alpha = float(alpha)
        self.mode = mode
        self.track_sources = bool(track_sources)
        self.max_rounds = int(max_rounds)
        self.rng = rng
        self._degrees = graph.degrees.astype(np.float64)
        self._dangling = self._degrees == 0
        self._stops_total = 0.0
        nonzero = self._degrees[self._degrees > 0]
        self._avg_degree = float(nonzero.mean()) if nonzero.size else 1.0

    def _distinct_sources_estimate(self) -> float:
        """Expected distinct walk *sources* present at a vertex this round.

        Walks reaching ``v`` at round ``r`` started within ``r - 1`` hops,
        so the source diversity grows like the neighbourhood size,
        ``d_avg^(r-1)``, saturating at ``n``. This bounds both the entry
        count of a broadcast block (mirror mode) and the effectiveness of
        (source, target) message combining (GraphLab sync).
        """
        n = self.graph.num_vertices
        growth = max(self._avg_degree, 1.0) ** max(self._round - 1, 0)
        return float(min(float(n), growth))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _initialise(self, workload: float) -> None:
        n = self.graph.num_vertices
        if self.mode == "expected":
            if self.track_sources:
                if n > 4096:
                    raise TaskError(
                        "track_sources builds an n x n mass matrix; use it "
                        "on graphs with at most 4096 vertices"
                    )
                # mass[s, v]: in-flight walk mass from source s at vertex v.
                self._mass = np.zeros((n, n), dtype=np.float64)
                np.fill_diagonal(self._mass, workload)
                self._stopped = np.zeros((n, n), dtype=np.float64)
                self._transition = self._dense_transition()
            else:
                self._mass_vec = np.full(n, workload, dtype=np.float64)
                self._stopped_vec = np.zeros(n, dtype=np.float64)
                # Tail fast-forward state: once the mass direction
                # stabilises (power iteration converged to the dominant
                # eigenvector), rounds only rescale by a fixed decay.
                self._stable_direction = None
                self._stable_rounds = 0
                self._decay = None
                self._cached_routed = None
                self._cached_combined = None
                self._cached_active_count = 0
        else:
            per_node = int(round(workload))
            if per_node != workload:
                raise TaskError(
                    "montecarlo mode needs an integer walks-per-node workload"
                )
            total = n * per_node
            self._cur = np.repeat(
                np.arange(n, dtype=np.int64), per_node
            )
            self._src = self._cur.copy()
            self._alive = np.ones(total, dtype=bool)
            self._stop_counts = alloc_state_matrix((n, n), np.float64)

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def _advance(self) -> RoundSummary:
        if self.mode == "expected":
            return self._advance_expected()
        return self._advance_montecarlo()

    def _advance_expected(self) -> RoundSummary:
        graph = self.graph
        if not self.track_sources and self._decay is not None:
            return self._advance_stabilized()
        if self.track_sources:
            mass_per_vertex = self._mass.sum(axis=0)
        else:
            mass_per_vertex = self._mass_vec

        # Stop phase: α of everything, plus all mass stranded on
        # dangling vertices (a walk with no out-edge terminates).
        stop_fraction = np.where(self._dangling, 1.0, self.alpha)
        moving_per_vertex = mass_per_vertex * (1.0 - stop_fraction)
        stops_this_round = float(
            (mass_per_vertex * stop_fraction).sum()
        )
        self._stops_total += stops_this_round

        active = np.flatnonzero(moving_per_vertex > 0)
        # A broadcast block carries one entry per distinct source with
        # walks at the vertex (Section 3's common message lists, per
        # source, how many walk fractions each neighbour receives).
        sources = self._distinct_sources_estimate()
        blocks = np.minimum(moving_per_vertex[active], sources)
        routed = self.route_emissions(
            active,
            blocks_per_vertex=blocks,
            point_messages_per_vertex=moving_per_vertex[active],
        )
        combined = self._combined_estimate(moving_per_vertex, active, sources)

        # Move phase: uniform split over out-neighbours.
        tick = perf_counter()
        if self.track_sources:
            self._stopped += self._mass * stop_fraction[None, :]
            moving = self._mass * (1.0 - stop_fraction)[None, :]
            self._mass = moving @ self._transition
            remaining = float(self._mass.sum())
        else:
            self._stopped_vec += mass_per_vertex * stop_fraction
            share = np.divide(
                moving_per_vertex,
                self._degrees,
                out=np.zeros_like(moving_per_vertex),
                where=self._degrees > 0,
            )
            self._mass_vec = propagate_mass(graph, share)
            remaining = float(self._mass_vec.sum())
        timings.add("kernel.reduce", perf_counter() - tick)

        if not self.track_sources:
            self._maybe_stabilize(routed, combined, active.size)

        done = remaining < MASS_EPSILON or self._round >= self.max_rounds
        return RoundSummary(
            routed=routed,
            compute_ops=routed.delivered_messages + active.size,
            task_state_bytes=remaining * WALK_STATE_BYTES,
            active_vertices=float(active.size),
            done=done,
            combined_messages=combined,
        )

    def _maybe_stabilize(
        self, routed, combined: float, active_count: int
    ) -> None:
        """Detect convergence of the mass direction (untracked mode).

        The expected-mass recurrence is a damped power iteration; once
        the normalized mass vector stops changing, every further round
        is the previous one scaled by a constant decay factor, so the
        kernel caches one round's accounting and fast-forwards.
        """
        total = float(self._mass_vec.sum())
        if total <= 0:
            return
        direction = self._mass_vec / total
        if self._stable_direction is not None:
            drift = float(
                np.abs(direction - self._stable_direction).sum()
            )
            if drift < 1e-9:
                self._stable_rounds += 1
            else:
                self._stable_rounds = 0
            if self._stable_rounds >= 2 and self._previous_total > 0:
                self._decay = total / self._previous_total
                self._cached_routed = routed
                self._cached_combined = combined
                self._cached_active_count = active_count
                # Exact stationary stop distribution: stops per vertex
                # are mass * stop_fraction, normalized.
                stop_fraction = np.where(self._dangling, 1.0, self.alpha)
                raw = self._mass_vec * stop_fraction
                raw_sum = float(raw.sum())
                self._stable_stop_dist = (
                    raw / raw_sum if raw_sum > 0 else direction
                )
                self._stabilize_round = self._round
        self._stable_direction = direction
        self._previous_total = total

    def _advance_stabilized(self) -> RoundSummary:
        """Fast-forward one tail round by pure rescaling (no O(m) work)."""
        from repro.messages.routing import RoutedMessages

        decay = self._decay
        stops = float(self._mass_vec.sum()) * (1.0 - decay)
        self._stops_total += stops
        self._stopped_vec += self._stable_stop_dist * stops
        self._mass_vec *= decay

        cached = self._cached_routed
        scale = decay ** (self._round - self._stabilize_round)
        routed = RoutedMessages(
            network_messages=cached.network_messages * scale,
            local_messages=cached.local_messages * scale,
            delivered_messages=cached.delivered_messages * scale,
        )
        remaining = float(self._mass_vec.sum())
        done = remaining < MASS_EPSILON or self._round >= self.max_rounds
        return RoundSummary(
            routed=routed,
            compute_ops=routed.delivered_messages
            + self._cached_active_count,
            task_state_bytes=remaining * WALK_STATE_BYTES,
            active_vertices=float(self._cached_active_count),
            done=done,
            combined_messages=self._cached_combined * scale,
        )

    def _advance_montecarlo(self) -> RoundSummary:
        graph = self.graph
        self.arena.new_round()
        alive_idx = np.flatnonzero(self._alive)
        cur = self._cur[alive_idx]

        # Stop phase: α-coin per walk, plus forced stops at danglings.
        stop_draw = self.rng.random(alive_idx.size) < self.alpha
        stop_mask = stop_draw | self._dangling[cur]
        stopping = alive_idx[stop_mask]
        if stopping.size:
            # Segment reduction instead of the unbuffered np.add.at
            # scatter: per-cell counts are exact integers, so summation
            # order cannot change the result — which also licenses the
            # sharded variant below (shard partial counts sum exactly).
            tick = perf_counter()
            shards = (
                kernel_pool.choose_shards(stopping.size)
                if kernel_pool.kernel_workers() > 1
                else 1
            )
            if shards > 1:
                stop_rows, stop_cols, stop_sums = segment_sum_sharded(
                    self._src[stopping],
                    self._cur[stopping],
                    np.ones(stopping.size, dtype=np.float64),
                    self.graph.num_vertices,
                    shards,
                )
            else:
                stop_rows, stop_cols, stop_sums = segment_sum(
                    self._src[stopping],
                    self._cur[stopping],
                    np.ones(stopping.size, dtype=np.float64),
                    self.graph.num_vertices,
                    self.arena,
                )
            self._stop_counts[stop_rows, stop_cols] += stop_sums
            timings.add("kernel.reduce", perf_counter() - tick)
        self._alive[stopping] = False
        self._stops_total += float(stopping.size)

        # Move phase: surviving walks jump to a uniform out-neighbour.
        moving_idx = alive_idx[~stop_mask]
        move_from = self._cur[moving_idx]
        if moving_idx.size:
            offsets = (
                self.rng.random(moving_idx.size)
                * self._degrees[move_from]
            ).astype(np.int64)
            self._cur[moving_idx] = graph.indices[
                graph.indptr[move_from] + offsets
            ]

        emissions = np.bincount(
            move_from, minlength=graph.num_vertices
        ).astype(np.float64)
        active = np.flatnonzero(emissions > 0)
        sources = self._distinct_sources_estimate()
        blocks = np.minimum(emissions[active], sources)
        routed = self.route_emissions(
            active,
            blocks_per_vertex=blocks,
            point_messages_per_vertex=emissions[active],
        )
        combined = self._combined_estimate(emissions, active, sources)

        done = (
            not self._alive.any() or self._round >= self.max_rounds
        )
        return RoundSummary(
            routed=routed,
            compute_ops=routed.delivered_messages + active.size,
            task_state_bytes=float(self._alive.sum()) * WALK_STATE_BYTES,
            active_vertices=float(active.size),
            done=done,
            combined_messages=combined,
        )

    def _dense_transition(self) -> np.ndarray:
        """Dense random-walk transition matrix (tracked mode only).

        Parallel arcs sum their shares per (src, dst) cell; the
        segment reduction's stable sort preserves arc order, so the
        result is bit-identical to the ``np.add.at`` scatter it
        replaces. The matrix is content-keyed in the artifact cache on
        (graph fingerprint, stop probability), so repeated tracked runs
        over the same graph — the query-batching sweeps — skip the
        n x n rebuild; cached copies are read-only and shared.
        """
        from repro.perf.cache import ArraySerializer, get_cache

        key = (
            "bppr-dense-transition",
            self.graph.fingerprint,
            self.alpha,
        )
        serializer = ArraySerializer(
            pack=lambda value: {"transition": value},
            unpack=lambda arrays: arrays["transition"],
        )
        transition = get_cache().get_or_build(
            key, self._build_transition, serializer=serializer
        )
        transition.setflags(write=False)
        return transition

    def _build_transition(self) -> np.ndarray:
        n = self.graph.num_vertices
        transition = np.zeros((n, n), dtype=np.float64)
        arc_src = self.graph.edge_sources()
        share = np.divide(
            1.0,
            self._degrees,
            out=np.zeros_like(self._degrees),
            where=self._degrees > 0,
        )
        if arc_src.size:
            rows, cols, sums = segment_sum(
                arc_src, self.graph.indices, share[arc_src], n
            )
            transition[rows, cols] = sums
        return transition

    def _combined_estimate(
        self,
        emissions_per_vertex: np.ndarray,
        active: np.ndarray,
        distinct_sources: float,
    ) -> float:
        """Wire messages after (source, target) combining (GraphLab sync).

        Combining merges walks sharing both source and next hop, so its
        effectiveness falls as source diversity grows round over round.
        """
        from repro.messages.combine import combined_walk_messages

        if active.size == 0:
            return 0.0
        combined = combined_walk_messages(
            emissions_per_vertex[active],
            self._degrees[active],
            distinct_sources_per_vertex=distinct_sources,
        )
        return float(combined.sum())

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def residual_bytes(self) -> float:
        """Ending-node records kept for final aggregation (Section 5:
        "we need to store the ending nodes of every random walk")."""
        return self._stops_total * RESIDUAL_RECORD_BYTES

    @property
    def result(self):
        """PPR estimates.

        With source tracking: an (n × n) matrix whose row ``s`` estimates
        ``PPR(s, ·)``. Untracked: a length-n vector of aggregate stop
        fractions (the column sums of the tracked matrix / n).
        """
        if self.mode == "montecarlo":
            totals = self._stop_counts.sum(axis=1, keepdims=True)
            with np.errstate(invalid="ignore"):
                return np.where(totals > 0, self._stop_counts / totals, 0.0)
        if self.track_sources:
            totals = (self._stopped + self._mass).sum(axis=1, keepdims=True)
            stopped = self._stopped + self._mass  # attribute the tail
            with np.errstate(invalid="ignore"):
                return np.where(totals > 0, stopped / totals, 0.0)
        total = float(self._stopped_vec.sum() + self._mass_vec.sum())
        if total == 0:
            return np.zeros_like(self._stopped_vec)
        return (self._stopped_vec + self._mass_vec) / total


def bppr_task(
    graph: Graph,
    workload: float,
    alpha: float = DEFAULT_ALPHA,
    mode: str = "expected",
    track_sources: bool = False,
    max_rounds: int = 10_000,
    sample_limit: Optional[int] = None,
) -> TaskSpec:
    """Build the BPPR :class:`TaskSpec`.

    ``workload`` is the number of α-decay random walks started at *each*
    vertex (the paper's BPPR workload unit). ``sample_limit`` is accepted
    for interface symmetry with MSSP/BKHS but unused — BPPR cost does not
    require per-source simulation.
    """

    def factory(g, router, batch_workload, rng):
        return BPPRKernel(
            g,
            router,
            rng,
            alpha=alpha,
            mode=mode,
            track_sources=track_sources,
            max_rounds=max_rounds,
        )

    return TaskSpec(
        name="bppr",
        graph=graph,
        workload=workload,
        kernel_factory=factory,
        params={
            "alpha": alpha,
            "mode": mode,
            "track_sources": track_sources,
            "max_rounds": max_rounds,
        },
        # A walk message carries the walk's source id: 8 bytes on the
        # wire (Figure 6's bytes-per-message calibration).
        message_bytes=8.0,
        residual_record_bytes=RESIDUAL_RECORD_BYTES,
    )
