"""Benchmark multi-processing tasks (Section 2.3 / 3 of the paper).

* :mod:`repro.tasks.bppr` — Batch Personalized PageRank via α-decay
  random walks (Monte-Carlo and expected-mass kernels, plus the
  fractional-push variant for the mirror/broadcast interface).
* :mod:`repro.tasks.mssp` — multi-source shortest path distance queries.
* :mod:`repro.tasks.bkhs` — batch k-hop search.
* :mod:`repro.tasks.pagerank` — classic PageRank (Table 4's light task).
* :mod:`repro.tasks.exact` — exact reference computations for validation.
* :mod:`repro.tasks.vc_programs` — true vertex-centric programs runnable
  on the reference message-passing engine.
"""

from repro.tasks.base import RoundSummary, TaskKernel, TaskSpec, make_task
from repro.tasks.bkhs import BKHSKernel, bkhs_task
from repro.tasks.bppr import BPPRKernel, bppr_task
from repro.tasks.bppr_query import BPPRQueryKernel, bppr_query_task
from repro.tasks.mssp import MSSPKernel, mssp_task
from repro.tasks.pagerank import PageRankKernel, pagerank_task

__all__ = [
    "TaskKernel",
    "TaskSpec",
    "RoundSummary",
    "make_task",
    "BPPRKernel",
    "bppr_task",
    "BPPRQueryKernel",
    "bppr_query_task",
    "MSSPKernel",
    "mssp_task",
    "BKHSKernel",
    "bkhs_task",
    "PageRankKernel",
    "pagerank_task",
]
