"""Multi-Source Shortest Path distance queries (MSSP).

Section 3's Pregel MSSP: messages ``(u, v, d)`` assert a length-``d``
path from source ``u`` to ``v``; per round, a vertex keeps the minimum
per source and relaxes its out-edges. The kernel executes exactly that —
a synchronous multi-source Bellman-Ford — fully vectorised over the
(source, vertex) frontier. Under the mirror/broadcast interface the
per-neighbour message collapses to one ``(u, d)`` broadcast block per
updated (source, vertex) pair, which :meth:`route_emissions` handles.

Workload is the *number of source nodes* (the paper's MSSP unit). For
large workloads, ``sample_limit`` caps how many distinct sources are
simulated and scales all counts — see
:func:`repro.tasks.base.choose_sources`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import Graph
from repro.messages.routing import MessageRouter
from repro.tasks.base import (
    RoundSummary,
    TaskKernel,
    TaskSpec,
    choose_sources,
)

#: Bytes to keep one (source, vertex) final distance.
RESIDUAL_RECORD_BYTES = 8.0

#: Bytes per in-flight frontier entry ((source, vertex, distance) triple).
FRONTIER_ENTRY_BYTES = 12.0


class MSSPKernel(TaskKernel):
    """One batch of single-source shortest-path queries."""

    def __init__(
        self,
        graph: Graph,
        router: MessageRouter,
        rng: np.random.Generator,
        sample_limit: Optional[int] = 64,
        max_rounds: int = 100_000,
    ) -> None:
        super().__init__(graph, router)
        self.rng = rng
        self.sample_limit = sample_limit
        self.max_rounds = int(max_rounds)
        self._degrees = np.diff(graph.indptr).astype(np.int64)

    def _initialise(self, workload: float) -> None:
        sampled = choose_sources(
            self.graph, workload, self.sample_limit, self.rng
        )
        self._sources = sampled.sources
        self._scale = sampled.scale_factor
        n = self.graph.num_vertices
        s = self._sources.size
        self._dist = np.full((s, n), np.inf, dtype=np.float64)
        self._dist[np.arange(s), self._sources] = 0.0
        # Frontier: (source-row, vertex) pairs improved last round.
        self._frontier_rows = np.arange(s, dtype=np.int64)
        self._frontier_verts = self._sources.copy()

    def _advance(self) -> RoundSummary:
        graph = self.graph
        rows, verts = self._frontier_rows, self._frontier_verts

        counts = self._degrees[verts]
        total = int(counts.sum())
        if total == 0:
            return self._summary_for(
                np.empty(0, dtype=np.int64), np.empty(0), done=True
            )

        # Expand every frontier pair to all out-neighbours (CSR gather).
        starts = graph.indptr[verts]
        base = np.repeat(starts, counts)
        shifts = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        arc_pos = base + shifts
        nbr = graph.indices[arc_pos]
        msg_rows = np.repeat(rows, counts)
        step = (
            graph.weights[arc_pos]
            if graph.weights is not None
            else np.ones(total, dtype=np.float64)
        )
        cand = np.repeat(self._dist[rows, verts], counts) + step

        # In-round aggregation: keep the minimum per (source, target).
        before = self._dist[msg_rows, nbr]
        np.minimum.at(self._dist, (msg_rows, nbr), cand)
        after = self._dist[msg_rows, nbr]
        improved = after < before
        if improved.any():
            pair_keys = msg_rows[improved] * np.int64(
                graph.num_vertices
            ) + nbr[improved]
            unique_keys = np.unique(pair_keys)
            self._frontier_rows = (
                unique_keys // graph.num_vertices
            ).astype(np.int64)
            self._frontier_verts = (
                unique_keys % graph.num_vertices
            ).astype(np.int64)
            done = self._round >= self.max_rounds
        else:
            self._frontier_rows = np.empty(0, dtype=np.int64)
            self._frontier_verts = np.empty(0, dtype=np.int64)
            done = True

        # Emission accounting for *this* round's sends.
        updates_per_vertex = np.bincount(
            verts, minlength=graph.num_vertices
        ).astype(np.float64)
        return self._summary_for(verts, updates_per_vertex, done)

    def _summary_for(
        self,
        sending_verts: np.ndarray,
        updates_per_vertex: np.ndarray,
        done: bool,
    ) -> RoundSummary:
        graph = self.graph
        if sending_verts.size == 0:
            routed = self.route_emissions(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
            return RoundSummary(
                routed=routed,
                compute_ops=0.0,
                task_state_bytes=self._state_bytes(),
                active_vertices=0.0,
                done=done,
            )
        active = np.flatnonzero(updates_per_vertex > 0)
        blocks = updates_per_vertex[active] * self._scale
        point = (
            updates_per_vertex[active]
            * self._degrees[active].astype(np.float64)
            * self._scale
        )
        routed = self.route_emissions(active, blocks, point)
        # Combining keeps at most one message per (source, target) pair;
        # in-round duplicates (several paths to the same neighbour in the
        # same round) are rare for distinct arcs, so point count stands.
        return RoundSummary(
            routed=routed,
            compute_ops=routed.delivered_messages + active.size * self._scale,
            task_state_bytes=self._state_bytes(),
            active_vertices=float(active.size) * self._scale,
            done=done,
            combined_messages=routed.wire_messages,
        )

    def _state_bytes(self) -> float:
        """In-flight distance table + frontier for the whole batch."""
        reached = np.isfinite(self._dist).sum()
        return (
            float(reached) * FRONTIER_ENTRY_BYTES
            + float(self._frontier_rows.size) * FRONTIER_ENTRY_BYTES
        ) * self._scale

    def residual_bytes(self) -> float:
        """Final distances stay resident per machine until the job ends."""
        reached = float(np.isfinite(self._dist).sum())
        return reached * RESIDUAL_RECORD_BYTES * self._scale

    @property
    def result(self) -> dict:
        """Map ``source id -> distance vector`` for simulated sources."""
        return {
            int(s): self._dist[i].copy()
            for i, s in enumerate(self._sources)
        }


def mssp_task(
    graph: Graph,
    workload: float,
    sample_limit: Optional[int] = 64,
    max_rounds: int = 100_000,
) -> TaskSpec:
    """Build the MSSP :class:`TaskSpec` (workload = number of sources)."""

    def factory(g, router, batch_workload, rng):
        return MSSPKernel(
            g,
            router,
            rng,
            sample_limit=sample_limit,
            max_rounds=max_rounds,
        )

    return TaskSpec(
        name="mssp",
        graph=graph,
        workload=workload,
        kernel_factory=factory,
        params={"sample_limit": sample_limit},
        message_bytes=20.0,
        residual_record_bytes=RESIDUAL_RECORD_BYTES,
    )
