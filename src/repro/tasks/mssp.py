"""Multi-Source Shortest Path distance queries (MSSP).

Section 3's Pregel MSSP: messages ``(u, v, d)`` assert a length-``d``
path from source ``u`` to ``v``; per round, a vertex keeps the minimum
per source and relaxes its out-edges. The kernel executes exactly that —
a synchronous multi-source Bellman-Ford — fully vectorised over the
(source, vertex) frontier. Under the mirror/broadcast interface the
per-neighbour message collapses to one ``(u, d)`` broadcast block per
updated (source, vertex) pair, which :meth:`route_emissions` handles.

Workload is the *number of source nodes* (the paper's MSSP unit). For
large workloads, ``sample_limit`` caps how many distinct sources are
simulated and scales all counts — see
:func:`repro.tasks.base.choose_sources`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import (
    FrontierScratch,
    Graph,
    dedup_pairs,
    dedup_pairs_dense,
    expand_frontier,
)
from repro.messages.routing import MessageRouter
from repro.tasks.base import (
    RoundSummary,
    TaskKernel,
    TaskSpec,
    choose_sources,
)

#: Bytes to keep one (source, vertex) final distance.
RESIDUAL_RECORD_BYTES = 8.0

#: Bytes per in-flight frontier entry ((source, vertex, distance) triple).
FRONTIER_ENTRY_BYTES = 12.0


class MSSPKernel(TaskKernel):
    """One batch of single-source shortest-path queries."""

    def __init__(
        self,
        graph: Graph,
        router: MessageRouter,
        rng: np.random.Generator,
        sample_limit: Optional[int] = 64,
        max_rounds: int = 100_000,
    ) -> None:
        super().__init__(graph, router)
        self.rng = rng
        self.sample_limit = sample_limit
        self.max_rounds = int(max_rounds)
        self._degrees = graph.degrees
        self._scratch = FrontierScratch()

    def _initialise(self, workload: float) -> None:
        sampled = choose_sources(
            self.graph, workload, self.sample_limit, self.rng
        )
        self._sources = sampled.sources
        self._scale = sampled.scale_factor
        n = self.graph.num_vertices
        s = self._sources.size
        self._dist = np.full((s, n), np.inf, dtype=np.float64)
        self._dist[np.arange(s), self._sources] = 0.0
        self._pair_mask = np.zeros((s, n), dtype=bool)
        # Frontier: (source-row, vertex) pairs improved last round.
        self._frontier_rows = np.arange(s, dtype=np.int64)
        self._frontier_verts = self._sources.copy()

    def _advance(self) -> RoundSummary:
        graph = self.graph
        rows, verts = self._frontier_rows, self._frontier_verts

        # Expand every frontier pair to all out-neighbours (shared
        # CSR gather, scratch arange reused across rounds).
        arc_pos, counts, kept = expand_frontier(graph, verts, self._scratch)
        if arc_pos.size == 0:
            return self._summary_for(
                np.empty(0, dtype=np.int64), np.empty(0), done=True
            )
        src_rows = rows if kept is None else rows[kept]
        src_verts = verts if kept is None else verts[kept]
        nbr = graph.indices[arc_pos]
        msg_rows = np.repeat(src_rows, counts)
        cand = np.repeat(self._dist[src_rows, src_verts], counts)
        if graph.weights is not None:
            cand += graph.weights[arc_pos]
        else:
            cand += 1.0

        # In-round aggregation: keep the minimum per (source, target).
        # Deduplicate the touched cells *first* (the dense scan wins on
        # big frontiers, the sort-based reduction on sparse ones; both
        # emit row-major order), then compare distances only at the
        # unique cells — candidate lists carry many duplicates per cell,
        # so this replaces two candidate-length gathers and a
        # candidate-length boolean index with unique-cell-sized ones.
        if msg_rows.size * 8 >= self._pair_mask.size:
            cell_rows, cell_verts = dedup_pairs_dense(
                msg_rows, nbr, self._pair_mask
            )
        else:
            cell_rows, cell_verts = dedup_pairs(
                msg_rows, nbr, graph.num_vertices
            )
        before = self._dist[cell_rows, cell_verts]
        np.minimum.at(self._dist, (msg_rows, nbr), cand)
        after = self._dist[cell_rows, cell_verts]
        improved = after < before
        if improved.any():
            if improved.all():
                # Every touched cell improved: the unique-cell arrays
                # already are the next frontier.
                self._frontier_rows = cell_rows
                self._frontier_verts = cell_verts
            else:
                self._frontier_rows = cell_rows[improved]
                self._frontier_verts = cell_verts[improved]
            done = self._round >= self.max_rounds
        else:
            self._frontier_rows = np.empty(0, dtype=np.int64)
            self._frontier_verts = np.empty(0, dtype=np.int64)
            done = True

        # Emission accounting for *this* round's sends.
        updates_per_vertex = np.bincount(
            verts, minlength=graph.num_vertices
        ).astype(np.float64)
        return self._summary_for(verts, updates_per_vertex, done)

    def _summary_for(
        self,
        sending_verts: np.ndarray,
        updates_per_vertex: np.ndarray,
        done: bool,
    ) -> RoundSummary:
        graph = self.graph
        if sending_verts.size == 0:
            routed = self.route_emissions(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
            return RoundSummary(
                routed=routed,
                compute_ops=0.0,
                task_state_bytes=self._state_bytes(),
                active_vertices=0.0,
                done=done,
            )
        active = np.flatnonzero(updates_per_vertex > 0)
        blocks = updates_per_vertex[active] * self._scale
        point = (
            updates_per_vertex[active]
            * self._degrees[active].astype(np.float64)
            * self._scale
        )
        routed = self.route_emissions(active, blocks, point)
        # Combining keeps at most one message per (source, target) pair;
        # in-round duplicates (several paths to the same neighbour in the
        # same round) are rare for distinct arcs, so point count stands.
        return RoundSummary(
            routed=routed,
            compute_ops=routed.delivered_messages + active.size * self._scale,
            task_state_bytes=self._state_bytes(),
            active_vertices=float(active.size) * self._scale,
            done=done,
            combined_messages=routed.wire_messages,
        )

    def _state_bytes(self) -> float:
        """In-flight distance table + frontier for the whole batch."""
        reached = np.isfinite(self._dist).sum()
        return (
            float(reached) * FRONTIER_ENTRY_BYTES
            + float(self._frontier_rows.size) * FRONTIER_ENTRY_BYTES
        ) * self._scale

    def residual_bytes(self) -> float:
        """Final distances stay resident per machine until the job ends."""
        reached = float(np.isfinite(self._dist).sum())
        return reached * RESIDUAL_RECORD_BYTES * self._scale

    @property
    def result(self) -> dict:
        """Map ``source id -> distance vector`` for simulated sources."""
        return {
            int(s): self._dist[i].copy()
            for i, s in enumerate(self._sources)
        }


def mssp_task(
    graph: Graph,
    workload: float,
    sample_limit: Optional[int] = 64,
    max_rounds: int = 100_000,
) -> TaskSpec:
    """Build the MSSP :class:`TaskSpec` (workload = number of sources)."""

    def factory(g, router, batch_workload, rng):
        return MSSPKernel(
            g,
            router,
            rng,
            sample_limit=sample_limit,
            max_rounds=max_rounds,
        )

    return TaskSpec(
        name="mssp",
        graph=graph,
        workload=workload,
        kernel_factory=factory,
        params={"sample_limit": sample_limit, "max_rounds": max_rounds},
        message_bytes=20.0,
        residual_record_bytes=RESIDUAL_RECORD_BYTES,
    )
