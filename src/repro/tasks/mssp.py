"""Multi-Source Shortest Path distance queries (MSSP).

Section 3's Pregel MSSP: messages ``(u, v, d)`` assert a length-``d``
path from source ``u`` to ``v``; per round, a vertex keeps the minimum
per source and relaxes its out-edges. The kernel executes exactly that —
a synchronous multi-source Bellman-Ford — fully vectorised over the
(source, vertex) frontier. Under the mirror/broadcast interface the
per-neighbour message collapses to one ``(u, d)`` broadcast block per
updated (source, vertex) pair, which :meth:`route_emissions` handles.

Workload is the *number of source nodes* (the paper's MSSP unit). For
large workloads, ``sample_limit`` caps how many distinct sources are
simulated and scales all counts — see
:func:`repro.tasks.base.choose_sources`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

import numpy as np

from repro.graph.csr import (
    Graph,
    expand_frontier,
    iter_frontier_blocks,
    scatter_min_dense,
    segment_min,
    streaming_block_arcs,
    use_dense_cells,
)
from repro.messages.routing import MessageRouter
from repro.perf import kernel_pool, timings
from repro.tasks.base import (
    RoundSummary,
    TaskKernel,
    TaskSpec,
    alloc_state_matrix,
    choose_sources,
)

#: Bytes to keep one (source, vertex) final distance.
RESIDUAL_RECORD_BYTES = 8.0

#: Bytes per in-flight frontier entry ((source, vertex, distance) triple).
FRONTIER_ENTRY_BYTES = 12.0


class MSSPKernel(TaskKernel):
    """One batch of single-source shortest-path queries."""

    def __init__(
        self,
        graph: Graph,
        router: MessageRouter,
        rng: np.random.Generator,
        sample_limit: Optional[int] = 64,
        max_rounds: int = 100_000,
    ) -> None:
        super().__init__(graph, router)
        self.rng = rng
        self.sample_limit = sample_limit
        self.max_rounds = int(max_rounds)
        self._degrees = graph.degrees

    def _initialise(self, workload: float) -> None:
        sampled = choose_sources(
            self.graph, workload, self.sample_limit, self.rng
        )
        self._sources = sampled.sources
        self._scale = sampled.scale_factor
        n = self.graph.num_vertices
        s = self._sources.size
        self._dist = alloc_state_matrix((s, n), np.float64, np.inf)
        self._dist[np.arange(s), self._sources] = 0.0
        self._pair_mask = alloc_state_matrix((s, n), bool)
        # Frontier: (source-row, vertex) pairs improved last round.
        self._frontier_rows = np.arange(s, dtype=np.int64)
        self._frontier_verts = self._sources.copy()

    def _advance(self) -> RoundSummary:
        graph = self.graph
        block_arcs = streaming_block_arcs(graph)
        if block_arcs is not None:
            return self._advance_streaming(block_arcs)
        if kernel_pool.kernel_workers() > 1:
            shards = kernel_pool.choose_shards(
                int(self._degrees[self._frontier_verts].sum())
            )
            if shards > 1:
                return self._advance_parallel(shards)
        arena = self.arena
        arena.new_round()
        rows, verts = self._frontier_rows, self._frontier_verts

        # Expand every frontier pair to all out-neighbours (shared
        # CSR gather, arena buffers reused across rounds).
        tick = perf_counter()
        arc_pos, counts, kept = expand_frontier(graph, verts, arena)
        if arc_pos.size == 0:
            return self._summary_for(
                np.empty(0, dtype=np.int64), np.empty(0), done=True
            )
        src_rows = rows if kept is None else rows[kept]
        src_verts = verts if kept is None else verts[kept]
        nbr = np.take(graph.indices, arc_pos, out=arena.take(arc_pos.size))
        msg_rows = np.repeat(src_rows, counts)
        cand = np.repeat(self._dist[src_rows, src_verts], counts)
        if graph.weights is not None:
            weights = np.take(
                graph.weights, arc_pos, out=arena.take(arc_pos.size, np.float64)
            )
            cand += weights
        else:
            cand += 1.0
        timings.add("kernel.expand", perf_counter() - tick)

        # In-round aggregation: keep the minimum per (source, target)
        # cell. The strategy pivots on the shared measured crossover
        # (:func:`use_dense_cells`): big frontiers amortise the fused
        # flat-key scatter straight into the distance matrix, sparse
        # ones win with the sort-based segment reduction. Both emit
        # cells in row-major order and both produce bit-identical
        # distance tables (min is order-independent).
        n = graph.num_vertices
        if use_dense_cells(msg_rows.size, self._pair_mask.size):
            tick = perf_counter()
            cells, before, best = scatter_min_dense(
                msg_rows, nbr, cand, self._dist, self._pair_mask, arena
            )
            improved = best < before
            tock = perf_counter()
            timings.add("kernel.reduce", tock - tick)
            # The scatter already wrote the minima in place; only the
            # frontier coordinates remain to be derived.
            if improved.any():
                winners = cells if improved.all() else cells[improved]
                self._frontier_rows = np.floor_divide(
                    winners, np.int64(n), out=arena.take(winners.size)
                )
                self._frontier_verts = np.remainder(
                    winners, np.int64(n), out=arena.take(winners.size)
                )
                done = self._round >= self.max_rounds
            else:
                self._frontier_rows = np.empty(0, dtype=np.int64)
                self._frontier_verts = np.empty(0, dtype=np.int64)
                done = True
            timings.add("kernel.frontier", perf_counter() - tock)
        else:
            tick = perf_counter()
            cell_rows, cell_verts, best = segment_min(
                msg_rows, nbr, cand, n, arena
            )
            current = self._dist[cell_rows, cell_verts]
            improved = best < current
            tock = perf_counter()
            timings.add("kernel.reduce", tock - tick)
            if improved.any():
                if improved.all():
                    # Every touched cell improved: the unique-cell
                    # arrays already are the next frontier
                    # (arena-backed: valid through the next round by
                    # the keepalive contract).
                    self._dist[cell_rows, cell_verts] = best
                    self._frontier_rows = cell_rows
                    self._frontier_verts = cell_verts
                else:
                    improved_rows = cell_rows[improved]
                    improved_verts = cell_verts[improved]
                    self._dist[improved_rows, improved_verts] = best[improved]
                    self._frontier_rows = improved_rows
                    self._frontier_verts = improved_verts
                done = self._round >= self.max_rounds
            else:
                self._frontier_rows = np.empty(0, dtype=np.int64)
                self._frontier_verts = np.empty(0, dtype=np.int64)
                done = True
            timings.add("kernel.frontier", perf_counter() - tock)

        # Emission accounting for *this* round's sends.
        updates_per_vertex = np.bincount(
            verts, minlength=graph.num_vertices
        ).astype(np.float64)
        return self._summary_for(verts, updates_per_vertex, done)

    def _advance_parallel(self, shards: int) -> RoundSummary:
        """Row-sharded round on the intra-task kernel pool.

        The frontier is cut into contiguous shards of roughly equal
        out-degree (:func:`repro.perf.kernel_pool.shard_bounds`); each
        shard expands and segment-reduces into its *own* scratch arena
        against the round-start distance snapshot — no shard writes
        shared state while siblings read — and returns copied winner
        keys + minima. The parent then folds the per-shard minima into
        the distance table with ``np.minimum`` in shard order and
        sort-dedups the winner keys. Bit-identical to the monolithic
        round at any shard count: ``min`` is order-independent and
        exact, a cell improves against the round-start value iff it
        improves overall (so the shard-union *is* the monolithic
        improved set), and the key merge restores row-major frontier
        order — the same winner-key semantics the block-streaming path
        proved out.
        """
        graph = self.graph
        n = graph.num_vertices
        rows, verts = self._frontier_rows, self._frontier_verts
        tick = perf_counter()
        # Snapshot before any scatter: shard K's updates must not feed
        # shard J's candidate values (the monolithic path reads every
        # candidate before writing).
        source_dist = self._dist[rows, verts]
        bounds = [
            (lo, hi)
            for lo, hi in kernel_pool.shard_bounds(
                self._degrees[verts], shards
            )
            if hi > lo
        ]
        arenas = self.shard_arenas(len(bounds))

        def run_shard(lo: int, hi: int, arena) -> object:
            # Thread body: touches only its slice, its arena, and
            # read-only shared state (graph CSR, dist snapshot rows).
            # No timings here — the phase accumulators are not
            # thread-safe; the parent times the whole dispatch.
            blk_rows = rows[lo:hi]
            blk_verts = verts[lo:hi]
            blk_dist = source_dist[lo:hi]
            arena.new_round()
            arc_pos, counts, kept = expand_frontier(graph, blk_verts, arena)
            if arc_pos.size == 0:
                return None
            src_rows = blk_rows if kept is None else blk_rows[kept]
            src_dist = blk_dist if kept is None else blk_dist[kept]
            nbr = np.take(
                graph.indices, arc_pos, out=arena.take(arc_pos.size)
            )
            msg_rows = np.repeat(src_rows, counts)
            cand = np.repeat(src_dist, counts)
            if graph.weights is not None:
                weights = np.take(
                    graph.weights,
                    arc_pos,
                    out=arena.take(arc_pos.size, np.float64),
                )
                cand += weights
            else:
                cand += 1.0
            cell_rows, cell_verts, best = segment_min(
                msg_rows, nbr, cand, n, arena
            )
            current = self._dist[cell_rows, cell_verts]
            improved = best < current
            if not improved.any():
                return False
            # Boolean indexing copies out of the shard arena, so the
            # keys and minima survive past the thunk.
            keys = cell_rows[improved] * np.int64(n) + cell_verts[improved]
            return keys, best[improved]

        results = kernel_pool.run_sharded(
            [
                (lambda lo=lo, hi=hi, arena=arena: run_shard(lo, hi, arena))
                for (lo, hi), arena in zip(bounds, arenas)
            ]
        )
        tock = perf_counter()
        timings.add("kernel.expand", tock - tick)
        if all(res is None for res in results):
            return self._summary_for(
                np.empty(0, dtype=np.int64), np.empty(0), done=True
            )
        winner_lists = []
        for res in results:
            if not res:
                continue
            keys, best = res
            srows, sverts = np.divmod(keys, np.int64(n))
            # Per-shard minima can overlap across shards; folding with
            # ``np.minimum`` in shard order is order-independent and
            # lands exactly the global per-cell minimum.
            self._dist[srows, sverts] = np.minimum(
                self._dist[srows, sverts], best
            )
            winner_lists.append(keys)
        tick = perf_counter()
        timings.add("kernel.reduce", tick - tock)
        if winner_lists:
            if len(winner_lists) == 1:
                keys = winner_lists[0]  # row-major within a shard already
            else:
                keys = np.concatenate(winner_lists)
                keys.sort()
                boundary = np.empty(keys.size, dtype=bool)
                boundary[0] = True
                np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
                keys = keys[boundary]
            self._frontier_rows, self._frontier_verts = np.divmod(
                keys, np.int64(n)
            )
            done = self._round >= self.max_rounds
        else:
            self._frontier_rows = np.empty(0, dtype=np.int64)
            self._frontier_verts = np.empty(0, dtype=np.int64)
            done = True
        timings.add("kernel.frontier", perf_counter() - tick)
        updates_per_vertex = np.bincount(verts, minlength=n).astype(
            np.float64
        )
        return self._summary_for(verts, updates_per_vertex, done)

    def _advance_streaming(self, block_arcs: int) -> RoundSummary:
        """Block-streaming round for memory-mapped graphs.

        The frontier is cut into slices whose combined out-degree fits
        ``block_arcs`` (:func:`iter_frontier_blocks`), so at most one
        block's arc gather is resident at a time; the arena recycles the
        buffers across blocks. Bit-identical to the monolithic round:
        the source distances are snapshotted before any scatter (the
        monolithic path reads every candidate first), ``min`` is
        order-independent, and per-block improved sets union to exactly
        the monolithic improved set (a cell improves against a running
        minimum iff it improves against the round-start value), merged
        back into row-major frontier order by a sort over composite keys.
        """
        graph = self.graph
        arena = self.arena
        rows, verts = self._frontier_rows, self._frontier_verts
        n = graph.num_vertices
        if verts.size == 0:
            return self._summary_for(
                np.empty(0, dtype=np.int64), np.empty(0), done=True
            )
        # Snapshot: block K's scatters must not feed block K+1's sends.
        source_dist = self._dist[rows, verts]
        degrees = self._degrees[verts]
        winner_lists = []
        expanded_any = False
        for lo, hi in iter_frontier_blocks(degrees, block_arcs):
            blk_rows = rows[lo:hi]
            blk_verts = verts[lo:hi]
            blk_dist = source_dist[lo:hi]
            arena.new_round()
            tick = perf_counter()
            arc_pos, counts, kept = expand_frontier(graph, blk_verts, arena)
            if arc_pos.size == 0:
                timings.add("kernel.expand", perf_counter() - tick)
                continue
            expanded_any = True
            src_rows = blk_rows if kept is None else blk_rows[kept]
            src_dist = blk_dist if kept is None else blk_dist[kept]
            nbr = np.take(
                graph.indices, arc_pos, out=arena.take(arc_pos.size)
            )
            msg_rows = np.repeat(src_rows, counts)
            cand = np.repeat(src_dist, counts)
            if graph.weights is not None:
                weights = np.take(
                    graph.weights,
                    arc_pos,
                    out=arena.take(arc_pos.size, np.float64),
                )
                cand += weights
            else:
                cand += 1.0
            tock = perf_counter()
            timings.add("kernel.expand", tock - tick)
            if use_dense_cells(msg_rows.size, self._pair_mask.size):
                cells, before, best = scatter_min_dense(
                    msg_rows, nbr, cand, self._dist, self._pair_mask, arena
                )
                improved = best < before
                if improved.any():
                    # flatnonzero-fresh array; the boolean index copies,
                    # so the keys survive the next block's new_round().
                    winner_lists.append(cells[improved])
            else:
                cell_rows, cell_verts, best = segment_min(
                    msg_rows, nbr, cand, n, arena
                )
                current = self._dist[cell_rows, cell_verts]
                improved = best < current
                if improved.any():
                    improved_rows = cell_rows[improved]
                    improved_verts = cell_verts[improved]
                    self._dist[improved_rows, improved_verts] = best[improved]
                    winner_lists.append(
                        improved_rows * np.int64(n) + improved_verts
                    )
            timings.add("kernel.reduce", perf_counter() - tock)

        if not expanded_any:
            return self._summary_for(
                np.empty(0, dtype=np.int64), np.empty(0), done=True
            )
        tick = perf_counter()
        if winner_lists:
            if len(winner_lists) == 1:
                keys = winner_lists[0]  # already row-major within a block
            else:
                keys = np.concatenate(winner_lists)
                keys.sort()
                boundary = np.empty(keys.size, dtype=bool)
                boundary[0] = True
                np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
                keys = keys[boundary]
            self._frontier_rows, self._frontier_verts = np.divmod(
                keys, np.int64(n)
            )
            done = self._round >= self.max_rounds
        else:
            self._frontier_rows = np.empty(0, dtype=np.int64)
            self._frontier_verts = np.empty(0, dtype=np.int64)
            done = True
        timings.add("kernel.frontier", perf_counter() - tick)
        updates_per_vertex = np.bincount(verts, minlength=n).astype(
            np.float64
        )
        return self._summary_for(verts, updates_per_vertex, done)

    def _summary_for(
        self,
        sending_verts: np.ndarray,
        updates_per_vertex: np.ndarray,
        done: bool,
    ) -> RoundSummary:
        graph = self.graph
        if sending_verts.size == 0:
            routed = self.route_emissions(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
            return RoundSummary(
                routed=routed,
                compute_ops=0.0,
                task_state_bytes=self._state_bytes(),
                active_vertices=0.0,
                done=done,
            )
        active = np.flatnonzero(updates_per_vertex > 0)
        blocks = updates_per_vertex[active] * self._scale
        point = (
            updates_per_vertex[active]
            * self._degrees[active].astype(np.float64)
            * self._scale
        )
        routed = self.route_emissions(active, blocks, point)
        # Combining keeps at most one message per (source, target) pair;
        # in-round duplicates (several paths to the same neighbour in the
        # same round) are rare for distinct arcs, so point count stands.
        return RoundSummary(
            routed=routed,
            compute_ops=routed.delivered_messages + active.size * self._scale,
            task_state_bytes=self._state_bytes(),
            active_vertices=float(active.size) * self._scale,
            done=done,
            combined_messages=routed.wire_messages,
        )

    def _state_bytes(self) -> float:
        """In-flight distance table + frontier for the whole batch."""
        reached = np.isfinite(self._dist).sum()
        return (
            float(reached) * FRONTIER_ENTRY_BYTES
            + float(self._frontier_rows.size) * FRONTIER_ENTRY_BYTES
        ) * self._scale

    def residual_bytes(self) -> float:
        """Final distances stay resident per machine until the job ends."""
        reached = float(np.isfinite(self._dist).sum())
        return reached * RESIDUAL_RECORD_BYTES * self._scale

    @property
    def result(self) -> dict:
        """Map ``source id -> distance vector`` for simulated sources."""
        return {
            int(s): self._dist[i].copy()
            for i, s in enumerate(self._sources)
        }


def mssp_task(
    graph: Graph,
    workload: float,
    sample_limit: Optional[int] = 64,
    max_rounds: int = 100_000,
) -> TaskSpec:
    """Build the MSSP :class:`TaskSpec` (workload = number of sources)."""

    def factory(g, router, batch_workload, rng):
        return MSSPKernel(
            g,
            router,
            rng,
            sample_limit=sample_limit,
            max_rounds=max_rounds,
        )

    return TaskSpec(
        name="mssp",
        graph=graph,
        workload=workload,
        kernel_factory=factory,
        params={"sample_limit": sample_limit, "max_rounds": max_rounds},
        message_bytes=20.0,
        residual_record_bytes=RESIDUAL_RECORD_BYTES,
    )
