"""Batch k-Hop Search (BKHS).

Given a source set ``S`` and constant ``k``, BKHS collects, for each
``s ∈ S``, the vertices within ``k`` hops (Section 2.3). The Pregel
implementation mirrors MSSP but "the program stops after k + 1
communication rounds" (Section 3): rounds 1..k expand the BFS frontier
and round ``k + 1`` is the terminating round in which every vertex votes
to halt. Workload is the number of sources; large workloads are sampled
and scaled like MSSP.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

import numpy as np

from repro.errors import TaskError
from repro.graph.csr import (
    Graph,
    dedup_pairs,
    dedup_pairs_dense,
    expand_frontier,
    iter_frontier_blocks,
    streaming_block_arcs,
    use_dense_cells,
)
from repro.messages.routing import MessageRouter
from repro.perf import kernel_pool, timings
from repro.tasks.base import (
    RoundSummary,
    TaskKernel,
    TaskSpec,
    alloc_state_matrix,
    choose_sources,
)

#: Bytes for one source's k-hop statistic (the collected output).
RESIDUAL_RECORD_BYTES = 16.0

#: Bytes per (source, vertex) visited marker held during the batch.
VISITED_ENTRY_BYTES = 4.0


class BKHSKernel(TaskKernel):
    """One batch of k-hop searches from sampled sources."""

    def __init__(
        self,
        graph: Graph,
        router: MessageRouter,
        rng: np.random.Generator,
        k: int = 2,
        sample_limit: Optional[int] = 64,
    ) -> None:
        super().__init__(graph, router)
        if k < 1:
            raise TaskError("k must be at least 1")
        self.k = int(k)
        self.rng = rng
        self.sample_limit = sample_limit
        self._degrees = graph.degrees

    def _initialise(self, workload: float) -> None:
        sampled = choose_sources(
            self.graph, workload, self.sample_limit, self.rng
        )
        self._sources = sampled.sources
        self._scale = sampled.scale_factor
        n = self.graph.num_vertices
        s = self._sources.size
        self._visited = alloc_state_matrix((s, n), bool)
        self._visited[np.arange(s), self._sources] = True
        self._pair_mask = alloc_state_matrix((s, n), bool)
        self._frontier_rows = np.arange(s, dtype=np.int64)
        self._frontier_verts = self._sources.copy()

    def _advance(self) -> RoundSummary:
        graph = self.graph
        if self._round > self.k:
            # Round k + 1: receive-only termination round, no messages.
            routed = self.route_emissions(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
            return RoundSummary(
                routed=routed,
                compute_ops=float(self.graph.num_vertices),
                task_state_bytes=self._state_bytes(),
                active_vertices=0.0,
                done=True,
            )

        block_arcs = streaming_block_arcs(graph)
        if block_arcs is not None:
            return self._advance_streaming(block_arcs)
        if kernel_pool.kernel_workers() > 1:
            shards = kernel_pool.choose_shards(
                int(self._degrees[self._frontier_verts].sum())
            )
            if shards > 1:
                return self._advance_parallel(shards)

        arena = self.arena
        arena.new_round()
        rows, verts = self._frontier_rows, self._frontier_verts
        tick = perf_counter()
        arc_pos, counts, kept = expand_frontier(graph, verts, arena)
        if arc_pos.size > 0:
            src_rows = rows if kept is None else rows[kept]
            nbr = np.take(
                graph.indices, arc_pos, out=arena.take(arc_pos.size)
            )
            msg_rows = np.repeat(src_rows, counts)
            tock = perf_counter()
            timings.add("kernel.expand", tock - tick)
            # Deduplicate the touched (source, target) cells first, then
            # probe the visited table only at the unique cells (the
            # candidate list repeats each cell once per in-arc). Strategy
            # choice shares the measured crossover with the segment
            # reductions (:func:`use_dense_cells`).
            if use_dense_cells(msg_rows.size, self._pair_mask.size):
                cell_rows, cell_verts = dedup_pairs_dense(
                    msg_rows, nbr, self._pair_mask, arena
                )
            else:
                cell_rows, cell_verts = dedup_pairs(
                    msg_rows, nbr, graph.num_vertices, arena
                )
            tick = perf_counter()
            timings.add("kernel.dedup", tick - tock)
            fresh = ~self._visited[cell_rows, cell_verts]
            if fresh.all():
                new_rows, new_verts = cell_rows, cell_verts
            else:
                new_rows = cell_rows[fresh]
                new_verts = cell_verts[fresh]
            self._visited[new_rows, new_verts] = True
            self._frontier_rows, self._frontier_verts = new_rows, new_verts
            timings.add("kernel.frontier", perf_counter() - tick)
        else:
            self._frontier_rows = np.empty(0, dtype=np.int64)
            self._frontier_verts = np.empty(0, dtype=np.int64)

        return self._expand_summary(verts)

    def _advance_parallel(self, shards: int) -> RoundSummary:
        """Row-sharded expansion round on the intra-task kernel pool.

        Each contiguous frontier shard expands and sort-dedups into its
        own arena, then probes the visited table *read-only* — unlike
        the streaming path, whose sequential blocks may mark visited as
        they go, concurrent shards must not write while siblings read
        (two shards reaching the same cell would race and both or
        neither could see it fresh). So the per-shard fresh sets are
        fresh-versus-round-start, their union is exactly the monolithic
        fresh set, and the parent dedups the concatenated keys (shards
        *can* overlap, unlike the disjoint streaming blocks) before
        marking visited once, serially. Byte-identical frontier and
        visited table at any shard count.
        """
        graph = self.graph
        n = graph.num_vertices
        rows, verts = self._frontier_rows, self._frontier_verts
        tick = perf_counter()
        bounds = [
            (lo, hi)
            for lo, hi in kernel_pool.shard_bounds(
                self._degrees[verts], shards
            )
            if hi > lo
        ]
        arenas = self.shard_arenas(len(bounds))

        def run_shard(lo: int, hi: int, arena) -> Optional[np.ndarray]:
            # Thread body: no shared-state writes, no timings (the
            # accumulators are not thread-safe); sparse dedup only —
            # the dense variant scribbles on the shared pair mask.
            blk_rows = rows[lo:hi]
            blk_verts = verts[lo:hi]
            arena.new_round()
            arc_pos, counts, kept = expand_frontier(graph, blk_verts, arena)
            if arc_pos.size == 0:
                return None
            src_rows = blk_rows if kept is None else blk_rows[kept]
            nbr = np.take(
                graph.indices, arc_pos, out=arena.take(arc_pos.size)
            )
            msg_rows = np.repeat(src_rows, counts)
            cell_rows, cell_verts = dedup_pairs(msg_rows, nbr, n, arena)
            fresh = ~self._visited[cell_rows, cell_verts]
            if not fresh.any():
                return np.empty(0, dtype=np.int64)
            # Boolean indexing copies out of the shard arena.
            return cell_rows[fresh] * np.int64(n) + cell_verts[fresh]

        results = kernel_pool.run_sharded(
            [
                (lambda lo=lo, hi=hi, arena=arena: run_shard(lo, hi, arena))
                for (lo, hi), arena in zip(bounds, arenas)
            ]
        )
        tock = perf_counter()
        timings.add("kernel.expand", tock - tick)
        fresh_lists = [res for res in results if res is not None and res.size]
        if fresh_lists:
            if len(fresh_lists) == 1:
                keys = fresh_lists[0]  # row-major within a shard already
            else:
                keys = np.concatenate(fresh_lists)
                keys.sort()
                boundary = np.empty(keys.size, dtype=bool)
                boundary[0] = True
                np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
                keys = keys[boundary]
            new_rows, new_verts = np.divmod(keys, np.int64(n))
            self._visited[new_rows, new_verts] = True
            self._frontier_rows, self._frontier_verts = new_rows, new_verts
        else:
            self._frontier_rows = np.empty(0, dtype=np.int64)
            self._frontier_verts = np.empty(0, dtype=np.int64)
        timings.add("kernel.frontier", perf_counter() - tock)
        return self._expand_summary(verts)

    def _advance_streaming(self, block_arcs: int) -> RoundSummary:
        """Block-streaming expansion round for memory-mapped graphs.

        Frontier slices bounded by combined out-degree
        (:func:`iter_frontier_blocks`) expand one at a time through the
        arena. Bit-identical to the monolithic round: the visited table
        makes per-block fresh sets *disjoint* (a cell discovered in an
        earlier block is already marked when a later block touches it),
        so concatenating them and sorting the composite keys recovers
        exactly the monolithic row-major frontier.
        """
        graph = self.graph
        arena = self.arena
        rows, verts = self._frontier_rows, self._frontier_verts
        n = graph.num_vertices
        degrees = self._degrees[verts]
        fresh_lists = []
        for lo, hi in iter_frontier_blocks(degrees, block_arcs):
            blk_rows = rows[lo:hi]
            blk_verts = verts[lo:hi]
            arena.new_round()
            tick = perf_counter()
            arc_pos, counts, kept = expand_frontier(graph, blk_verts, arena)
            if arc_pos.size == 0:
                timings.add("kernel.expand", perf_counter() - tick)
                continue
            src_rows = blk_rows if kept is None else blk_rows[kept]
            nbr = np.take(
                graph.indices, arc_pos, out=arena.take(arc_pos.size)
            )
            msg_rows = np.repeat(src_rows, counts)
            tock = perf_counter()
            timings.add("kernel.expand", tock - tick)
            if use_dense_cells(msg_rows.size, self._pair_mask.size):
                cell_rows, cell_verts = dedup_pairs_dense(
                    msg_rows, nbr, self._pair_mask, arena
                )
            else:
                cell_rows, cell_verts = dedup_pairs(msg_rows, nbr, n, arena)
            tick = perf_counter()
            timings.add("kernel.dedup", tick - tock)
            fresh = ~self._visited[cell_rows, cell_verts]
            # Boolean indexing copies out of the arena, so the fresh
            # cells survive the next block's new_round().
            new_rows = cell_rows[fresh]
            new_verts = cell_verts[fresh]
            if new_rows.size:
                self._visited[new_rows, new_verts] = True
                fresh_lists.append(new_rows * np.int64(n) + new_verts)
            timings.add("kernel.frontier", perf_counter() - tick)

        tick = perf_counter()
        if fresh_lists:
            if len(fresh_lists) == 1:
                keys = fresh_lists[0]  # row-major within a block already
            else:
                keys = np.concatenate(fresh_lists)
                keys.sort()  # disjoint sets: sort alone restores order
            self._frontier_rows, self._frontier_verts = np.divmod(
                keys, np.int64(n)
            )
        else:
            self._frontier_rows = np.empty(0, dtype=np.int64)
            self._frontier_verts = np.empty(0, dtype=np.int64)
        timings.add("kernel.frontier", perf_counter() - tick)
        return self._expand_summary(verts)

    def _expand_summary(self, verts: np.ndarray) -> RoundSummary:
        """Emission accounting shared by the monolithic and streaming
        expansion rounds (``verts`` is the round's sending frontier)."""
        updates_per_vertex = np.bincount(
            verts, minlength=self.graph.num_vertices
        ).astype(np.float64)
        active = np.flatnonzero(updates_per_vertex > 0)
        blocks = updates_per_vertex[active] * self._scale
        point = (
            updates_per_vertex[active]
            * self._degrees[active].astype(np.float64)
            * self._scale
        )
        routed = self.route_emissions(active, blocks, point)
        return RoundSummary(
            routed=routed,
            compute_ops=routed.delivered_messages + active.size * self._scale,
            task_state_bytes=self._state_bytes(),
            active_vertices=float(active.size) * self._scale,
            done=False,
            combined_messages=routed.wire_messages,
        )

    def _state_bytes(self) -> float:
        return (
            float(self._visited.sum()) * VISITED_ENTRY_BYTES * self._scale
        )

    def residual_bytes(self) -> float:
        """Only the per-source statistics survive the batch."""
        return self._sources.size * RESIDUAL_RECORD_BYTES * self._scale

    @property
    def result(self) -> dict:
        """Map ``source id -> number of vertices within k hops`` (incl. s)."""
        counts = self._visited.sum(axis=1)
        return {
            int(s): int(counts[i]) for i, s in enumerate(self._sources)
        }

    def reachable_sets(self) -> dict:
        """Map ``source id -> boolean reachability mask`` (for tests)."""
        return {
            int(s): self._visited[i].copy()
            for i, s in enumerate(self._sources)
        }


def bkhs_task(
    graph: Graph,
    workload: float,
    k: int = 2,
    sample_limit: Optional[int] = 64,
) -> TaskSpec:
    """Build the BKHS :class:`TaskSpec` (workload = number of sources)."""

    def factory(g, router, batch_workload, rng):
        return BKHSKernel(g, router, rng, k=k, sample_limit=sample_limit)

    return TaskSpec(
        name="bkhs",
        graph=graph,
        workload=workload,
        kernel_factory=factory,
        params={"k": k, "sample_limit": sample_limit},
        message_bytes=12.0,
        residual_record_bytes=RESIDUAL_RECORD_BYTES,
    )
