"""Graph partitioning across simulated machines.

The paper keeps each system's default partitioner: Pregel+/Giraph/GraphD
hash vertices to workers; GraphLab performs an edge partition (vertex
cut). Both are implemented here behind one :class:`Partition` value type
that records, for every vertex, its owner machine, plus the per-machine
vertex/arc tallies the memory model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import (
    Graph,
    _merge_reduce,
    iter_row_blocks,
    streaming_block_arcs,
)
from repro.perf import timings
from repro.perf.cache import get_cache

#: Multiplicative hashing constant (Knuth); spreads consecutive ids.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


@dataclass(frozen=True)
class Partition:
    """Assignment of a graph's vertices to ``num_machines`` machines.

    Attributes
    ----------
    owner:
        ``int64`` array of length n: machine id owning each vertex.
    num_machines:
        machine count.
    vertices_per_machine:
        vertex tally per machine.
    arcs_per_machine:
        out-arc tally per machine (arcs owned by the source's machine).
    cut_arcs:
        number of arcs whose endpoints live on different machines —
        exactly the arcs that become network messages.
    replication_factor:
        for vertex-cut partitions, the average number of machine replicas
        per vertex (1.0 for hash partitions).
    strategy:
        partitioner name, for reports.
    """

    owner: np.ndarray
    num_machines: int
    vertices_per_machine: np.ndarray
    arcs_per_machine: np.ndarray
    cut_arcs: int
    replication_factor: float = 1.0
    strategy: str = "hash"
    #: owner of the *destination* side per arc; cached for message routing.
    arc_dst_owner: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_vertices(self) -> int:
        return self.owner.size

    @property
    def cut_fraction(self) -> float:
        """Fraction of arcs crossing machines (drives network volume)."""
        total = int(self.arcs_per_machine.sum())
        return self.cut_arcs / total if total else 0.0

    def machine_of(self, v: int) -> int:
        """Machine id owning vertex ``v``."""
        return int(self.owner[v])

    def validate(self, graph: Graph) -> None:
        """Check internal consistency against ``graph`` (used by tests)."""
        if self.owner.size != graph.num_vertices:
            raise PartitionError("owner array does not match graph size")
        if self.owner.size and (
            self.owner.min() < 0 or self.owner.max() >= self.num_machines
        ):
            raise PartitionError("owner id out of machine range")
        if int(self.vertices_per_machine.sum()) != graph.num_vertices:
            raise PartitionError("vertex tallies do not cover the graph")
        if int(self.arcs_per_machine.sum()) != graph.num_arcs:
            raise PartitionError("arc tallies do not cover the graph")


def _finish(
    graph: Graph, owner: np.ndarray, num_machines: int, strategy: str
) -> Partition:
    """Compute the per-machine tallies shared by all vertex partitioners.

    Mapped graphs stream the cut-arc count in CSR row blocks instead of
    materialising the two O(m) per-arc owner arrays — per-block cut
    counts are exact integers, so the block sum equals the monolithic
    ``count_nonzero`` — and leave ``arc_dst_owner`` unset (consumers
    like the mirror builder recompute it per block the same way).
    """
    vertices_per_machine = np.bincount(owner, minlength=num_machines)
    degrees = np.diff(graph.indptr)
    arcs_per_machine = np.bincount(
        owner, weights=degrees, minlength=num_machines
    ).astype(np.int64)
    block_arcs = streaming_block_arcs(graph)
    if block_arcs is None:
        src_owner_per_arc = np.repeat(owner, degrees)
        dst_owner_per_arc = owner[graph.indices]
        cut_arcs = int(
            np.count_nonzero(src_owner_per_arc != dst_owner_per_arc)
        )
        arc_dst_owner: Optional[np.ndarray] = dst_owner_per_arc
    else:
        cut_arcs = 0
        for lo, hi in iter_row_blocks(graph.indptr, block_arcs):
            a, b = int(graph.indptr[lo]), int(graph.indptr[hi])
            if a == b:
                continue
            blk_dst_owner = owner[np.asarray(graph.indices[a:b])]
            blk_src_owner = np.repeat(owner[lo:hi], degrees[lo:hi])
            cut_arcs += int(
                np.count_nonzero(blk_src_owner != blk_dst_owner)
            )
        arc_dst_owner = None
    return Partition(
        owner=owner,
        num_machines=num_machines,
        vertices_per_machine=vertices_per_machine,
        arcs_per_machine=arcs_per_machine,
        cut_arcs=cut_arcs,
        strategy=strategy,
        arc_dst_owner=arc_dst_owner,
    )


def hash_partition(graph: Graph, num_machines: int) -> Partition:
    """Pregel+-style random hash of vertex ids onto machines."""
    if num_machines <= 0:
        raise PartitionError("num_machines must be positive")
    ids = np.arange(graph.num_vertices, dtype=np.uint64)
    hashed = (ids * _HASH_MULT) >> np.uint64(32)
    owner = (hashed % np.uint64(num_machines)).astype(np.int64)
    return _finish(graph, owner, num_machines, "hash")


def range_partition(graph: Graph, num_machines: int) -> Partition:
    """Contiguous id ranges per machine (locality-preserving baseline)."""
    if num_machines <= 0:
        raise PartitionError("num_machines must be positive")
    n = graph.num_vertices
    owner = np.minimum(
        (np.arange(n, dtype=np.int64) * num_machines) // max(n, 1),
        num_machines - 1,
    )
    return _finish(graph, owner, num_machines, "range")


def edge_partition(graph: Graph, num_machines: int) -> Partition:
    """GraphLab-style edge partition (vertex cut), approximated.

    Arcs are hashed to machines; a vertex is replicated on every machine
    holding one of its arcs, and its *owner* (master replica) is the
    machine holding most of them. The replication factor feeds the memory
    model; messages between master and replicas travel the network.
    """
    if num_machines <= 0:
        raise PartitionError("num_machines must be positive")
    n = graph.num_vertices
    if graph.num_arcs == 0:
        owner = np.zeros(n, dtype=np.int64)
        part = _finish(graph, owner, num_machines, "edge-cut")
        return Partition(
            owner=part.owner,
            num_machines=num_machines,
            vertices_per_machine=part.vertices_per_machine,
            arcs_per_machine=part.arcs_per_machine,
            cut_arcs=part.cut_arcs,
            replication_factor=1.0,
            strategy="edge-cut",
            arc_dst_owner=part.arc_dst_owner,
        )
    # Replica presence matrix footprint: count distinct (vertex, machine)
    # pairs among arc endpoints. Mapped graphs stream the pass in CSR
    # row blocks, folding per-block (unique key, count) runs with an
    # exact integer merge — the fold of per-block uniques equals the
    # global ``np.unique(..., return_counts=True)`` bit for bit, and at
    # most O(n · machines) accumulated pairs are ever resident instead
    # of the 2m endpoint keys.
    block_arcs = streaming_block_arcs(graph)
    if block_arcs is None:
        src = graph.edge_sources()
        dst = graph.indices
        arc_ids = np.arange(graph.num_arcs, dtype=np.uint64)
        arc_machine = ((arc_ids * _HASH_MULT) >> np.uint64(33)) % np.uint64(
            num_machines
        )
        arc_machine = arc_machine.astype(np.int64)
        endpoint_vertex = np.concatenate([src, dst])
        endpoint_machine = np.concatenate([arc_machine, arc_machine])
        pair_keys = (
            endpoint_vertex * np.int64(num_machines) + endpoint_machine
        )
        unique_pairs, pair_counts = np.unique(pair_keys, return_counts=True)
    else:
        degrees = np.diff(graph.indptr)
        unique_pairs = np.empty(0, dtype=np.int64)
        pair_counts = np.empty(0, dtype=np.int64)
        for lo, hi in iter_row_blocks(graph.indptr, block_arcs):
            a, b = int(graph.indptr[lo]), int(graph.indptr[hi])
            if a == b:
                continue
            blk_dst = np.asarray(graph.indices[a:b], dtype=np.int64)
            blk_src = np.repeat(
                np.arange(lo, hi, dtype=np.int64), degrees[lo:hi]
            )
            arc_ids = np.arange(a, b, dtype=np.uint64)
            blk_machine = (
                ((arc_ids * _HASH_MULT) >> np.uint64(33))
                % np.uint64(num_machines)
            ).astype(np.int64)
            keys = np.concatenate([blk_src, blk_dst]) * np.int64(
                num_machines
            ) + np.concatenate([blk_machine, blk_machine])
            blk_unique, blk_counts = np.unique(keys, return_counts=True)
            if unique_pairs.size == 0:
                unique_pairs, pair_counts = blk_unique, blk_counts
            else:
                unique_pairs, pair_counts = _merge_reduce(
                    unique_pairs, pair_counts, blk_unique, blk_counts, np.add
                )
    # Isolated vertices have no incident arcs but still hold one master
    # replica each. ``unique_pairs`` is sorted, so distinct touched
    # vertices are the distinct pair prefixes.
    pair_vertex_sorted = unique_pairs // num_machines
    touched = (
        int(np.count_nonzero(np.diff(pair_vertex_sorted))) + 1
        if pair_vertex_sorted.size
        else 0
    )
    isolated = n - touched
    replication_factor = (unique_pairs.size + isolated) / n

    # Master replica: machine with most incident arcs per vertex.
    pair_vertex = unique_pairs // num_machines
    pair_machine = unique_pairs % num_machines
    owner = np.zeros(n, dtype=np.int64)
    best = np.zeros(n, dtype=np.int64)
    # unique_pairs is sorted, so groups by vertex are contiguous.
    np.maximum.at(best, pair_vertex, pair_counts)
    is_best = pair_counts == best[pair_vertex]
    owner[pair_vertex[is_best][::-1]] = pair_machine[is_best][::-1]

    part = _finish(graph, owner, num_machines, "edge-cut")
    return Partition(
        owner=part.owner,
        num_machines=num_machines,
        vertices_per_machine=part.vertices_per_machine,
        arcs_per_machine=part.arcs_per_machine,
        cut_arcs=part.cut_arcs,
        replication_factor=float(replication_factor),
        strategy="edge-cut",
        arc_dst_owner=part.arc_dst_owner,
    )


_STRATEGIES = {
    "hash": hash_partition,
    "range": range_partition,
    "edge-cut": edge_partition,
}


def partition_graph(
    graph: Graph, num_machines: int, strategy: str = "hash"
) -> Partition:
    """Partition ``graph`` with the named strategy (hash/range/edge-cut).

    Results are memoised in the shared artifact cache keyed by the
    graph's content fingerprint, so every engine bound to the same
    (graph, machine count, strategy) triple reuses one partition. All
    partitioners are pure functions of that key, and :class:`Partition`
    is frozen, so sharing is safe.
    """
    try:
        fn = _STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise PartitionError(
            f"unknown partition strategy {strategy!r}; known: {known}"
        ) from None
    if num_machines <= 0:
        raise PartitionError("num_machines must be positive")

    def build() -> Partition:
        with timings.span("partition"):
            return fn(graph, num_machines)

    return get_cache().get_or_build(
        ("partition", graph.fingerprint, int(num_machines), strategy), build
    )
