"""Descriptive graph statistics used in reports and sanity tests."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics in the style of the paper's Table 1."""

    name: str
    num_vertices: int
    num_arcs: int
    avg_degree: float
    max_degree: int
    median_degree: float
    degree_p99: float
    isolated_vertices: int
    gini_degree: float

    def as_row(self) -> dict:
        """Dictionary form, convenient for tabular reports."""
        return {
            "name": self.name,
            "n": self.num_vertices,
            "arcs": self.num_arcs,
            "d_avg": round(self.avg_degree, 2),
            "d_max": self.max_degree,
            "d_median": self.median_degree,
            "d_p99": self.degree_p99,
            "isolated": self.isolated_vertices,
            "gini": round(self.gini_degree, 3),
        }


def degree_gini(degrees: np.ndarray) -> float:
    """Gini coefficient of the degree distribution (0 = uniform).

    Used as a scalar skew measure when checking that synthetic dataset
    stand-ins reproduce the hub structure mirroring depends on.
    """
    if degrees.size == 0:
        return 0.0
    sorted_deg = np.sort(degrees.astype(np.float64))
    total = sorted_deg.sum()
    if total == 0:
        return 0.0
    n = sorted_deg.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * sorted_deg).sum()) / (n * total) - (n + 1) / n)


def compute_stats(graph: Graph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    degrees = np.diff(graph.indptr)
    if degrees.size == 0:
        return GraphStats(graph.name, 0, 0, 0.0, 0, 0.0, 0.0, 0, 0.0)
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_arcs=graph.num_arcs,
        avg_degree=graph.average_degree,
        max_degree=int(degrees.max()),
        median_degree=float(np.median(degrees)),
        degree_p99=float(np.percentile(degrees, 99)),
        isolated_vertices=int(np.count_nonzero(degrees == 0)),
        gini_degree=degree_gini(degrees),
    )


def connected_component_count(graph: Graph) -> int:
    """Number of weakly connected components (iterative union-find)."""
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    src = graph.edge_sources()
    for s, d in zip(src.tolist(), graph.indices.tolist()):
        rs, rd = find(s), find(d)
        if rs != rd:
            parent[rs] = rd
    roots = {find(v) for v in range(n)}
    return len(roots)
