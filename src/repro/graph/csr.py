"""Immutable CSR (compressed sparse row) graph storage.

:class:`Graph` is the single adjacency structure used throughout the
library. It stores out-neighbours in CSR form (``indptr``/``indices``)
with optional float edge weights, supports directed and undirected graphs
(undirected graphs store both arcs), and exposes the handful of queries
the vertex-centric engines need: degrees, neighbour slices, and edge
iteration. All arrays are numpy-backed so the task kernels can operate on
whole frontiers at once.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError


class Graph:
    """A fixed, CSR-encoded directed multigraph view.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; out-neighbours of vertex ``v``
        are ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of destination vertex ids, length ``m``.
    weights:
        optional ``float64`` array aligned with ``indices``; ``None`` means
        the graph is unweighted (all edges weight 1).
    directed:
        whether the arc list represents a directed graph. Undirected
        graphs are stored with both arc directions present, and
        ``num_edges`` reports arc count / 2.
    name:
        optional label used in reports.
    """

    __slots__ = ("indptr", "indices", "weights", "directed", "name")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        directed: bool = True,
        name: str = "graph",
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphFormatError("indptr must be a 1-D array of length n + 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphFormatError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {indices.size} arcs)"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphFormatError("edge endpoint out of range")
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise GraphFormatError("weights must align with indices")
            if np.any(weights < 0):
                raise GraphFormatError("edge weights must be non-negative")
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.directed = bool(directed)
        self.name = name
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        if self.weights is not None:
            self.weights.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.indptr.size - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (directed edges)."""
        return self.indices.size

    @property
    def num_edges(self) -> int:
        """Number of logical edges (arcs / 2 for undirected graphs)."""
        if self.directed:
            return self.indices.size
        return self.indices.size // 2

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def out_degree(self, v: Optional[int] = None):
        """Out-degree of ``v``, or the whole degree array when ``v is None``."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def average_degree(self) -> float:
        """Average out-degree (the paper's ``d_avg`` column)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_arcs / self.num_vertices

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbour ids of vertex ``v`` (a CSR slice, zero copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-edges (ones if unweighted)."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        if self.weights is None:
            return np.ones(hi - lo, dtype=np.float64)
        return self.weights[lo:hi]

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` for every stored arc."""
        weights = self.weights
        for v in range(self.num_vertices):
            lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
            for pos in range(lo, hi):
                w = 1.0 if weights is None else float(weights[pos])
                yield v, int(self.indices[pos]), w

    def edge_sources(self) -> np.ndarray:
        """Source id for every arc, aligned with ``indices`` (length m)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """Return the graph with every arc reversed (CSR of in-edges)."""
        order = np.argsort(self.indices, kind="stable")
        rev_indices = self.edge_sources()[order]
        counts = np.bincount(self.indices, minlength=self.num_vertices)
        rev_indptr = np.concatenate(([0], np.cumsum(counts)))
        rev_weights = None if self.weights is None else self.weights[order]
        return Graph(
            rev_indptr,
            rev_indices,
            rev_weights,
            directed=self.directed,
            name=f"{self.name}^T",
        )

    def transition_matrix_rows(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(indptr, indices, probabilities)`` of the random-walk
        transition matrix (uniform over out-neighbours).

        Dangling vertices (out-degree 0) get an empty probability row; the
        walk kernels treat a walk at a dangling vertex as terminated, which
        matches the Monte-Carlo semantics in Section 3 of the paper.
        """
        degrees = np.diff(self.indptr).astype(np.float64)
        probs = np.repeat(
            np.divide(
                1.0,
                degrees,
                out=np.zeros_like(degrees),
                where=degrees > 0,
            ),
            np.diff(self.indptr),
        )
        return self.indptr, self.indices, probs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "digraph" if self.directed else "graph"
        return (
            f"Graph(name={self.name!r}, {kind}, n={self.num_vertices}, "
            f"arcs={self.num_arcs}, weighted={self.is_weighted})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        same_weights = (
            (self.weights is None and other.weights is None)
            or (
                self.weights is not None
                and other.weights is not None
                and np.array_equal(self.weights, other.weights)
            )
        )
        return (
            self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and same_weights
        )

    def __hash__(self) -> int:
        return hash(
            (self.num_vertices, self.num_arcs, self.directed, self.is_weighted)
        )
