"""Immutable CSR (compressed sparse row) graph storage.

:class:`Graph` is the single adjacency structure used throughout the
library. It stores out-neighbours in CSR form (``indptr``/``indices``)
with optional float edge weights, supports directed and undirected graphs
(undirected graphs store both arcs), and exposes the handful of queries
the vertex-centric engines need: degrees, neighbour slices, and edge
iteration. All arrays are numpy-backed so the task kernels can operate on
whole frontiers at once.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError


class Graph:
    """A fixed, CSR-encoded directed multigraph view.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; out-neighbours of vertex ``v``
        are ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of destination vertex ids, length ``m``.
    weights:
        optional ``float64`` array aligned with ``indices``; ``None`` means
        the graph is unweighted (all edges weight 1).
    directed:
        whether the arc list represents a directed graph. Undirected
        graphs are stored with both arc directions present, and
        ``num_edges`` reports arc count / 2.
    name:
        optional label used in reports.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "directed",
        "name",
        "_degrees",
        "_fingerprint",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        directed: bool = True,
        name: str = "graph",
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphFormatError("indptr must be a 1-D array of length n + 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphFormatError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {indices.size} arcs)"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphFormatError("edge endpoint out of range")
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise GraphFormatError("weights must align with indices")
            if np.any(weights < 0):
                raise GraphFormatError("edge weights must be non-negative")
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.directed = bool(directed)
        self.name = name
        self._degrees = None
        self._fingerprint = None
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        if self.weights is not None:
            self.weights.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.indptr.size - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (directed edges)."""
        return self.indices.size

    @property
    def num_edges(self) -> int:
        """Number of logical edges (arcs / 2 for undirected graphs)."""
        if self.directed:
            return self.indices.size
        return self.indices.size // 2

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def out_degree(self, v: Optional[int] = None):
        """Out-degree of ``v``, or the whole degree array when ``v is None``."""
        if v is None:
            return self.degrees
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree per vertex (``int64``, computed once and cached)."""
        if self._degrees is None:
            degrees = np.diff(self.indptr)
            degrees.setflags(write=False)
            self._degrees = degrees
        return self._degrees

    @property
    def fingerprint(self) -> str:
        """Content hash of the CSR arrays (stable across processes).

        Used as the cache key component for partition/mirror-plan/run
        artifacts (:mod:`repro.perf.cache`): two graphs with identical
        structure, weights and direction share every derived artifact.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(b"directed" if self.directed else b"undirected")
            digest.update(self.indptr.tobytes())
            digest.update(self.indices.tobytes())
            if self.weights is not None:
                digest.update(self.weights.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def average_degree(self) -> float:
        """Average out-degree (the paper's ``d_avg`` column)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_arcs / self.num_vertices

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbour ids of vertex ``v`` (a CSR slice, zero copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-edges (ones if unweighted)."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        if self.weights is None:
            return np.ones(hi - lo, dtype=np.float64)
        return self.weights[lo:hi]

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` for every stored arc."""
        weights = self.weights
        for v in range(self.num_vertices):
            lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
            for pos in range(lo, hi):
                w = 1.0 if weights is None else float(weights[pos])
                yield v, int(self.indices[pos]), w

    def edge_sources(self) -> np.ndarray:
        """Source id for every arc, aligned with ``indices`` (length m)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """Return the graph with every arc reversed (CSR of in-edges)."""
        order = np.argsort(self.indices, kind="stable")
        rev_indices = self.edge_sources()[order]
        counts = np.bincount(self.indices, minlength=self.num_vertices)
        rev_indptr = np.concatenate(([0], np.cumsum(counts)))
        rev_weights = None if self.weights is None else self.weights[order]
        return Graph(
            rev_indptr,
            rev_indices,
            rev_weights,
            directed=self.directed,
            name=f"{self.name}^T",
        )

    def transition_matrix_rows(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(indptr, indices, probabilities)`` of the random-walk
        transition matrix (uniform over out-neighbours).

        Dangling vertices (out-degree 0) get an empty probability row; the
        walk kernels treat a walk at a dangling vertex as terminated, which
        matches the Monte-Carlo semantics in Section 3 of the paper.
        """
        degrees = np.diff(self.indptr).astype(np.float64)
        probs = np.repeat(
            np.divide(
                1.0,
                degrees,
                out=np.zeros_like(degrees),
                where=degrees > 0,
            ),
            np.diff(self.indptr),
        )
        return self.indptr, self.indices, probs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "digraph" if self.directed else "graph"
        return (
            f"Graph(name={self.name!r}, {kind}, n={self.num_vertices}, "
            f"arcs={self.num_arcs}, weighted={self.is_weighted})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        same_weights = (
            (self.weights is None and other.weights is None)
            or (
                self.weights is not None
                and other.weights is not None
                and np.array_equal(self.weights, other.weights)
            )
        )
        return (
            self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and same_weights
        )

    def __hash__(self) -> int:
        return hash(
            (self.num_vertices, self.num_arcs, self.directed, self.is_weighted)
        )


# ----------------------------------------------------------------------
# Shared frontier kernels
#
# Every frontier-driven task (MSSP, BKHS, and the per-arc mass spreading
# in BPPR/PageRank/exact references) used to carry its own copy of the
# ``repeat``/``cumsum`` CSR gather; the helpers below consolidate them
# into one optimized implementation that reuses scratch buffers across
# rounds and replaces ``np.unique`` on composite keys with a sort-based
# reduction.
# ----------------------------------------------------------------------


class FrontierScratch:
    """Reusable buffers for :func:`expand_frontier` across rounds.

    Holds a grow-only cached ``arange`` so per-round expansion skips the
    (measurably hot) ``np.arange`` allocation. The slices handed out are
    read-only views: consume them before requesting a larger size.
    """

    __slots__ = ("_iota",)

    def __init__(self) -> None:
        self._iota = np.empty(0, dtype=np.int64)

    def arange(self, size: int) -> np.ndarray:
        """A ``[0, size)`` arange view from the grow-only cached buffer."""
        if self._iota.size < size:
            self._iota = np.arange(
                max(size, 2 * self._iota.size), dtype=np.int64
            )
        return self._iota[:size]


def expand_frontier(
    graph: Graph,
    verts: np.ndarray,
    scratch: Optional[FrontierScratch] = None,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Expand frontier vertices to all their out-arcs (vectorised gather).

    Returns ``(arc_positions, counts, kept)``:

    * ``arc_positions`` — positions into ``graph.indices`` /
      ``graph.weights`` of every out-arc of every frontier entry, in
      frontier order (entry ``i``'s arcs are contiguous);
    * ``counts`` — out-degree of each kept frontier entry; expand any
      per-entry payload to arc granularity with ``np.repeat(x, counts)``
      (chunked copies, much faster than per-element gathers on the
      skewed degree distributions the datasets model);
    * ``kept`` — indices of frontier entries with out-degree > 0, or
      ``None`` when every entry had arcs (no filtering needed —
      zero-degree entries would otherwise corrupt the prefix trick).

    Compared to the naive three-``np.repeat`` gather this fuses the
    base/offset arithmetic into one ``np.repeat`` plus one in-place add
    from the scratch-cached ``arange``.
    """
    counts = graph.degrees[verts]
    kept: Optional[np.ndarray] = None
    if counts.size and counts.min() == 0:
        kept = np.flatnonzero(counts)
        verts = verts[kept]
        counts = counts[kept]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts, kept

    # Each entry's arcs start at indptr[v]; subtracting the exclusive
    # prefix sum first lets one repeat plus the cached arange produce
    # consecutive positions per segment.
    bounds = np.cumsum(counts)
    arc_pos = np.repeat(graph.indptr[verts] - (bounds - counts), counts)
    if scratch is None:
        arc_pos += np.arange(total, dtype=np.int64)
    else:
        arc_pos += scratch.arange(total)
    return arc_pos, counts, kept


def dedup_pairs(
    rows: np.ndarray, cols: np.ndarray, num_cols: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct ``(row, col)`` pairs in row-major order, sort-based.

    Builds composite ``row * num_cols + col`` keys, sorts them in place
    and keeps boundary elements — an order of magnitude faster than
    ``np.unique`` on the same keys — then splits the unique keys back
    with a single ``np.divmod``.
    """
    keys = rows * np.int64(num_cols) + cols
    if keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    keys.sort()
    boundary = np.empty(keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    unique_rows, unique_cols = np.divmod(keys[boundary], np.int64(num_cols))
    return unique_rows, unique_cols


def dedup_pairs_dense(
    rows: np.ndarray, cols: np.ndarray, mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct ``(row, col)`` pairs via a reusable dense boolean mask.

    For kernels that already hold an ``(s, n)`` state matrix the dense
    scan beats sorting: mark, collect with ``np.nonzero`` (row-major —
    the same order :func:`dedup_pairs` produces), then un-mark so the
    mask is all-False again for the next round. ``mask`` must be
    all-False on entry; no composite keys are constructed.
    """
    mask[rows, cols] = True
    unique_rows, unique_cols = np.nonzero(mask)
    unique_rows = unique_rows.astype(np.int64, copy=False)
    unique_cols = unique_cols.astype(np.int64, copy=False)
    mask[unique_rows, unique_cols] = False
    return unique_rows, unique_cols


def propagate_mass(graph: Graph, per_vertex: np.ndarray) -> np.ndarray:
    """Push ``per_vertex`` values along every out-arc and sum at targets.

    The shared per-arc spreading step of BPPR/PageRank/exact-PPR:
    ``out[v] = sum(per_vertex[u] for every arc u -> v)``. Callers divide
    by degree beforehand for random-walk semantics.
    """
    per_arc = np.repeat(per_vertex, graph.degrees)
    return np.bincount(
        graph.indices, weights=per_arc, minlength=graph.num_vertices
    )
