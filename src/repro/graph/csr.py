"""Immutable CSR (compressed sparse row) graph storage.

:class:`Graph` is the single adjacency structure used throughout the
library. It stores out-neighbours in CSR form (``indptr``/``indices``)
with optional float edge weights, supports directed and undirected graphs
(undirected graphs store both arcs), and exposes the handful of queries
the vertex-centric engines need: degrees, neighbour slices, and edge
iteration. All arrays are numpy-backed so the task kernels can operate on
whole frontiers at once.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError

if False:  # pragma: no cover - import cycle guard, typing only
    from repro.graph.arena import ScratchArena


class Graph:
    """A fixed, CSR-encoded directed multigraph view.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; out-neighbours of vertex ``v``
        are ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of destination vertex ids, length ``m``.
    weights:
        optional ``float64`` array aligned with ``indices``; ``None`` means
        the graph is unweighted (all edges weight 1).
    directed:
        whether the arc list represents a directed graph. Undirected
        graphs are stored with both arc directions present, and
        ``num_edges`` reports arc count / 2.
    name:
        optional label used in reports.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "directed",
        "name",
        "_degrees",
        "_fingerprint",
        "_spread",
    )

    #: True on memory-mapped subclasses (:class:`repro.graph.io.MappedGraph`);
    #: the streaming kernel dispatch keys off this single attribute so the
    #: in-RAM fast paths pay one class-attribute read and nothing else.
    mapped = False

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        directed: bool = True,
        name: str = "graph",
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphFormatError("indptr must be a 1-D array of length n + 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphFormatError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {indices.size} arcs)"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphFormatError("edge endpoint out of range")
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise GraphFormatError("weights must align with indices")
            if np.any(weights < 0):
                raise GraphFormatError("edge weights must be non-negative")
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.directed = bool(directed)
        self.name = name
        self._degrees = None
        self._fingerprint = None
        self._spread = None
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        if self.weights is not None:
            self.weights.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.indptr.size - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (directed edges)."""
        return self.indices.size

    @property
    def num_edges(self) -> int:
        """Number of logical edges (arcs / 2 for undirected graphs)."""
        if self.directed:
            return self.indices.size
        return self.indices.size // 2

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def out_degree(self, v: Optional[int] = None):
        """Out-degree of ``v``, or the whole degree array when ``v is None``."""
        if v is None:
            return self.degrees
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree per vertex (``int64``, computed once and cached)."""
        if self._degrees is None:
            degrees = np.diff(self.indptr)
            degrees.setflags(write=False)
            self._degrees = degrees
        return self._degrees

    @property
    def fingerprint(self) -> str:
        """Content hash of the CSR arrays (stable across processes).

        Used as the cache key component for partition/mirror-plan/run
        artifacts (:mod:`repro.perf.cache`): two graphs with identical
        structure, weights and direction share every derived artifact.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(b"directed" if self.directed else b"undirected")
            digest.update(self.indptr.tobytes())
            digest.update(self.indices.tobytes())
            if self.weights is not None:
                digest.update(self.weights.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def average_degree(self) -> float:
        """Average out-degree (the paper's ``d_avg`` column)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_arcs / self.num_vertices

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbour ids of vertex ``v`` (a CSR slice, zero copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-edges (ones if unweighted)."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        if self.weights is None:
            return np.ones(hi - lo, dtype=np.float64)
        return self.weights[lo:hi]

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` for every stored arc."""
        weights = self.weights
        for v in range(self.num_vertices):
            lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
            for pos in range(lo, hi):
                w = 1.0 if weights is None else float(weights[pos])
                yield v, int(self.indices[pos]), w

    def edge_sources(self) -> np.ndarray:
        """Source id for every arc, aligned with ``indices`` (length m)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """Return the graph with every arc reversed (CSR of in-edges)."""
        order = np.argsort(self.indices, kind="stable")
        rev_indices = self.edge_sources()[order]
        counts = np.bincount(self.indices, minlength=self.num_vertices)
        rev_indptr = np.concatenate(([0], np.cumsum(counts)))
        rev_weights = None if self.weights is None else self.weights[order]
        return Graph(
            rev_indptr,
            rev_indices,
            rev_weights,
            directed=self.directed,
            name=f"{self.name}^T",
        )

    def transition_matrix_rows(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(indptr, indices, probabilities)`` of the random-walk
        transition matrix (uniform over out-neighbours).

        Dangling vertices (out-degree 0) get an empty probability row; the
        walk kernels treat a walk at a dangling vertex as terminated, which
        matches the Monte-Carlo semantics in Section 3 of the paper.
        """
        degrees = np.diff(self.indptr).astype(np.float64)
        probs = np.repeat(
            np.divide(
                1.0,
                degrees,
                out=np.zeros_like(degrees),
                where=degrees > 0,
            ),
            np.diff(self.indptr),
        )
        return self.indptr, self.indices, probs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "digraph" if self.directed else "graph"
        return (
            f"Graph(name={self.name!r}, {kind}, n={self.num_vertices}, "
            f"arcs={self.num_arcs}, weighted={self.is_weighted})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        same_weights = (
            (self.weights is None and other.weights is None)
            or (
                self.weights is not None
                and other.weights is not None
                and np.array_equal(self.weights, other.weights)
            )
        )
        return (
            self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and same_weights
        )

    def __hash__(self) -> int:
        return hash(
            (self.num_vertices, self.num_arcs, self.directed, self.is_weighted)
        )

    def __getstate__(self) -> dict:
        # Derived caches (degrees, the spread operator) are dropped so
        # pickles carry only the CSR arrays; the fingerprint rides along
        # because recomputing it hashes every array.
        return {
            "indptr": self.indptr,
            "indices": self.indices,
            "weights": self.weights,
            "directed": self.directed,
            "name": self.name,
            "_fingerprint": self._fingerprint,
        }

    def __setstate__(self, state: dict) -> None:
        for slot in ("indptr", "indices", "weights", "directed", "name"):
            object.__setattr__(self, slot, state[slot])
        self._degrees = None
        self._fingerprint = state.get("_fingerprint")
        self._spread = None
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        if self.weights is not None:
            self.weights.setflags(write=False)


# ----------------------------------------------------------------------
# Shared frontier kernels
#
# Every frontier-driven task (MSSP, BKHS, and the per-arc mass spreading
# in BPPR/PageRank/exact references) used to carry its own copy of the
# ``repeat``/``cumsum`` CSR gather; the helpers below consolidate them
# into one optimized implementation that reuses scratch buffers across
# rounds and replaces ``np.unique`` on composite keys with a sort-based
# reduction.
# ----------------------------------------------------------------------


class FrontierScratch:
    """Reusable buffers for :func:`expand_frontier` across rounds.

    Holds a grow-only cached ``arange`` so per-round expansion skips the
    (measurably hot) ``np.arange`` allocation. The slices handed out are
    read-only views: consume them before requesting a larger size.
    """

    __slots__ = ("_iota",)

    def __init__(self) -> None:
        self._iota = np.empty(0, dtype=np.int64)

    def arange(self, size: int) -> np.ndarray:
        """A ``[0, size)`` arange view from the grow-only cached buffer."""
        if self._iota.size < size:
            self._iota = np.arange(
                max(size, 2 * self._iota.size), dtype=np.int64
            )
        return self._iota[:size]


def expand_frontier(
    graph: Graph,
    verts: np.ndarray,
    scratch=None,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Expand frontier vertices to all their out-arcs (vectorised gather).

    ``scratch`` is anything exposing ``arange(size)`` — the legacy
    :class:`FrontierScratch` or a :class:`repro.graph.arena.ScratchArena`.

    Returns ``(arc_positions, counts, kept)``:

    * ``arc_positions`` — positions into ``graph.indices`` /
      ``graph.weights`` of every out-arc of every frontier entry, in
      frontier order (entry ``i``'s arcs are contiguous);
    * ``counts`` — out-degree of each kept frontier entry; expand any
      per-entry payload to arc granularity with ``np.repeat(x, counts)``
      (chunked copies, much faster than per-element gathers on the
      skewed degree distributions the datasets model);
    * ``kept`` — indices of frontier entries with out-degree > 0, or
      ``None`` when every entry had arcs (no filtering needed —
      zero-degree entries would otherwise corrupt the prefix trick).

    Compared to the naive three-``np.repeat`` gather this fuses the
    base/offset arithmetic into one ``np.repeat`` plus one in-place add
    from the scratch-cached ``arange``.
    """
    counts = graph.degrees[verts]
    kept: Optional[np.ndarray] = None
    if counts.size and counts.min() == 0:
        kept = np.flatnonzero(counts)
        verts = verts[kept]
        counts = counts[kept]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts, kept

    # Each entry's arcs start at indptr[v]; subtracting the exclusive
    # prefix sum first lets one repeat plus the cached arange produce
    # consecutive positions per segment.
    bounds = np.cumsum(counts)
    arc_pos = np.repeat(graph.indptr[verts] - (bounds - counts), counts)
    if scratch is None:
        arc_pos += np.arange(total, dtype=np.int64)
    else:
        arc_pos += scratch.arange(total)
    return arc_pos, counts, kept


def dedup_pairs(
    rows: np.ndarray,
    cols: np.ndarray,
    num_cols: int,
    arena: "Optional[ScratchArena]" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct ``(row, col)`` pairs in row-major order, sort-based.

    Builds composite ``row * num_cols + col`` keys, sorts them in place
    and keeps boundary elements — an order of magnitude faster than
    ``np.unique`` on the same keys — then splits the unique keys back
    with a single ``np.divmod``. With ``arena``, the keys and boundary
    mask live in pooled buffers and the returned arrays are
    arena-backed.
    """
    if rows.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    keys = composite_keys(rows, cols, num_cols, arena)
    boundary = (
        np.empty(keys.size, dtype=bool)
        if arena is None
        else arena.take(keys.size, dtype=bool)
    )
    keys.sort()
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    return _split_keys(keys[boundary], num_cols, arena)


def dedup_pairs_dense(
    rows: np.ndarray,
    cols: np.ndarray,
    mask: np.ndarray,
    arena: "Optional[ScratchArena]" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct ``(row, col)`` pairs via a reusable dense boolean mask.

    For kernels that already hold an ``(s, n)`` state matrix the dense
    scan beats sorting once the candidate list is large enough
    (:func:`use_dense_cells`): mark through *flat* composite keys (one
    indexed store per candidate — measurably faster than 2-D fancy
    indexing), collect with ``np.flatnonzero`` (row-major — the same
    order :func:`dedup_pairs` produces), then un-mark so the mask is
    all-False again for the next round. ``mask`` must be all-False on
    entry.
    """
    flat = mask.reshape(-1)
    keys = composite_keys(rows, cols, mask.shape[1], arena)
    flat[keys] = True
    cells = np.flatnonzero(flat)
    flat[cells] = False
    return _split_keys(cells, mask.shape[1], arena)


#: Sentinel cached on ``Graph._spread`` when scipy is unavailable, so
#: the import is attempted once per graph rather than once per round.
_NO_SPREAD = object()


def _spread_operator(graph: Graph):
    """Lazy per-graph ``A^T`` CSR operator for :func:`propagate_mass`.

    Rows are in-neighbour lists sorted by original arc position (stable
    sort), so a CSR matvec accumulates each target's contributions in
    exactly the arc order ``np.bincount`` uses — bit-identical results,
    at ~2-3x the throughput. Returns ``None`` when scipy is missing
    (the bincount fallback then runs, producing the same bits).
    """
    op = graph._spread
    if op is _NO_SPREAD:
        return None
    if op is None:
        try:
            from scipy import sparse
        except ImportError:  # pragma: no cover - scipy is baked in
            graph._spread = _NO_SPREAD
            return None
        n, m = graph.num_vertices, graph.num_arcs
        order = np.argsort(graph.indices, kind="stable")
        rev_src = graph.edge_sources()[order]
        in_deg = np.bincount(graph.indices, minlength=n)
        rev_indptr = np.concatenate(([0], np.cumsum(in_deg)))
        op = sparse.csr_matrix(
            (np.ones(m, dtype=np.float64), rev_src, rev_indptr),
            shape=(n, n),
        )
        graph._spread = op
    return op


def propagate_mass(graph: Graph, per_vertex: np.ndarray) -> np.ndarray:
    """Push ``per_vertex`` values along every out-arc and sum at targets.

    The shared per-arc spreading step of BPPR/PageRank/exact-PPR:
    ``out[v] = sum(per_vertex[u] for every arc u -> v)``. Callers divide
    by degree beforehand for random-walk semantics. The hot path is a
    cached CSR matvec (:func:`_spread_operator`); without scipy it
    falls back to ``np.repeat`` + weighted ``np.bincount`` — a fused
    sequential scatter-add with the identical accumulation order, so
    both paths produce the same bits. Mapped graphs dispatch to the
    block-streaming scatter *before* the operator path so the O(m)
    scipy matrix is never materialised for an out-of-core graph.
    """
    block_arcs = streaming_block_arcs(graph)
    if block_arcs is not None:
        return _propagate_mass_streaming(graph, per_vertex, block_arcs)
    op = _spread_operator(graph)
    if op is not None:
        shards = kernel_shards(graph.num_arcs)
        if shards > 1:
            return _propagate_mass_sharded(op, per_vertex, shards)
        return op @ per_vertex
    per_arc = np.repeat(per_vertex, graph.degrees)
    return np.bincount(
        graph.indices, weights=per_arc, minlength=graph.num_vertices
    )


# ----------------------------------------------------------------------
# Block streaming (out-of-core graphs)
#
# When the CSR arrays are ``np.memmap`` views over an on-disk file set
# (:class:`repro.graph.io.MappedGraph`), the kernels must not gather or
# repeat O(m) at once: the block helpers below walk the CSR in row
# blocks whose arc totals respect the ``--max-ram`` budget, and the
# streaming kernel variants reduce block-by-block with results that are
# bit-identical to the monolithic paths (the accompanying docstrings
# argue why per reduction; ``tests/graph/test_mmap.py`` asserts it).
# Vertex-proportional state (degrees, distance tables, rank vectors)
# stays resident — the same semi-streaming model as the paper's GraphD,
# which keeps O(n) vertex state in memory and streams the O(m) edges.
# ----------------------------------------------------------------------

#: Budget assumed for mapped graphs when no ``--max-ram`` was given.
DEFAULT_STREAM_BUDGET_BYTES = 256 << 20

#: Working-set bytes one in-flight candidate arc costs in the frontier
#: kernels: arc position, neighbour id, source row, candidate value and
#: the sort/scatter scratch behind the segment reductions (int64 and
#: float64 lanes, roughly ten live per arc across the block pipeline).
STREAM_BYTES_PER_ARC = 96

#: Floor on the streaming block size — below this the per-block numpy
#: dispatch overhead dominates any memory saving.
MIN_STREAM_BLOCK_ARCS = 1 << 16

_STREAMING = {"max_ram_bytes": None}


def configure_streaming(max_ram_bytes: Optional[int] = None) -> Optional[int]:
    """Set (or clear, with ``None``) the process-wide ``--max-ram``
    streaming budget in bytes; returns the new value."""
    if max_ram_bytes is not None:
        max_ram_bytes = int(max_ram_bytes)
        if max_ram_bytes <= 0:
            raise GraphFormatError("--max-ram budget must be positive")
    _STREAMING["max_ram_bytes"] = max_ram_bytes
    return max_ram_bytes


def streaming_budget_bytes() -> Optional[int]:
    """The configured ``--max-ram`` budget, or ``None`` when unset."""
    return _STREAMING["max_ram_bytes"]


def streaming_block_arcs(graph: Graph) -> Optional[int]:
    """Arcs per streaming block for ``graph``, or ``None`` for in-RAM
    graphs (the monolithic fast paths run unchanged)."""
    if not graph.mapped:
        return None
    budget = _STREAMING["max_ram_bytes"] or DEFAULT_STREAM_BUDGET_BYTES
    return max(MIN_STREAM_BLOCK_ARCS, budget // STREAM_BYTES_PER_ARC)


def iter_row_blocks(
    indptr: np.ndarray, max_arcs: int
) -> Iterator[Tuple[int, int]]:
    """Yield ``(row_lo, row_hi)`` slices covering all CSR rows, each
    block holding at most ``max_arcs`` arcs (a single heavier row gets
    a block of its own so progress is always made)."""
    n = indptr.size - 1
    lo = 0
    while lo < n:
        target = int(indptr[lo]) + max_arcs
        hi = int(np.searchsorted(indptr, target, side="right")) - 1
        if hi <= lo:
            hi = lo + 1
        yield lo, min(hi, n)
        lo = hi


def iter_frontier_blocks(
    degrees: np.ndarray, max_arcs: int
) -> Iterator[Tuple[int, int]]:
    """Yield ``(lo, hi)`` frontier slices whose summed out-degree stays
    under ``max_arcs`` (at least one entry per block)."""
    size = degrees.size
    if size == 0:
        return
    bounds = np.cumsum(degrees, dtype=np.int64)
    lo = 0
    while lo < size:
        base = int(bounds[lo - 1]) if lo else 0
        hi = int(np.searchsorted(bounds, base + max_arcs, side="right"))
        if hi <= lo:
            hi = lo + 1
        yield lo, hi
        lo = hi


def _propagate_mass_streaming(
    graph: Graph, per_vertex: np.ndarray, block_arcs: int
) -> np.ndarray:
    """Block-streaming :func:`propagate_mass` over a mapped graph.

    Accumulates with ``np.add.at`` over sequential row blocks: the
    candidate order seen by the accumulator is exactly the arc order of
    the monolithic weighted ``np.bincount`` (and of the scipy matvec,
    whose rows are stable-sorted by arc position), so the float sums are
    bit-identical — per-block *partial* bincounts summed afterwards
    would not be, since float addition is not associative across the
    re-bracketing.
    """
    n = graph.num_vertices
    out = np.zeros(n, dtype=np.float64)
    indptr = graph.indptr
    degrees = graph.degrees
    for lo, hi in iter_row_blocks(indptr, block_arcs):
        arc_lo, arc_hi = int(indptr[lo]), int(indptr[hi])
        if arc_hi == arc_lo:
            continue
        targets = np.asarray(graph.indices[arc_lo:arc_hi])
        per_arc = np.repeat(per_vertex[lo:hi], degrees[lo:hi])
        np.add.at(out, targets, per_arc)
    return out


def segment_min_streaming(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    num_cols: int,
    block_size: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Chunked :func:`segment_min`: reduce ``block_size`` candidates at
    a time and fold each chunk's per-cell minima into a running sorted
    accumulator. ``min`` is order-independent, so the result is
    bit-identical to the monolithic reduction regardless of chunking.
    """
    if rows.size <= block_size:
        return segment_min(rows, cols, values, num_cols)
    acc_keys: Optional[np.ndarray] = None
    acc_vals: Optional[np.ndarray] = None
    for start in range(0, rows.size, block_size):
        stop = start + block_size
        c_rows, c_cols, c_min = segment_min(
            rows[start:stop], cols[start:stop], values[start:stop], num_cols
        )
        keys = c_rows * np.int64(num_cols) + c_cols
        if acc_keys is None:
            acc_keys, acc_vals = keys, c_min
            continue
        acc_keys, acc_vals = _merge_reduce(
            acc_keys, acc_vals, keys, c_min, np.minimum
        )
    cell_rows, cell_cols = np.divmod(acc_keys, np.int64(num_cols))
    return cell_rows, cell_cols, acc_vals


def segment_sum_streaming(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    num_cols: int,
    block_size: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Chunked :func:`segment_sum` with the same exactness regime as the
    monolithic reduction: per-cell sums of all-ones (walk counts) or
    size-one cells are bit-identical; arbitrary float mixes can differ
    in the last ulp across chunk boundaries (float addition is not
    associative), mirroring the documented ``reduceat`` caveat.
    """
    if rows.size <= block_size:
        return segment_sum(rows, cols, values, num_cols)
    acc_keys = None
    acc_vals = None
    for start in range(0, rows.size, block_size):
        stop = start + block_size
        c_rows, c_cols, c_sum = segment_sum(
            rows[start:stop], cols[start:stop], values[start:stop], num_cols
        )
        keys = c_rows * np.int64(num_cols) + c_cols
        if acc_keys is None:
            acc_keys, acc_vals = keys, c_sum
            continue
        acc_keys, acc_vals = _merge_reduce(
            acc_keys, acc_vals, keys, c_sum, np.add
        )
    cell_rows, cell_cols = np.divmod(acc_keys, np.int64(num_cols))
    return cell_rows, cell_cols, acc_vals


def _merge_reduce(
    keys_a: np.ndarray,
    vals_a: np.ndarray,
    keys_b: np.ndarray,
    vals_b: np.ndarray,
    ufunc,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two sorted-unique ``(keys, values)`` runs, combining values
    of shared keys with ``ufunc.reduceat`` (accumulator values first,
    preserving left-to-right accumulation across chunks)."""
    keys = np.concatenate([keys_a, keys_b])
    vals = np.concatenate([vals_a, vals_b])
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    vals = vals[order]
    boundary = np.empty(keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    return keys[starts], ufunc.reduceat(vals, starts)


# ----------------------------------------------------------------------
# Intra-task sharding (repro.perf.kernel_pool)
#
# The sharded variants below cut the candidate list into contiguous
# shards, reduce each shard on the persistent pinned thread pool, and
# fold the per-shard results with :func:`_merge_reduce` in shard order —
# exactly the accumulation the block-streaming kernels perform, so the
# byte-identity arguments carry over verbatim: ``min`` is
# order-independent (any split is bit-identical), and ``sum`` keeps the
# documented exactness regime (all-ones walk counts or size-one cells).
# The kernel_pool import stays lazy so serial processes never pay for —
# or even load — the pool machinery.
# ----------------------------------------------------------------------


def kernel_shards(num_candidates: int) -> int:
    """Shard count for ``num_candidates`` in-flight arcs — 1 (serial)
    unless :mod:`repro.perf.kernel_pool` has been imported *and*
    configured with workers, so untouched processes pay one dict
    lookup, nothing else."""
    import sys

    pool_mod = sys.modules.get("repro.perf.kernel_pool")
    if pool_mod is None:
        return 1
    return pool_mod.choose_shards(num_candidates)


def segment_min_sharded(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    num_cols: int,
    shards: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`segment_min` over candidate shards run in parallel.

    Each contiguous shard reduces independently (fresh buffers — shard
    workers never share an arena), then the sorted-unique runs fold left
    to right with ``np.minimum``. Bit-identical to the monolithic
    reduction at any shard count: per-cell minima of shard minima equal
    the global minima, and the fold emits cells in row-major order.
    """
    if shards <= 1 or rows.size == 0:
        return segment_min(rows, cols, values, num_cols)
    from repro.perf import kernel_pool

    ranges = [
        (rows.size * k // shards, rows.size * (k + 1) // shards)
        for k in range(shards)
    ]
    results = kernel_pool.run_sharded(
        [
            (
                lambda lo=lo, hi=hi: segment_min(
                    rows[lo:hi], cols[lo:hi], values[lo:hi], num_cols
                )
            )
            for lo, hi in ranges
            if hi > lo
        ]
    )
    return _fold_segments(results, num_cols, np.minimum)


def segment_sum_sharded(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    num_cols: int,
    shards: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`segment_sum` over candidate shards run in parallel.

    Same exactness regime as :func:`segment_sum_streaming`: all-ones
    walk counts and size-one cells are bit-identical at any shard
    count; arbitrary float mixes can differ in the last ulp across
    shard boundaries (float addition is not associative).
    """
    if shards <= 1 or rows.size == 0:
        return segment_sum(rows, cols, values, num_cols)
    from repro.perf import kernel_pool

    ranges = [
        (rows.size * k // shards, rows.size * (k + 1) // shards)
        for k in range(shards)
    ]
    results = kernel_pool.run_sharded(
        [
            (
                lambda lo=lo, hi=hi: segment_sum(
                    rows[lo:hi], cols[lo:hi], values[lo:hi], num_cols
                )
            )
            for lo, hi in ranges
            if hi > lo
        ]
    )
    return _fold_segments(results, num_cols, np.add)


def _fold_segments(
    results, num_cols: int, ufunc
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fold per-shard ``(rows, cols, values)`` reductions in shard order."""
    acc_keys: Optional[np.ndarray] = None
    acc_vals: Optional[np.ndarray] = None
    for c_rows, c_cols, c_vals in results:
        if c_rows.size == 0:
            continue
        keys = c_rows * np.int64(num_cols) + c_cols
        if acc_keys is None:
            acc_keys, acc_vals = keys, c_vals
        else:
            acc_keys, acc_vals = _merge_reduce(
                acc_keys, acc_vals, keys, c_vals, ufunc
            )
    if acc_keys is None:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    cell_rows, cell_cols = np.divmod(acc_keys, np.int64(num_cols))
    return cell_rows, cell_cols, acc_vals


def _propagate_mass_sharded(op, per_vertex: np.ndarray, shards: int):
    """Row-sharded CSR matvec for :func:`propagate_mass`.

    The reverse operator's rows are independent dot products, so
    splitting the *output* rows across pool workers is embarrassingly
    parallel and bit-identical: each sub-operator row holds exactly the
    bytes of the full operator's row, and scipy's per-row sequential
    accumulation computes the identical sum. Sub-operators are sliced
    once per (operator, shard count) and cached on the operator object.
    """
    from repro.perf import kernel_pool

    cache = getattr(op, "_repro_row_shards", None)
    if cache is None:
        cache = {}
        op._repro_row_shards = cache
    subops = cache.get(shards)
    if subops is None:
        in_deg = np.diff(op.indptr)
        subops = [
            (lo, hi, op[lo:hi])
            for lo, hi in kernel_pool.shard_bounds(in_deg, shards)
            if hi > lo
        ]
        cache[shards] = subops
    out = np.empty(op.shape[0], dtype=np.float64)

    def matvec(lo: int, hi: int, subop) -> None:
        out[lo:hi] = subop @ per_vertex

    kernel_pool.run_sharded(
        [
            (lambda lo=lo, hi=hi, subop=subop: matvec(lo, hi, subop))
            for lo, hi, subop in subops
        ]
    )
    return out


# ----------------------------------------------------------------------
# Segment reduction scatters
#
# The kernels aggregate per-(row, col) cell with one of two strategies:
#
# * **sort-based** — sort the candidate list by composite cell key and
#   reduce each run with ``ufunc.reduceat``; O(m log m) in candidates,
#   touches nothing proportional to the state matrix. Wins for sparse
#   frontiers.
# * **dense** — scatter through *flat* composite keys into a reusable
#   state-matrix-sized mask/accumulator and scan it once; O(m + cells).
#   Wins once the candidate list is a noticeable fraction of the state
#   matrix (the scan amortises, and numpy's 1-D indexed ``ufunc.at``
#   fast path makes the scatter itself cheap).
#
# One measured constant decides between them for every kernel.
# ----------------------------------------------------------------------

#: Measured crossover for choosing the dense (boolean-mask / dense
#: accumulator) strategy over the sort-based one: dense wins once the
#: candidate list carries at least this many entries per state-matrix
#: cell. Measured with ``benchmarks/kernel_bench.py --crossover`` on the
#: reference machine (argsort+reduceat vs flat-key scatter + mask scan
#: over s*n cells; the two cost curves cross between 1/32 and 1/16
#: candidates per cell). The old per-task heuristic
#: (``candidates * 8 >= cells``) hard-coded a ratio of 1/8 with no
#: measurement behind it and compared message rows to mask *cells* —
#: the constant now lives in one place, next to the benchmark that
#: produced it.
DENSE_CANDIDATES_PER_CELL = 1.0 / 16.0


def use_dense_cells(num_candidates: int, num_cells: int) -> bool:
    """True when the dense (mask/accumulator) scatter strategy should be
    used for ``num_candidates`` updates into a ``num_cells`` state
    matrix; the single decision point shared by the dedup and
    segment-reduction paths of every kernel."""
    return num_candidates >= DENSE_CANDIDATES_PER_CELL * num_cells


def composite_keys(
    rows: np.ndarray,
    cols: np.ndarray,
    num_cols: int,
    arena: "Optional[ScratchArena]" = None,
) -> np.ndarray:
    """Flat ``row * num_cols + col`` cell keys (arena-pooled if given)."""
    if arena is None:
        keys = rows * np.int64(num_cols)
    else:
        keys = np.multiply(rows, np.int64(num_cols), out=arena.take(rows.size))
    keys += cols
    return keys


def _sorted_segments(
    rows: np.ndarray,
    cols: np.ndarray,
    num_cols: int,
    arena: "Optional[ScratchArena]" = None,
    stable: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort candidates by composite ``(row, col)`` key.

    Returns ``(order, sorted_keys, starts)`` where ``order`` is a
    permutation grouping equal cells together and ``starts`` marks each
    distinct cell's first position. ``stable=True`` preserves the
    original candidate order within a cell (needed when the downstream
    reduction is order-sensitive); order-independent reductions such as
    ``min`` pass ``stable=False`` for the ~4x faster introsort.
    """
    size = rows.size
    keys = composite_keys(rows, cols, num_cols, arena)
    order = np.argsort(keys, kind="stable" if stable else None)
    if arena is None:
        sorted_keys = keys[order]
    else:
        sorted_keys = np.take(keys, order, out=arena.take(size))
    boundary = (
        np.empty(size, dtype=bool)
        if arena is None
        else arena.take(size, dtype=bool)
    )
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    return order, sorted_keys, starts


def _split_keys(
    keys: np.ndarray,
    num_cols: int,
    arena: "Optional[ScratchArena]" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split composite keys back into ``(rows, cols)``."""
    if arena is None:
        return np.divmod(keys, np.int64(num_cols))
    rows = np.floor_divide(keys, np.int64(num_cols), out=arena.take(keys.size))
    cols = np.remainder(keys, np.int64(num_cols), out=arena.take(keys.size))
    return rows, cols


def segment_min(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    num_cols: int,
    arena: "Optional[ScratchArena]" = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Minimum of ``values`` per distinct ``(row, col)`` cell.

    Returns ``(cell_rows, cell_cols, minima)`` in row-major cell order —
    the same cells, in the same order, as :func:`dedup_pairs` on the
    same input, with the per-cell minimum attached. Bit-identical to
    ``np.minimum.at`` into an all-``inf`` accumulator followed by a
    sparse collect (``min`` is order-independent, so the unstable — and
    measurably faster — introsort is safe), but via one argsort and one
    ``np.minimum.reduceat`` over the grouped candidates.

    With ``arena``, every intermediate lives in pooled buffers and the
    returned arrays are arena-backed (valid for the arena's keepalive
    window — copy to persist longer).
    """
    if rows.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=values.dtype)
    order, sorted_keys, starts = _sorted_segments(
        rows, cols, num_cols, arena, stable=False
    )
    if arena is None:
        sorted_values = values[order]
        minima = np.minimum.reduceat(sorted_values, starts)
    else:
        sorted_values = np.take(
            values, order, out=arena.take(values.size, dtype=values.dtype)
        )
        minima = np.minimum.reduceat(
            sorted_values, starts, out=arena.take(starts.size, values.dtype)
        )
    cell_rows, cell_cols = _split_keys(sorted_keys[starts], num_cols, arena)
    return cell_rows, cell_cols, minima


def segment_sum(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    num_cols: int,
    arena: "Optional[ScratchArena]" = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sum of ``values`` per distinct ``(row, col)`` cell.

    Same contract as :func:`segment_min` with ``np.add.reduceat`` as the
    reducer. The stable sort preserves each cell's original candidate
    order, but ``np.add.reduceat`` reduces each run with *pairwise*
    summation while ``np.add.at`` accumulates sequentially — for
    general float inputs the per-cell sums can therefore differ in the
    last ulp. Every in-repo call site keeps exactness anyway: the
    summands per cell are either all-ones walk counts (integer-exact in
    float64) or equal per-source shares on duplicate-free arc lists
    (cells of size one). The equivalence tests assert bit-identity for
    those regimes and ``allclose`` for arbitrary floats.
    """
    if rows.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=values.dtype)
    order, sorted_keys, starts = _sorted_segments(rows, cols, num_cols, arena)
    if arena is None:
        sorted_values = values[order]
        sums = np.add.reduceat(sorted_values, starts)
    else:
        sorted_values = np.take(
            values, order, out=arena.take(values.size, dtype=values.dtype)
        )
        sums = np.add.reduceat(
            sorted_values, starts, out=arena.take(starts.size, values.dtype)
        )
    cell_rows, cell_cols = _split_keys(sorted_keys[starts], num_cols, arena)
    return cell_rows, cell_cols, sums


def scatter_min_dense(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    state: np.ndarray,
    mask: np.ndarray,
    arena: "Optional[ScratchArena]" = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused dense-strategy scatter: ``np.minimum.at`` of ``values``
    directly into the 2-D ``state`` matrix, in place.

    Returns ``(cells, before, after)`` where ``cells`` are the *flat*
    row-major indices of every touched cell and ``before``/``after``
    hold the cell's state value around the scatter (so callers diff
    them to find improvements). Both the mark and the minimum run
    through flat composite keys — numpy's 1-D indexed ``ufunc.at`` fast
    path, several times faster than 2-D fancy-index scatters. ``mask``
    must be all-False on entry and is restored before returning;
    recover coordinates with ``divmod(cells, state.shape[1])``.
    """
    num_cols = state.shape[1]
    keys = composite_keys(rows, cols, num_cols, arena)
    flat_mask = mask.reshape(-1)
    flat_state = state.reshape(-1)
    flat_mask[keys] = True
    cells = np.flatnonzero(flat_mask)
    flat_mask[cells] = False
    if arena is None:
        before = flat_state[cells]
        np.minimum.at(flat_state, keys, values)
        after = flat_state[cells]
    else:
        before = np.take(
            flat_state, cells, out=arena.take(cells.size, state.dtype)
        )
        np.minimum.at(flat_state, keys, values)
        after = np.take(
            flat_state, cells, out=arena.take(cells.size, state.dtype)
        )
    return cells, before, after
