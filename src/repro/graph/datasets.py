"""The six paper dataset profiles (Table 1) and scaled instantiation.

The paper evaluates on Web-St, DBLP, LiveJournal, Orkut, Twitter and
Friendster from SNAP. Offline we reproduce each as a *profile* — node
count, edge count, average degree, skew class — instantiated as a
synthetic Chung-Lu graph at a configurable ``scale`` (nodes divided by
``scale``). The simulated clusters divide their per-machine memory by the
same factor (see :mod:`repro.cluster.cluster`), which preserves the
memory-pressure ratios that drive every experiment in the paper.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import Graph, streaming_budget_bytes
from repro.graph.generators import chung_lu
from repro.perf import timings
from repro.perf.cache import ArraySerializer, clear_cache, get_cache
from repro.rng import DEFAULT_SEED, SeedLike, derive_seed

#: Default graph-and-memory scale factor. 1/400 keeps the largest profile
#: (Friendster, 65.6M nodes) at ~164K synthetic nodes — tractable in
#: numpy while preserving workload-to-memory ratios.
DEFAULT_SCALE = 400

#: Transient working-set bytes per sampled arc of the in-RAM build path
#: (both endpoint draws, composite keys, the dedup sort copy and mask);
#: used to predict whether a profile fits the ``--max-ram`` budget.
IN_RAM_BUILD_BYTES_PER_ARC = 72


@dataclass(frozen=True)
class DatasetProfile:
    """Statistics of one paper dataset (Table 1 row).

    ``power_law_exponent`` controls degree skew of the synthetic stand-in:
    social graphs get heavier tails than the web/co-author graphs.
    """

    name: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    source: str
    directed: bool = True
    power_law_exponent: float = 2.1

    def scaled_nodes(self, scale: int) -> int:
        """Synthetic node count at the given scale (minimum 64)."""
        return max(64, int(round(self.num_nodes / scale)))

    def instantiate(
        self, scale: int = DEFAULT_SCALE, seed: SeedLike = None
    ) -> Graph:
        """Generate the synthetic stand-in graph at ``scale``."""
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        n = self.scaled_nodes(scale)
        if seed is None:
            # Stable per-dataset default seed (process-independent).
            seed = derive_seed(DEFAULT_SEED, f"dataset:{self.name}")
        graph = chung_lu(
            n,
            avg_degree=self.avg_degree,
            exponent=self.power_law_exponent,
            directed=self.directed,
            seed=seed,
            name=self.name,
        )
        return graph

    def estimated_build_bytes(self, scale: int) -> int:
        """Predicted transient peak of :meth:`instantiate` — what the
        ``--max-ram`` auto-dispatch compares against the budget."""
        n = self.scaled_nodes(scale)
        arcs = int(round(n * self.avg_degree * 1.12))
        if not self.directed:
            arcs *= 2
        return arcs * IN_RAM_BUILD_BYTES_PER_ARC + n * 24

    def instantiate_mapped(
        self,
        scale: int = DEFAULT_SCALE,
        seed: SeedLike = None,
        directory: Optional[str] = None,
        block_edges: Optional[int] = None,
    ) -> Graph:
        """Out-of-core twin of :meth:`instantiate`: chunked generation
        through the external-merge builder into a CSR directory,
        byte-identical to the in-RAM graph (same seed stream, same
        dedup order — ``tests/perf/test_determinism.py`` asserts it at
        the default scale)."""
        from repro.graph.build import build_csr_on_disk, choose_block_edges
        from repro.graph.generators import chung_lu_edge_blocks

        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        if directory is None:
            raise ConfigurationError(
                "instantiate_mapped needs a target directory"
            )
        n = self.scaled_nodes(scale)
        if seed is None:
            seed = derive_seed(DEFAULT_SEED, f"dataset:{self.name}")
        blocks = chung_lu_edge_blocks(
            n,
            self.avg_degree,
            exponent=self.power_law_exponent,
            seed=seed,
            block_edges=block_edges or choose_block_edges(self.directed),
        )
        return build_csr_on_disk(
            blocks,
            num_vertices=n,
            directory=directory,
            directed=self.directed,
            dedup=True,
            drop_self_loops=True,
            name=self.name,
        )


#: Table 1 of the paper (K = 1e3, M = 1e6, B = 1e9).
PAPER_DATASETS: Dict[str, DatasetProfile] = {
    "web-st": DatasetProfile(
        name="web-st",
        num_nodes=281_900,
        num_edges=2_300_000,
        avg_degree=8.2,
        source="stanford.edu",
        power_law_exponent=2.3,
    ),
    "dblp": DatasetProfile(
        name="dblp",
        num_nodes=613_600,
        num_edges=4_000_000,
        avg_degree=6.5,
        source="dblp.com",
        directed=False,
        power_law_exponent=2.4,
    ),
    "livejournal": DatasetProfile(
        name="livejournal",
        num_nodes=4_000_000,
        num_edges=34_700_000,
        avg_degree=8.7,
        source="livejournal.com",
        power_law_exponent=2.2,
    ),
    "orkut": DatasetProfile(
        name="orkut",
        num_nodes=3_100_000,
        num_edges=117_200_000,
        avg_degree=36.9,
        source="orkut.com",
        directed=False,
        power_law_exponent=2.0,
    ),
    "twitter": DatasetProfile(
        name="twitter",
        num_nodes=41_700_000,
        num_edges=1_500_000_000,
        avg_degree=35.2,
        source="twitter.com",
        power_law_exponent=1.9,
    ),
    "friendster": DatasetProfile(
        name="friendster",
        num_nodes=65_600_000,
        num_edges=1_800_000_000,
        avg_degree=46.1,
        source="snap.stanford.edu",
        directed=False,
        power_law_exponent=2.1,
    ),
}

def _pack_graph(graph: Graph) -> Dict[str, np.ndarray]:
    arrays = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "directed": np.asarray([graph.directed]),
        "name": np.asarray([graph.name]),
    }
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    return arrays


def _unpack_graph(arrays: Dict[str, np.ndarray]) -> Graph:
    return Graph(
        arrays["indptr"],
        arrays["indices"],
        arrays.get("weights"),
        directed=bool(arrays["directed"][0]),
        name=str(arrays["name"][0]),
    )


#: Serializer persisting dataset stand-ins in the shared artifact cache
#: (same layout as :func:`repro.graph.io.save_npz`).
GRAPH_SERIALIZER = ArraySerializer(pack=_pack_graph, unpack=_unpack_graph)


# ----------------------------------------------------------------------
# Out-of-core dispatch
# ----------------------------------------------------------------------

_OOC: Dict[str, Optional[str]] = {"force": None, "directory": None}
_SESSION_TMP: Dict[str, Optional[str]] = {"path": None}


def configure_out_of_core(
    force: Optional[bool] = None, directory: Optional[str] = None
) -> None:
    """Override the out-of-core auto-dispatch.

    ``force=True`` always builds mapped, ``force=False`` never does,
    ``None`` restores the budget-based decision (:func:`_use_mapped`).
    ``directory`` pins where CSR directories land (tests point it at a
    tmpdir); ``None`` falls back to the cache directory or a session
    tempdir. Worker processes inherit the setting over ``fork``.
    """
    _OOC["force"] = force
    _OOC["directory"] = directory


def _use_mapped(profile: DatasetProfile, scale: int) -> bool:
    """Mapped iff forced, or a ``--max-ram`` budget is set and the
    in-RAM build's predicted peak exceeds it."""
    force = _OOC["force"]
    if force is not None:
        return bool(force)
    budget = streaming_budget_bytes()
    if budget is None:
        return False
    return profile.estimated_build_bytes(scale) > budget


def _session_tmp() -> str:
    """Lazy per-process scratch root for CSR directories when no cache
    directory is configured; removed at interpreter exit."""
    if _SESSION_TMP["path"] is None:
        path = tempfile.mkdtemp(prefix="repro-mapped-")
        atexit.register(shutil.rmtree, path, ignore_errors=True)
        _SESSION_TMP["path"] = path
    return _SESSION_TMP["path"]


def _load_mapped(
    profile: DatasetProfile,
    key_name: str,
    scale: int,
    seed: Optional[int],
    cache: bool,
    cache_dir: Optional[str],
) -> Graph:
    from repro.graph.io import load_csr_dir

    key = ("dataset-mapped", key_name, scale, seed)
    cache_obj = get_cache()
    root = _OOC["directory"] or cache_dir or cache_obj.directory
    directory = cache_obj.artifact_directory(
        key, stem=key_name, directory=root or _session_tmp()
    )

    def build() -> Graph:
        # Warm disk: the CSR file set persists like an .npz artifact
        # and re-opens in milliseconds. A torn directory (crash mid
        # build) is quarantined as ``<dir>.corrupt`` and rebuilt fresh.
        mapped = load_csr_dir(directory)
        if mapped is not None:
            return mapped
        with timings.span("graph-gen"):
            return profile.instantiate_mapped(
                scale=scale, seed=seed, directory=directory
            )

    return cache_obj.get_or_build(key, build, use_memory=cache)


def load_dataset(
    name: str,
    scale: int = DEFAULT_SCALE,
    seed: Optional[int] = None,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> Graph:
    """Instantiate (and memoise) a paper dataset stand-in by name.

    ``name`` is case-insensitive and matches Table 1 ("DBLP", "Web-St",
    ...). Instantiations go through the shared artifact cache
    (:mod:`repro.perf.cache`): the in-memory LRU makes experiment sweeps
    cheap — pass ``cache=False`` for an independent copy — and a cache
    directory (``cache_dir``, ``--cache-dir``, or the ``REPRO_CACHE_DIR``
    / legacy ``REPRO_DATASET_CACHE`` environment variables) additionally
    persists ``.npz`` archives so the large stand-ins (Twitter,
    Friendster) load in milliseconds across processes.

    With a ``--max-ram`` budget the in-RAM build cannot meet (or when
    forced via :func:`configure_out_of_core`), the profile is built
    out-of-core instead — chunked generation through the external merge
    into a CSR directory — and served as a byte-identical
    :class:`repro.graph.io.MappedGraph`; the streaming kernels then
    dispatch automatically.
    """
    key_name = name.strip().lower().replace("_", "-")
    if key_name not in PAPER_DATASETS:
        known = ", ".join(sorted(PAPER_DATASETS))
        raise ConfigurationError(f"unknown dataset {name!r}; known: {known}")

    if cache:
        # Pool workers: the parent may have exported this graph into
        # shared memory (repro.perf.shm); attaching is a zero-copy mmap
        # (or a re-opened CSR directory for mapped graphs), so it beats
        # even a warm LRU rebuild-from-disk. A miss falls through to
        # the regular cache path.
        from repro.perf.shm import lookup_shared

        shared = lookup_shared(("dataset", key_name, scale, seed))
        if shared is not None:
            return shared

    profile = PAPER_DATASETS[key_name]
    if _use_mapped(profile, scale):
        return _load_mapped(profile, key_name, scale, seed, cache, cache_dir)

    def build() -> Graph:
        with timings.span("graph-gen"):
            return PAPER_DATASETS[key_name].instantiate(
                scale=scale, seed=seed
            )

    return get_cache().get_or_build(
        ("dataset", key_name, scale, seed),
        build,
        serializer=GRAPH_SERIALIZER,
        use_memory=cache,
        directory=cache_dir,
        stem=key_name,
    )


def clear_dataset_cache() -> None:
    """Drop all memoised artifacts, datasets included (used by tests)."""
    clear_cache()
