"""The six paper dataset profiles (Table 1) and scaled instantiation.

The paper evaluates on Web-St, DBLP, LiveJournal, Orkut, Twitter and
Friendster from SNAP. Offline we reproduce each as a *profile* — node
count, edge count, average degree, skew class — instantiated as a
synthetic Chung-Lu graph at a configurable ``scale`` (nodes divided by
``scale``). The simulated clusters divide their per-machine memory by the
same factor (see :mod:`repro.cluster.cluster`), which preserves the
memory-pressure ratios that drive every experiment in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import Graph
from repro.graph.generators import chung_lu
from repro.perf import timings
from repro.perf.cache import ArraySerializer, clear_cache, get_cache
from repro.rng import DEFAULT_SEED, SeedLike, derive_seed

#: Default graph-and-memory scale factor. 1/400 keeps the largest profile
#: (Friendster, 65.6M nodes) at ~164K synthetic nodes — tractable in
#: numpy while preserving workload-to-memory ratios.
DEFAULT_SCALE = 400


@dataclass(frozen=True)
class DatasetProfile:
    """Statistics of one paper dataset (Table 1 row).

    ``power_law_exponent`` controls degree skew of the synthetic stand-in:
    social graphs get heavier tails than the web/co-author graphs.
    """

    name: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    source: str
    directed: bool = True
    power_law_exponent: float = 2.1

    def scaled_nodes(self, scale: int) -> int:
        """Synthetic node count at the given scale (minimum 64)."""
        return max(64, int(round(self.num_nodes / scale)))

    def instantiate(
        self, scale: int = DEFAULT_SCALE, seed: SeedLike = None
    ) -> Graph:
        """Generate the synthetic stand-in graph at ``scale``."""
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        n = self.scaled_nodes(scale)
        if seed is None:
            # Stable per-dataset default seed (process-independent).
            seed = derive_seed(DEFAULT_SEED, f"dataset:{self.name}")
        graph = chung_lu(
            n,
            avg_degree=self.avg_degree,
            exponent=self.power_law_exponent,
            directed=self.directed,
            seed=seed,
            name=self.name,
        )
        return graph


#: Table 1 of the paper (K = 1e3, M = 1e6, B = 1e9).
PAPER_DATASETS: Dict[str, DatasetProfile] = {
    "web-st": DatasetProfile(
        name="web-st",
        num_nodes=281_900,
        num_edges=2_300_000,
        avg_degree=8.2,
        source="stanford.edu",
        power_law_exponent=2.3,
    ),
    "dblp": DatasetProfile(
        name="dblp",
        num_nodes=613_600,
        num_edges=4_000_000,
        avg_degree=6.5,
        source="dblp.com",
        directed=False,
        power_law_exponent=2.4,
    ),
    "livejournal": DatasetProfile(
        name="livejournal",
        num_nodes=4_000_000,
        num_edges=34_700_000,
        avg_degree=8.7,
        source="livejournal.com",
        power_law_exponent=2.2,
    ),
    "orkut": DatasetProfile(
        name="orkut",
        num_nodes=3_100_000,
        num_edges=117_200_000,
        avg_degree=36.9,
        source="orkut.com",
        directed=False,
        power_law_exponent=2.0,
    ),
    "twitter": DatasetProfile(
        name="twitter",
        num_nodes=41_700_000,
        num_edges=1_500_000_000,
        avg_degree=35.2,
        source="twitter.com",
        power_law_exponent=1.9,
    ),
    "friendster": DatasetProfile(
        name="friendster",
        num_nodes=65_600_000,
        num_edges=1_800_000_000,
        avg_degree=46.1,
        source="snap.stanford.edu",
        directed=False,
        power_law_exponent=2.1,
    ),
}

def _pack_graph(graph: Graph) -> Dict[str, np.ndarray]:
    arrays = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "directed": np.asarray([graph.directed]),
        "name": np.asarray([graph.name]),
    }
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    return arrays


def _unpack_graph(arrays: Dict[str, np.ndarray]) -> Graph:
    return Graph(
        arrays["indptr"],
        arrays["indices"],
        arrays.get("weights"),
        directed=bool(arrays["directed"][0]),
        name=str(arrays["name"][0]),
    )


#: Serializer persisting dataset stand-ins in the shared artifact cache
#: (same layout as :func:`repro.graph.io.save_npz`).
GRAPH_SERIALIZER = ArraySerializer(pack=_pack_graph, unpack=_unpack_graph)


def load_dataset(
    name: str,
    scale: int = DEFAULT_SCALE,
    seed: Optional[int] = None,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> Graph:
    """Instantiate (and memoise) a paper dataset stand-in by name.

    ``name`` is case-insensitive and matches Table 1 ("DBLP", "Web-St",
    ...). Instantiations go through the shared artifact cache
    (:mod:`repro.perf.cache`): the in-memory LRU makes experiment sweeps
    cheap — pass ``cache=False`` for an independent copy — and a cache
    directory (``cache_dir``, ``--cache-dir``, or the ``REPRO_CACHE_DIR``
    / legacy ``REPRO_DATASET_CACHE`` environment variables) additionally
    persists ``.npz`` archives so the large stand-ins (Twitter,
    Friendster) load in milliseconds across processes.
    """
    key_name = name.strip().lower().replace("_", "-")
    if key_name not in PAPER_DATASETS:
        known = ", ".join(sorted(PAPER_DATASETS))
        raise ConfigurationError(f"unknown dataset {name!r}; known: {known}")

    if cache:
        # Pool workers: the parent may have exported this graph into
        # shared memory (repro.perf.shm); attaching is a zero-copy mmap,
        # so it beats even a warm LRU rebuild-from-disk. A miss falls
        # through to the regular cache path.
        from repro.perf.shm import lookup_shared

        shared = lookup_shared(("dataset", key_name, scale, seed))
        if shared is not None:
            return shared

    def build() -> Graph:
        with timings.span("graph-gen"):
            return PAPER_DATASETS[key_name].instantiate(
                scale=scale, seed=seed
            )

    return get_cache().get_or_build(
        ("dataset", key_name, scale, seed),
        build,
        serializer=GRAPH_SERIALIZER,
        use_memory=cache,
        directory=cache_dir,
        stem=key_name,
    )


def clear_dataset_cache() -> None:
    """Drop all memoised artifacts, datasets included (used by tests)."""
    clear_cache()
