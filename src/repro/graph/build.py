"""Builders that turn edge collections into :class:`~repro.graph.csr.Graph`.

The builders accept anything array-like: a sequence of ``(src, dst)`` or
``(src, dst, weight)`` tuples, or separate numpy arrays. Options cover the
clean-ups the paper's loaders perform implicitly: symmetrising an
undirected edge list, dropping self loops, and de-duplicating parallel
edges.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import Graph

EdgeLike = Union[Tuple[int, int], Tuple[int, int, float], Sequence[float]]


def from_edges(
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray] = None,
    num_vertices: Optional[int] = None,
    directed: bool = True,
    dedup: bool = False,
    drop_self_loops: bool = False,
    name: str = "graph",
) -> Graph:
    """Build a CSR :class:`Graph` from parallel arrays of arc endpoints.

    Parameters
    ----------
    src, dst:
        arc endpoints; integer arrays of equal length.
    weights:
        optional per-arc weights.
    num_vertices:
        total vertex count; inferred as ``max(endpoint) + 1`` when omitted.
    directed:
        if ``False``, the reverse of every arc is added (unless already
        present and ``dedup`` is set) and the result reports undirected
        edge counts.
    dedup:
        drop duplicate ``(src, dst)`` pairs, keeping the minimum weight
        (the natural choice for shortest-path workloads).
    drop_self_loops:
        remove arcs with ``src == dst``.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise GraphFormatError("src and dst arrays must have equal length")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape != src.shape:
            raise GraphFormatError("weights must align with src/dst")

    if src.size and (src.min() < 0 or dst.min() < 0):
        raise GraphFormatError("vertex ids must be non-negative")
    inferred_n = int(max(src.max(), dst.max()) + 1) if src.size else 0
    if num_vertices is None:
        num_vertices = inferred_n
    elif num_vertices < inferred_n:
        raise GraphFormatError(
            f"num_vertices={num_vertices} but edges reference vertex "
            f"{inferred_n - 1}"
        )

    if drop_self_loops and src.size:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if weights is not None:
            weights = weights[keep]

    if not directed and src.size:
        src, dst, weights = _symmetrise(src, dst, weights)

    if dedup and src.size:
        # _dedup_min_weight emits arcs in (src, dst) order, so the
        # lexsort below would be an identity permutation — skip it.
        src, dst, weights = _dedup_min_weight(src, dst, weights, num_vertices)
    else:
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if weights is not None:
            weights = weights[order]

    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return Graph(indptr, dst, weights, directed=directed, name=name)


def from_edge_list(
    edges: Iterable[EdgeLike],
    num_vertices: Optional[int] = None,
    directed: bool = True,
    dedup: bool = False,
    drop_self_loops: bool = False,
    name: str = "graph",
) -> Graph:
    """Build a graph from an iterable of ``(src, dst[, weight])`` tuples."""
    edge_list = list(edges)
    if not edge_list:
        return from_edges(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            num_vertices=num_vertices or 0,
            directed=directed,
            name=name,
        )
    widths = {len(e) for e in edge_list}
    if widths == {2}:
        arr = np.asarray(edge_list, dtype=np.int64)
        weights = None
    elif widths == {3}:
        raw = np.asarray(edge_list, dtype=np.float64)
        arr = raw[:, :2].astype(np.int64)
        weights = raw[:, 2]
    else:
        raise GraphFormatError(
            "edges must be uniformly (src, dst) or (src, dst, weight) tuples"
        )
    return from_edges(
        arr[:, 0],
        arr[:, 1],
        weights,
        num_vertices=num_vertices,
        directed=directed,
        dedup=dedup,
        drop_self_loops=drop_self_loops,
        name=name,
    )


def _symmetrise(
    src: np.ndarray, dst: np.ndarray, weights: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Append the reverse of every arc (caller dedups if needed)."""
    new_src = np.concatenate([src, dst])
    new_dst = np.concatenate([dst, src])
    new_weights = None if weights is None else np.concatenate([weights, weights])
    return new_src, new_dst, new_weights


def _dedup_min_weight(
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray],
    num_vertices: int,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Collapse duplicate arcs, keeping the smallest weight per pair.

    Output arcs are sorted by ``(src, dst)`` — i.e. by composite key —
    which lets :func:`from_edges` skip its lexsort after dedup. The
    unweighted path sorts explicitly rather than calling ``np.unique``:
    numpy's hash-based unique is ~50x slower than sort+mask on these
    millions-of-random-int64 key arrays, and both return the same
    sorted uniques.
    """
    keys = src * np.int64(num_vertices) + dst
    if weights is None:
        keys = np.sort(keys)
        first = np.empty(keys.size, dtype=bool)
        first[0] = True
        np.not_equal(keys[1:], keys[:-1], out=first[1:])
        unique_keys = keys[first]
        return unique_keys // num_vertices, unique_keys % num_vertices, None
    order = np.lexsort((weights, keys))
    keys_sorted = keys[order]
    first = np.concatenate(([True], keys_sorted[1:] != keys_sorted[:-1]))
    chosen = order[first]
    return src[chosen], dst[chosen], weights[chosen]
