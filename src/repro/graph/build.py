"""Builders that turn edge collections into :class:`~repro.graph.csr.Graph`.

The builders accept anything array-like: a sequence of ``(src, dst)`` or
``(src, dst, weight)`` tuples, or separate numpy arrays. Options cover the
clean-ups the paper's loaders perform implicitly: symmetrising an
undirected edge list, dropping self loops, and de-duplicating parallel
edges.
"""

from __future__ import annotations

import os
import shutil
from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import Graph

EdgeLike = Union[Tuple[int, int], Tuple[int, int, float], Sequence[float]]


def from_edges(
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray] = None,
    num_vertices: Optional[int] = None,
    directed: bool = True,
    dedup: bool = False,
    drop_self_loops: bool = False,
    name: str = "graph",
) -> Graph:
    """Build a CSR :class:`Graph` from parallel arrays of arc endpoints.

    Parameters
    ----------
    src, dst:
        arc endpoints; integer arrays of equal length.
    weights:
        optional per-arc weights.
    num_vertices:
        total vertex count; inferred as ``max(endpoint) + 1`` when omitted.
    directed:
        if ``False``, the reverse of every arc is added (unless already
        present and ``dedup`` is set) and the result reports undirected
        edge counts.
    dedup:
        drop duplicate ``(src, dst)`` pairs, keeping the minimum weight
        (the natural choice for shortest-path workloads).
    drop_self_loops:
        remove arcs with ``src == dst``.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise GraphFormatError("src and dst arrays must have equal length")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape != src.shape:
            raise GraphFormatError("weights must align with src/dst")

    if src.size and (src.min() < 0 or dst.min() < 0):
        raise GraphFormatError("vertex ids must be non-negative")
    inferred_n = int(max(src.max(), dst.max()) + 1) if src.size else 0
    if num_vertices is None:
        num_vertices = inferred_n
    elif num_vertices < inferred_n:
        raise GraphFormatError(
            f"num_vertices={num_vertices} but edges reference vertex "
            f"{inferred_n - 1}"
        )

    if drop_self_loops and src.size:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if weights is not None:
            weights = weights[keep]

    if not directed and src.size:
        src, dst, weights = _symmetrise(src, dst, weights)

    if dedup and src.size:
        # _dedup_min_weight emits arcs in (src, dst) order, so the
        # lexsort below would be an identity permutation — skip it.
        src, dst, weights = _dedup_min_weight(src, dst, weights, num_vertices)
    else:
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if weights is not None:
            weights = weights[order]

    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return Graph(indptr, dst, weights, directed=directed, name=name)


def from_edge_list(
    edges: Iterable[EdgeLike],
    num_vertices: Optional[int] = None,
    directed: bool = True,
    dedup: bool = False,
    drop_self_loops: bool = False,
    name: str = "graph",
) -> Graph:
    """Build a graph from an iterable of ``(src, dst[, weight])`` tuples."""
    edge_list = list(edges)
    if not edge_list:
        return from_edges(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            num_vertices=num_vertices or 0,
            directed=directed,
            name=name,
        )
    widths = {len(e) for e in edge_list}
    if widths == {2}:
        arr = np.asarray(edge_list, dtype=np.int64)
        weights = None
    elif widths == {3}:
        raw = np.asarray(edge_list, dtype=np.float64)
        arr = raw[:, :2].astype(np.int64)
        weights = raw[:, 2]
    else:
        raise GraphFormatError(
            "edges must be uniformly (src, dst) or (src, dst, weight) tuples"
        )
    return from_edges(
        arr[:, 0],
        arr[:, 1],
        weights,
        num_vertices=num_vertices,
        directed=directed,
        dedup=dedup,
        drop_self_loops=drop_self_loops,
        name=name,
    )


def _symmetrise(
    src: np.ndarray, dst: np.ndarray, weights: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Append the reverse of every arc (caller dedups if needed)."""
    new_src = np.concatenate([src, dst])
    new_dst = np.concatenate([dst, src])
    new_weights = None if weights is None else np.concatenate([weights, weights])
    return new_src, new_dst, new_weights


def _dedup_min_weight(
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray],
    num_vertices: int,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Collapse duplicate arcs, keeping the smallest weight per pair.

    Output arcs are sorted by ``(src, dst)`` — i.e. by composite key —
    which lets :func:`from_edges` skip its lexsort after dedup. The
    unweighted path sorts explicitly rather than calling ``np.unique``:
    numpy's hash-based unique is ~50x slower than sort+mask on these
    millions-of-random-int64 key arrays, and both return the same
    sorted uniques.
    """
    keys = src * np.int64(num_vertices) + dst
    if weights is None:
        keys = np.sort(keys)
        first = np.empty(keys.size, dtype=bool)
        first[0] = True
        np.not_equal(keys[1:], keys[:-1], out=first[1:])
        unique_keys = keys[first]
        return unique_keys // num_vertices, unique_keys % num_vertices, None
    order = np.lexsort((weights, keys))
    keys_sorted = keys[order]
    first = np.concatenate(([True], keys_sorted[1:] != keys_sorted[:-1]))
    chosen = order[first]
    return src[chosen], dst[chosen], weights[chosen]


# ----------------------------------------------------------------------
# Out-of-core build: edge blocks -> external merge -> on-disk CSR
# ----------------------------------------------------------------------

#: Working bytes one in-flight edge costs inside the chunked builder:
#: the endpoint draws, composite keys, the sort copy, and the boundary
#: mask (undirected graphs double it for the symmetrised reverse arcs).
BUILD_BYTES_PER_EDGE = 48

#: Elements loaded per run per refill during the K-way merge.
DEFAULT_MERGE_CHUNK = 1 << 18


def choose_block_edges(
    directed: bool = True, budget_bytes: Optional[int] = None
) -> int:
    """Edges per generation block honouring the ``--max-ram`` budget
    (half the budget goes to the block in flight, half to the merge
    buffers and counts array)."""
    from repro.graph.csr import (
        DEFAULT_STREAM_BUDGET_BYTES,
        streaming_budget_bytes,
    )

    budget = (
        budget_bytes
        or streaming_budget_bytes()
        or DEFAULT_STREAM_BUDGET_BYTES
    )
    per_edge = BUILD_BYTES_PER_EDGE * (1 if directed else 2)
    return int(min(max(budget // (per_edge * 2), 1 << 16), 1 << 23))


def build_csr_on_disk(
    blocks: Iterable[Tuple[np.ndarray, ...]],
    num_vertices: int,
    directory: "os.PathLike[str]",
    directed: bool = True,
    dedup: bool = True,
    drop_self_loops: bool = True,
    name: str = "graph",
    merge_chunk: int = DEFAULT_MERGE_CHUNK,
):
    """Build an on-disk CSR directory from an edge-block stream.

    ``blocks`` yields ``(src, dst)`` or ``(src, dst, weights)`` arrays;
    each block is cleaned (self loops, symmetrisation), sorted by
    composite ``src * n + dst`` key, deduplicated within itself, and
    spilled as a sorted run. A vectorised K-way merge then streams the
    runs into ``indices.npy``/``weights.npy`` while accumulating the
    per-source arc counts (integer-exact, so chunking cannot change
    them), and ``indptr.npy`` plus the ``graph.json`` sidecar are
    written at the end. At no point does the full edge list — or any
    O(m) intermediate — exist in memory.

    Byte-identity with the in-RAM path holds by construction: the merge
    emits the globally sorted unique composite keys, which is exactly
    what ``_dedup_min_weight`` produces, and for weighted inputs the
    per-key minimum of per-run minima equals the global per-key minimum
    (same float values, hence the same bits). ``dedup=False`` is
    rejected — a merge of sorted runs cannot reproduce the undeduped
    input order.

    Returns the finished :class:`repro.graph.io.MappedGraph`.
    """
    from repro.graph.io import (
        NpyStreamWriter,
        fingerprint_csr_dir,
        open_mapped,
        write_csr_meta,
    )

    if not dedup:
        raise GraphFormatError(
            "build_csr_on_disk requires dedup=True: the external merge "
            "emits unique sorted arcs"
        )
    if num_vertices < 0:
        raise GraphFormatError("num_vertices must be non-negative")
    if num_vertices and num_vertices > int(np.sqrt(2**63 - 1)):
        raise GraphFormatError(
            "num_vertices too large for int64 composite keys"
        )
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    runs_dir = os.path.join(directory, "runs.tmp")
    shutil.rmtree(runs_dir, ignore_errors=True)
    os.makedirs(runs_dir)

    from collections import deque

    from repro.perf import kernel_pool

    def spill_run(
        src: np.ndarray,
        dst: np.ndarray,
        weights: Optional[np.ndarray],
        run_id: int,
    ) -> Optional[str]:
        """Clean, sort, dedup and write one block as a sorted run.

        Runs on a pool worker when ``--kernel-workers`` is set (each
        call touches only its own arrays and its own run file, and the
        big sorts release the GIL); the run file bytes are identical
        either way, so the downstream merge — and the finished CSR —
        cannot tell how the runs were produced.
        """
        if src.min() < 0 or dst.min() < 0:
            raise GraphFormatError("vertex ids must be non-negative")
        if max(int(src.max()), int(dst.max())) >= num_vertices:
            raise GraphFormatError(
                "edge endpoint out of range for num_vertices"
            )
        if drop_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
            if weights is not None:
                weights = weights[keep]
        if not directed and src.size:
            src, dst, weights = _symmetrise(src, dst, weights)
        if src.size == 0:
            return None
        keys = src * np.int64(num_vertices) + dst
        base = os.path.join(runs_dir, f"run-{run_id:06d}")
        if weights is None:
            keys = np.sort(keys)
            first = np.empty(keys.size, dtype=bool)
            first[0] = True
            np.not_equal(keys[1:], keys[:-1], out=first[1:])
            np.save(base + "-keys.npy", keys[first])
        else:
            order = np.lexsort((weights, keys))
            keys_sorted = keys[order]
            first = np.empty(keys.size, dtype=bool)
            first[0] = True
            np.not_equal(
                keys_sorted[1:], keys_sorted[:-1], out=first[1:]
            )
            np.save(base + "-keys.npy", keys_sorted[first])
            np.save(base + "-weights.npy", weights[order][first])
        return base

    weighted: Optional[bool] = None
    run_paths = []
    try:
        # Generation stays serial in the parent — the seeded RNG stream
        # must advance in block order — but the heavy half of each block
        # (clean + symmetrise + sort + spill) is independent of every
        # other block until the external merge, so with a kernel pool
        # it overlaps both the generator and sibling blocks, bounded at
        # workers + 1 blocks in flight to respect the build budget.
        pool = kernel_pool.get_pool()
        pending: "deque" = deque()

        def drain(limit: int) -> None:
            while len(pending) > limit:
                base = pending.popleft().result()
                if base is not None:
                    run_paths.append(base)

        for run_id, block in enumerate(blocks):
            src, dst = block[0], block[1]
            weights = block[2] if len(block) > 2 else None
            src = np.asarray(src, dtype=np.int64).ravel()
            dst = np.asarray(dst, dtype=np.int64).ravel()
            if src.shape != dst.shape:
                raise GraphFormatError(
                    "src and dst arrays must have equal length"
                )
            if weights is not None:
                weights = np.asarray(weights, dtype=np.float64).ravel()
                if weights.shape != src.shape:
                    raise GraphFormatError("weights must align with src/dst")
            if weighted is None:
                weighted = weights is not None
            elif weighted != (weights is not None):
                raise GraphFormatError(
                    "edge blocks must be uniformly weighted or unweighted"
                )
            if src.size == 0:
                continue
            if pool is None:
                base = spill_run(src, dst, weights, run_id)
                if base is not None:
                    run_paths.append(base)
            else:
                # Copy before queuing: generators may reuse their block
                # buffers once the loop asks for the next block.
                src, dst = src.copy(), dst.copy()
                weights = None if weights is None else weights.copy()
                pending.append(
                    pool.submit(
                        lambda s=src, d=dst, w=weights, r=run_id: spill_run(
                            s, d, w, r
                        )
                    )
                )
                drain(pool.workers + 1)
        drain(0)

        weighted = bool(weighted)
        counts = np.zeros(num_vertices, dtype=np.int64)
        indices_writer = NpyStreamWriter(
            os.path.join(directory, "indices.npy"), np.int64
        )
        weights_writer = (
            NpyStreamWriter(os.path.join(directory, "weights.npy"), np.float64)
            if weighted
            else None
        )
        for batch_keys, batch_weights in _merge_sorted_runs(
            run_paths, weighted, merge_chunk
        ):
            counts += np.bincount(
                batch_keys // np.int64(num_vertices), minlength=num_vertices
            )
            indices_writer.write(batch_keys % np.int64(num_vertices))
            if weights_writer is not None:
                weights_writer.write(batch_weights)
        num_arcs = indices_writer.close()
        if weights_writer is not None:
            weights_writer.close()
        indptr = np.concatenate(([0], np.cumsum(counts)))
        if int(indptr[-1]) != num_arcs:
            raise GraphFormatError(
                "merge count mismatch: "
                f"indptr says {int(indptr[-1])}, wrote {num_arcs} arcs"
            )
        np.save(os.path.join(directory, "indptr.npy"), indptr)
        del counts, indptr
    finally:
        shutil.rmtree(runs_dir, ignore_errors=True)

    write_csr_meta(
        directory,
        name=name,
        directed=directed,
        num_vertices=num_vertices,
        num_arcs=num_arcs,
        weighted=weighted,
        fingerprint="",
    )
    write_csr_meta(
        directory,
        name=name,
        directed=directed,
        num_vertices=num_vertices,
        num_arcs=num_arcs,
        weighted=weighted,
        fingerprint=fingerprint_csr_dir(directory),
    )
    return open_mapped(directory)


def _merge_sorted_runs(
    run_paths, weighted: bool, merge_chunk: int
) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """K-way merge of sorted-unique key runs, vectorised over batches.

    Each iteration loads at most ``merge_chunk`` elements per run,
    finds the smallest "boundary" key any partially-loaded run is
    guaranteed to have fully surfaced, and emits every element ``<=``
    boundary across all runs, deduplicated (minimum weight per key for
    weighted runs). Equal keys always fall in the same batch — every
    instance compares ``<=`` the boundary — so batches are globally
    sorted, unique, and complete.
    """
    key_maps = [np.load(p + "-keys.npy", mmap_mode="r") for p in run_paths]
    weight_maps = (
        [np.load(p + "-weights.npy", mmap_mode="r") for p in run_paths]
        if weighted
        else None
    )
    cursors = [0] * len(run_paths)
    buffers = [np.empty(0, dtype=np.int64) for _ in run_paths]
    wbuffers = [np.empty(0, dtype=np.float64) for _ in run_paths]
    while True:
        for i, keys in enumerate(key_maps):
            if buffers[i].size == 0 and cursors[i] < keys.size:
                stop = cursors[i] + merge_chunk
                buffers[i] = np.asarray(keys[cursors[i] : stop])
                if weighted:
                    wbuffers[i] = np.asarray(
                        weight_maps[i][cursors[i] : stop]
                    )
                cursors[i] = min(stop, keys.size)
        active = [i for i in range(len(buffers)) if buffers[i].size]
        if not active:
            return
        # A run loaded only partially caps the batch at its last loaded
        # key; fully-drained runs impose no cap.
        partial_tails = [
            int(buffers[i][-1])
            for i in active
            if cursors[i] < key_maps[i].size
        ]
        boundary = (
            min(partial_tails)
            if partial_tails
            else max(int(buffers[i][-1]) for i in active)
        )
        batch_parts = []
        weight_parts = []
        for i in active:
            take = int(
                np.searchsorted(buffers[i], boundary, side="right")
            )
            if take == 0:
                continue
            batch_parts.append(buffers[i][:take])
            buffers[i] = buffers[i][take:]
            if weighted:
                weight_parts.append(wbuffers[i][:take])
                wbuffers[i] = wbuffers[i][take:]
        batch_keys = (
            batch_parts[0]
            if len(batch_parts) == 1
            else np.concatenate(batch_parts)
        )
        if weighted:
            batch_weights = (
                weight_parts[0]
                if len(weight_parts) == 1
                else np.concatenate(weight_parts)
            )
            order = np.lexsort((batch_weights, batch_keys))
            batch_keys = batch_keys[order]
            batch_weights = batch_weights[order]
        else:
            batch_keys = np.sort(batch_keys)
            batch_weights = None
        first = np.empty(batch_keys.size, dtype=bool)
        first[0] = True
        np.not_equal(batch_keys[1:], batch_keys[:-1], out=first[1:])
        if not first.all():
            batch_keys = batch_keys[first]
            if weighted:
                batch_weights = batch_weights[first]
        yield batch_keys, batch_weights
