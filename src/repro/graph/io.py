"""Graph serialization: whitespace edge-list text and numpy ``.npz``.

The text format matches what the paper's systems ingest from SNAP dumps:
one ``src dst [weight]`` triple per line, ``#`` comments allowed. The
``.npz`` format round-trips the CSR arrays losslessly and loads orders of
magnitude faster, which the experiment harness relies on when caching
synthetic datasets on disk.
"""

from __future__ import annotations

import os
from typing import List, Optional, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edges
from repro.graph.csr import Graph

PathLike = Union[str, "os.PathLike[str]"]


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a text edge list (one arc per line)."""
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# {graph.name}\n")
            fh.write(
                f"# nodes: {graph.num_vertices} arcs: {graph.num_arcs} "
                f"directed: {graph.directed}\n"
            )
        if graph.weights is None:
            for src, dst, _ in graph.iter_edges():
                fh.write(f"{src} {dst}\n")
        else:
            for src, dst, weight in graph.iter_edges():
                fh.write(f"{src} {dst} {weight:.10g}\n")


def read_edge_list(
    path: PathLike,
    directed: bool = True,
    num_vertices: Optional[int] = None,
    dedup: bool = False,
    name: Optional[str] = None,
) -> Graph:
    """Parse a whitespace edge list into a :class:`Graph`.

    Accepts 2-column (unweighted) or 3-column (weighted) rows; blank
    lines and ``#`` comments are skipped. Mixing widths is an error.
    """
    srcs: List[int] = []
    dsts: List[int] = []
    weights: List[float] = []
    width: Optional[int] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if width is None:
                width = len(parts)
                if width not in (2, 3):
                    raise GraphFormatError(
                        f"{path}:{lineno}: expected 2 or 3 columns, got {width}"
                    )
            elif len(parts) != width:
                raise GraphFormatError(
                    f"{path}:{lineno}: inconsistent column count"
                )
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
                if width == 3:
                    weights.append(float(parts[2]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc
    return from_edges(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(weights, dtype=np.float64) if weights else None,
        num_vertices=num_vertices,
        directed=directed,
        dedup=dedup,
        name=name or os.path.basename(os.fspath(path)),
    )


def save_npz(graph: Graph, path: PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` archive."""
    payload = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "directed": np.asarray([graph.directed]),
        "name": np.asarray([graph.name]),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_npz(path: PathLike) -> Graph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        if "indptr" not in data or "indices" not in data:
            raise GraphFormatError(f"{path}: not a repro graph archive")
        weights = data["weights"] if "weights" in data else None
        return Graph(
            data["indptr"],
            data["indices"],
            weights,
            directed=bool(data["directed"][0]),
            name=str(data["name"][0]),
        )
