"""Graph serialization: edge-list text, ``.npz``, and on-disk CSR.

The text format matches what the paper's systems ingest from SNAP dumps:
one ``src dst [weight]`` triple per line, ``#`` comments allowed. The
``.npz`` format round-trips the CSR arrays losslessly and loads orders of
magnitude faster, which the experiment harness relies on when caching
synthetic datasets on disk.

The third format is the out-of-core one: a *CSR directory* holding the
raw arrays as plain ``.npy`` files (``indptr.npy`` / ``indices.npy`` /
``weights.npy``) plus a ``graph.json`` sidecar with the metadata and the
content fingerprint. :class:`MappedGraph` serves such a directory
through ``np.memmap`` views behind the ordinary :class:`Graph`
interface, so kernels, caches and worker pools handle mapped and
resident graphs interchangeably — the streaming kernel variants in
:mod:`repro.graph.csr` dispatch on ``graph.mapped``.
"""

from __future__ import annotations

import json
import os
import struct
from typing import List, Optional, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edges
from repro.graph.csr import Graph

PathLike = Union[str, "os.PathLike[str]"]

#: Parsed lines buffered per chunk by :func:`read_edge_list`.
EDGE_LIST_CHUNK_LINES = 65536

#: CSR-directory metadata sidecar name.
GRAPH_META_NAME = "graph.json"

#: CSR-directory format version written to ``graph.json``.
CSR_DIR_FORMAT = 1


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a text edge list (one arc per line)."""
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# {graph.name}\n")
            fh.write(
                f"# nodes: {graph.num_vertices} arcs: {graph.num_arcs} "
                f"directed: {graph.directed}\n"
            )
        if graph.weights is None:
            for src, dst, _ in graph.iter_edges():
                fh.write(f"{src} {dst}\n")
        else:
            for src, dst, weight in graph.iter_edges():
                fh.write(f"{src} {dst} {weight:.10g}\n")


def read_edge_list(
    path: PathLike,
    directed: bool = True,
    num_vertices: Optional[int] = None,
    dedup: bool = False,
    name: Optional[str] = None,
) -> Graph:
    """Parse a whitespace edge list into a :class:`Graph`.

    Accepts 2-column (unweighted) or 3-column (weighted) rows; blank
    lines and ``#`` comments are skipped. Mixing widths is an error.

    Lines are parsed in :data:`EDGE_LIST_CHUNK_LINES`-sized chunks that
    are converted to numpy arrays as they fill, so the transient peak
    is one chunk of Python objects plus the final arrays — not the
    several-times-final-size list-of-ints the old single-pass
    accumulation held.
    """
    src_chunks: List[np.ndarray] = []
    dst_chunks: List[np.ndarray] = []
    weight_chunks: List[np.ndarray] = []
    buffer: List[tuple] = []
    width: Optional[int] = None

    def flush() -> None:
        if not buffer:
            return
        src_chunks.append(np.asarray([b[0] for b in buffer], dtype=np.int64))
        dst_chunks.append(np.asarray([b[1] for b in buffer], dtype=np.int64))
        if width == 3:
            weight_chunks.append(
                np.asarray([b[2] for b in buffer], dtype=np.float64)
            )
        buffer.clear()

    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if width is None:
                width = len(parts)
                if width not in (2, 3):
                    raise GraphFormatError(
                        f"{path}:{lineno}: expected 2 or 3 columns, got {width}"
                    )
            elif len(parts) != width:
                raise GraphFormatError(
                    f"{path}:{lineno}: inconsistent column count"
                )
            try:
                if width == 3:
                    buffer.append(
                        (int(parts[0]), int(parts[1]), float(parts[2]))
                    )
                else:
                    buffer.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc
            if len(buffer) >= EDGE_LIST_CHUNK_LINES:
                flush()
    flush()
    empty = np.empty(0, dtype=np.int64)
    return from_edges(
        np.concatenate(src_chunks) if src_chunks else empty,
        np.concatenate(dst_chunks) if dst_chunks else empty,
        np.concatenate(weight_chunks) if weight_chunks else None,
        num_vertices=num_vertices,
        directed=directed,
        dedup=dedup,
        name=name or os.path.basename(os.fspath(path)),
    )


def save_npz(graph: Graph, path: PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` archive."""
    payload = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "directed": np.asarray([graph.directed]),
        "name": np.asarray([graph.name]),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_npz(path: PathLike) -> Graph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        if "indptr" not in data or "indices" not in data:
            raise GraphFormatError(f"{path}: not a repro graph archive")
        weights = data["weights"] if "weights" in data else None
        return Graph(
            data["indptr"],
            data["indices"],
            weights,
            directed=bool(data["directed"][0]),
            name=str(data["name"][0]),
        )


# ----------------------------------------------------------------------
# On-disk CSR directories and memory-mapped graphs
# ----------------------------------------------------------------------


class NpyStreamWriter:
    """Stream 1-D array chunks into ``path`` as a standard ``.npy`` file.

    The element count is unknown until the stream ends (the external
    merge discovers the deduplicated arc count as it goes), so a
    fixed-width version-1.0 header with the shape field padded to
    reserve 20 count digits is written up front and patched in place on
    :meth:`close`. The result is indistinguishable from ``np.save``
    output: ``np.load`` reads it plain or with ``mmap_mode``.
    """

    #: Total header bytes including magic — a multiple of 64, as the
    #: ``.npy`` spec requests for alignment, and wide enough for any
    #: int64-counted shape.
    HEADER_BYTES = 128

    _MAGIC = b"\x93NUMPY\x01\x00"

    def __init__(self, path: PathLike, dtype) -> None:
        self.path = os.fspath(path)
        self.dtype = np.dtype(dtype)
        self.count = 0
        self._fh: Optional[object] = open(self.path, "wb")
        self._fh.write(self._header(0))

    def _header(self, count: int) -> bytes:
        descr = np.lib.format.dtype_to_descr(self.dtype)
        body = (
            "{'descr': %r, 'fortran_order': False, 'shape': (%d,), }"
            % (descr, count)
        )
        room = self.HEADER_BYTES - len(self._MAGIC) - 2
        if len(body) + 1 > room:
            raise GraphFormatError(
                f"{self.path}: .npy header does not fit {room} bytes"
            )
        body = body + " " * (room - len(body) - 1) + "\n"
        return self._MAGIC + struct.pack("<H", room) + body.encode("latin1")

    def write(self, chunk: np.ndarray) -> None:
        """Append one 1-D chunk (converted to the writer's dtype)."""
        chunk = np.ascontiguousarray(chunk, dtype=self.dtype)
        self._fh.write(chunk.tobytes())
        self.count += chunk.size

    def close(self) -> int:
        """Patch the real element count into the header; returns it."""
        if self._fh is None:
            return self.count
        self._fh.flush()
        self._fh.seek(0)
        self._fh.write(self._header(self.count))
        self._fh.close()
        self._fh = None
        return self.count

    def __enter__(self) -> "NpyStreamWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MappedGraph(Graph):
    """A :class:`Graph` whose CSR arrays are read-only ``np.memmap``
    views over a CSR directory.

    Construction bypasses ``Graph.__init__`` — its O(m) validation
    would fault every page in — and trusts the builder-verified
    ``graph.json`` metadata instead, the same trick
    ``SharedGraphRegistry.attach`` uses for shared segments. The
    fingerprint is computed once at build time by streaming the files
    in the exact byte order :attr:`Graph.fingerprint` hashes, so
    cache keys match the equivalent in-RAM graph exactly.

    Pickling carries only the directory path: workers re-open the maps,
    so handing a mapped graph to a ``--jobs N`` pool ships a path, not
    a graph.
    """

    __slots__ = ("directory",)

    mapped = True

    def __reduce__(self):
        return (open_mapped, (self.directory,))


def _meta_path(directory: PathLike) -> str:
    return os.path.join(os.fspath(directory), GRAPH_META_NAME)


def is_csr_dir(directory: PathLike) -> bool:
    """True when ``directory`` looks like a complete CSR directory."""
    directory = os.fspath(directory)
    if not os.path.isfile(_meta_path(directory)):
        return False
    return all(
        os.path.isfile(os.path.join(directory, name))
        for name in ("indptr.npy", "indices.npy")
    )


def write_csr_meta(
    directory: PathLike,
    name: str,
    directed: bool,
    num_vertices: int,
    num_arcs: int,
    weighted: bool,
    fingerprint: str,
) -> None:
    """Write the ``graph.json`` sidecar of a CSR directory."""
    meta = {
        "format": CSR_DIR_FORMAT,
        "name": name,
        "directed": bool(directed),
        "num_vertices": int(num_vertices),
        "num_arcs": int(num_arcs),
        "weighted": bool(weighted),
        "fingerprint": fingerprint,
    }
    path = _meta_path(directory)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)


def fingerprint_csr_dir(directory: PathLike, chunk_bytes: int = 1 << 24) -> str:
    """Content hash of a CSR directory's arrays, streamed file by file
    in the exact byte order :attr:`Graph.fingerprint` hashes, so mapped
    and resident twins share one fingerprint (and thus every cached
    derived artifact)."""
    import hashlib

    directory = os.fspath(directory)
    with open(_meta_path(directory), "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"directed" if meta["directed"] else b"undirected")
    names = ["indptr.npy", "indices.npy"]
    if meta["weighted"]:
        names.append("weights.npy")
    for file_name in names:
        array = np.load(os.path.join(directory, file_name), mmap_mode="r")
        step = max(1, chunk_bytes // array.itemsize)
        for start in range(0, array.size, step):
            digest.update(
                np.ascontiguousarray(array[start : start + step]).tobytes()
            )
    return digest.hexdigest()


def open_mapped(directory: PathLike) -> MappedGraph:
    """Open a CSR directory as a :class:`MappedGraph` (zero-copy)."""
    directory = os.fspath(directory)
    meta_path = _meta_path(directory)
    if not os.path.isfile(meta_path):
        raise GraphFormatError(f"{directory}: not a CSR directory")
    with open(meta_path, "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("format") != CSR_DIR_FORMAT:
        raise GraphFormatError(
            f"{directory}: unsupported CSR directory format "
            f"{meta.get('format')!r}"
        )
    indptr = np.load(os.path.join(directory, "indptr.npy"), mmap_mode="r")
    indices = np.load(os.path.join(directory, "indices.npy"), mmap_mode="r")
    weights = None
    if meta["weighted"]:
        weights = np.load(
            os.path.join(directory, "weights.npy"), mmap_mode="r"
        )
    if indptr.size != meta["num_vertices"] + 1 or (
        indices.size != meta["num_arcs"]
    ):
        raise GraphFormatError(
            f"{directory}: array sizes disagree with graph.json"
        )
    if weights is not None and weights.size != meta["num_arcs"]:
        raise GraphFormatError(
            f"{directory}: weights.npy holds {weights.size} entries, "
            f"graph.json promises {meta['num_arcs']}"
        )
    graph = MappedGraph.__new__(MappedGraph)
    graph.indptr = indptr
    graph.indices = indices
    graph.weights = weights
    graph.directed = bool(meta["directed"])
    graph.name = str(meta["name"])
    graph._degrees = None
    graph._fingerprint = str(meta["fingerprint"])
    graph._spread = None
    graph.directory = directory
    return graph


def quarantine_csr_dir(directory: PathLike) -> str:
    """Move a torn CSR directory aside as ``<dir>.corrupt``.

    Mirrors the artifact cache's corrupted-``.npz`` handling
    (:meth:`repro.perf.cache.ArtifactCache._load`): the bad bytes are
    preserved for post-mortem instead of being overwritten in place, a
    fresh build can recreate the directory under its original name,
    and the event is counted in the cache stats (``corruptions``) so
    it surfaces in ``BENCH_perf.json``. An earlier quarantine of the
    same directory is replaced — only the latest evidence is kept.
    Returns the quarantine path.
    """
    import shutil

    directory = os.fspath(directory).rstrip(os.sep)
    target = directory + ".corrupt"
    if os.path.isdir(target):
        shutil.rmtree(target, ignore_errors=True)
    os.replace(directory, target)
    from repro.perf.cache import get_cache

    get_cache().stats.corruptions += 1
    return target


def load_csr_dir(directory: PathLike) -> Optional[MappedGraph]:
    """Tolerant :func:`open_mapped`: quarantine-and-``None`` on damage.

    A readable, consistent CSR directory opens as usual. A *torn* one —
    truncated arrays, sizes disagreeing with ``graph.json``, unparsable
    metadata (a crash mid-write; the sidecar is written last exactly so
    this window is detectable) — is moved aside via
    :func:`quarantine_csr_dir` and ``None`` is returned: callers
    rebuild into a clean directory. A directory that simply does not
    exist also returns ``None``, with nothing to quarantine.
    """
    directory = os.fspath(directory)
    if not is_csr_dir(directory):
        return None
    try:
        return open_mapped(directory)
    except (OSError, ValueError, KeyError, GraphFormatError):
        quarantine_csr_dir(directory)
        return None


def save_mapped(graph: Graph, directory: PathLike) -> MappedGraph:
    """Write ``graph``'s CSR arrays into ``directory`` and open the
    result as a :class:`MappedGraph` (for converting resident graphs —
    the out-of-core builder writes directories without ever holding the
    arrays, see :func:`repro.graph.build.build_csr_on_disk`)."""
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    np.save(os.path.join(directory, "indptr.npy"), graph.indptr)
    np.save(os.path.join(directory, "indices.npy"), graph.indices)
    if graph.weights is not None:
        np.save(os.path.join(directory, "weights.npy"), graph.weights)
    write_csr_meta(
        directory,
        name=graph.name,
        directed=graph.directed,
        num_vertices=graph.num_vertices,
        num_arcs=graph.num_arcs,
        weighted=graph.weights is not None,
        fingerprint=graph.fingerprint,
    )
    return open_mapped(directory)
